//! The paper's evaluation *shapes*, enforced as tests: if a change to
//! the models or algorithms breaks one of the published trends, this
//! suite — not a human reading the harness output — catches it.
//!
//! Runs on the small benchmark profiles so `cargo test` stays fast; the
//! full-suite numbers live in EXPERIMENTS.md.

use rand::rngs::StdRng;
use rand::SeedableRng;

use sttlock::attack::alpha;
use sttlock::benchgen::profiles;
use sttlock::core::{Flow, SelectionAlgorithm};
use sttlock::netlist::GateKind;
use sttlock::techlib::{fig1, Library};

/// Figure 1: the calibrated model reproduces the published technology
/// trends.
#[test]
fn fig1_trends_hold_in_the_calibrated_model() {
    let lib = Library::predictive_90nm();
    for e in fig1::PUBLISHED {
        let cell = lib.gate(e.kind, e.fanin);
        let lut = lib.lut(e.fanin);
        // LUT is slower than the cell it replaces…
        assert!(lut.delay_ns > cell.delay_ns, "{}{}", e.kind, e.fanin);
        // …within 2x of the published ratio.
        let derived = lut.delay_ns / cell.delay_ns;
        assert!(
            derived / e.delay < 2.0 && e.delay / derived < 2.0,
            "{}{}: derived {derived:.2} vs published {}",
            e.kind,
            e.fanin,
            e.delay
        );
    }
    // Delay overhead shrinks with gate complexity (NAND2 → NAND4).
    let r2 = lib.lut(2).delay_ns / lib.gate(GateKind::Nand, 2).delay_ns;
    let r4 = lib.lut(4).delay_ns / lib.gate(GateKind::Nand, 4).delay_ns;
    assert!(
        r4 < r2,
        "complexity must shrink the LUT overhead: {r2:.2} -> {r4:.2}"
    );
}

/// Table I: algorithm ordering and size trends on the four smallest and
/// one mid-size profile.
#[test]
fn table1_shape_holds() {
    let flow = Flow::new(Library::predictive_90nm());
    let mut dep_perf_sum = 0.0;
    let mut indep_perf_sum = 0.0;
    let mut para_perf_max: f64 = 0.0;
    let mut small_indep_power = None;
    let mut large_indep_power = None;

    for profile in profiles::up_to(3000) {
        let netlist = profile.generate(&mut StdRng::seed_from_u64(42));
        let indep = flow
            .run(&netlist, SelectionAlgorithm::Independent, 42)
            .unwrap();
        let dep = flow
            .run(&netlist, SelectionAlgorithm::Dependent, 42)
            .unwrap();
        let para = flow
            .run(&netlist, SelectionAlgorithm::ParametricAware, 42)
            .unwrap();

        // Independent always inserts exactly 5 LUTs (the paper's setup).
        assert_eq!(indep.report.stt_count, 5, "{}", profile.name);
        indep_perf_sum += indep.report.performance_degradation_pct;
        dep_perf_sum += dep.report.performance_degradation_pct;
        para_perf_max = para_perf_max.max(para.report.performance_degradation_pct);

        if profile.name == "s641" {
            small_indep_power = Some(indep.report.power_overhead_pct);
        }
        if profile.name == "s5378a" {
            large_indep_power = Some(indep.report.power_overhead_pct);
        }
    }

    // Dependent selection costs the most performance on average.
    assert!(
        dep_perf_sum > indep_perf_sum,
        "dependent ({dep_perf_sum:.1}) must degrade more than independent ({indep_perf_sum:.1})"
    );
    // Parametric-aware stays within its (default 5 %) budget everywhere.
    assert!(
        para_perf_max <= 5.0 + 1e-6,
        "parametric max {para_perf_max:.2}%"
    );
    // Overheads shrink with circuit size (fixed 5 LUTs dilute).
    let (small, large) = (small_indep_power.unwrap(), large_indep_power.unwrap());
    assert!(
        large < small,
        "independent power overhead must shrink with size: s641 {small:.2}% vs s5378a {large:.2}%"
    );
}

/// Figure 3: the three equations keep their ordering and their growth
/// character (linear / product / exponential).
#[test]
fn fig3_shape_holds() {
    let flow = Flow::new(Library::predictive_90nm());
    let mut bf_values = Vec::new();
    for name in ["s641", "s1238", "s5378a"] {
        let profile = profiles::by_name(name).unwrap();
        let netlist = profile.generate(&mut StdRng::seed_from_u64(42));
        let indep = flow
            .run(&netlist, SelectionAlgorithm::Independent, 42)
            .unwrap();
        let dep = flow
            .run(&netlist, SelectionAlgorithm::Dependent, 42)
            .unwrap();
        let para = flow
            .run(&netlist, SelectionAlgorithm::ParametricAware, 42)
            .unwrap();

        let n_i = indep.report.security.n_indep.log10();
        let n_d = dep.report.security.n_dep.log10();
        let n_b = para.report.security.n_bf.log10();
        // Eq. 1 is a sum of small terms: tens of clocks.
        assert!(n_i < 3.0, "{name}: N_indep 1e{n_i:.1} should be tiny");
        // Eqs. 2-3 are products/exponentials: astronomically larger.
        assert!(n_d > n_i + 3.0, "{name}: N_dep must dwarf N_indep");
        assert!(n_b > n_i + 2.0, "{name}: N_bf must dwarf N_indep");
        bf_values.push(n_b);
    }
    // N_bf grows with circuit size across the suite (adjacent small
    // circuits may swap — the paper notes the same randomness-induced
    // non-monotonicity — but the small-to-large trend must hold).
    assert!(
        bf_values.last().unwrap() > bf_values.first().unwrap(),
        "N_bf must grow from s641 ({:.1}) to s5378a ({:.1})",
        bf_values[0],
        bf_values[2]
    );
}

/// Table II: selection stays cheap — well under the paper's 1:31 worst
/// case even on this container, for the mid-size circuits.
#[test]
fn table2_shape_holds() {
    let flow = Flow::new(Library::predictive_90nm());
    let profile = profiles::by_name("s5378a").unwrap();
    let netlist = profile.generate(&mut StdRng::seed_from_u64(42));
    for alg in SelectionAlgorithm::ALL {
        let out = flow.run(&netlist, alg, 42).unwrap();
        assert!(
            out.report.selection_time.as_secs() < 91,
            "{alg}: {:?} exceeds the paper's worst case",
            out.report.selection_time
        );
    }
}

/// The α/P constants the estimators use are the paper's.
#[test]
fn alpha_constants_match_the_paper() {
    assert_eq!(alpha::paper_alpha(2), 2.45);
    assert_eq!(alpha::paper_alpha(3), 4.2);
    assert_eq!(alpha::paper_alpha(4), 7.4);
    assert_eq!(alpha::paper_p(2), 2.5);
    // And the recomputed similarity stays in the published ballpark.
    assert!((alpha::recomputed_alpha(2) - 2.45).abs() < 0.5);
}
