//! Attack-vs-defense integration: the executable attacks behave as the
//! paper's security analysis predicts on circuits produced by the real
//! flow.

use rand::rngs::StdRng;
use rand::SeedableRng;

use sttlock::attack::sat_attack::{self, SatAttackConfig};
use sttlock::attack::sensitization::{self, SensitizationConfig};
use sttlock::benchgen::Profile;
use sttlock::core::{Flow, SelectionAlgorithm};
use sttlock::techlib::Library;

fn locked(
    alg: SelectionAlgorithm,
    seed: u64,
) -> (sttlock::netlist::Netlist, sttlock::netlist::Netlist) {
    let profile = Profile::custom("ad", 160, 8, 9, 7);
    let netlist = profile.generate(&mut StdRng::seed_from_u64(3));
    let flow = Flow::new(Library::predictive_90nm());
    let out = flow.run(&netlist, alg, seed).expect("flow runs");
    (out.foundry_view(), out.hybrid)
}

#[test]
fn sensitization_breaks_independent_but_not_dependent() {
    let cfg = SensitizationConfig {
        patterns_per_gate: 128,
        sat_justification: true,
        ..SensitizationConfig::default()
    };

    let (redacted, oracle) = locked(SelectionAlgorithm::Independent, 42);
    let mut rng = StdRng::seed_from_u64(1);
    let indep = sensitization::run(&redacted, &oracle, &cfg, &mut rng).expect("attack runs");
    assert!(
        indep.resolution_ratio() > 0.9,
        "independent selection should fall: {:.2}",
        indep.resolution_ratio()
    );

    let (redacted, oracle) = locked(SelectionAlgorithm::Dependent, 42);
    let mut rng = StdRng::seed_from_u64(1);
    let dep = sensitization::run(&redacted, &oracle, &cfg, &mut rng).expect("attack runs");
    assert!(
        dep.resolution_ratio() < indep.resolution_ratio(),
        "dependent ({:.2}) must resist better than independent ({:.2})",
        dep.resolution_ratio(),
        indep.resolution_ratio()
    );
}

#[test]
fn recovered_bitstreams_reproduce_the_oracle() {
    let (redacted, oracle) = locked(SelectionAlgorithm::Independent, 7);
    let cfg = SensitizationConfig {
        patterns_per_gate: 128,
        sat_justification: true,
        ..SensitizationConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(2);
    let out = sensitization::run(&redacted, &oracle, &cfg, &mut rng).expect("attack runs");
    if out.is_full_break() {
        let mut rng = StdRng::seed_from_u64(3);
        let mismatches =
            sat_attack::verify_bitstream(&redacted, &oracle, &out.bitstream(), 64, &mut rng)
                .expect("verification runs");
        assert_eq!(mismatches, 0, "sensitization bitstream must be exact");
    }
}

#[test]
fn sat_attack_recovers_any_selection_with_scan_access() {
    for alg in SelectionAlgorithm::ALL {
        let (redacted, oracle) = locked(alg, 11);
        let out =
            sat_attack::run(&redacted, &oracle, &SatAttackConfig::default()).expect("attack runs");
        assert!(out.succeeded(), "{alg}: SAT attack with scan must succeed");
        let bits = out.bitstream.expect("succeeded");
        let mut rng = StdRng::seed_from_u64(5);
        let mismatches = sat_attack::verify_bitstream(&redacted, &oracle, &bits, 64, &mut rng)
            .expect("verification runs");
        assert_eq!(
            mismatches, 0,
            "{alg}: recovered keys must be functionally exact"
        );
    }
}

#[test]
fn sat_attack_effort_grows_with_dependent_selection() {
    let (ri, oi) = locked(SelectionAlgorithm::Independent, 13);
    let (rd, od) = locked(SelectionAlgorithm::Dependent, 13);
    let indep = sat_attack::run(&ri, &oi, &SatAttackConfig::default()).unwrap();
    let dep = sat_attack::run(&rd, &od, &SatAttackConfig::default()).unwrap();
    assert!(
        dep.solver_stats.conflicts > indep.solver_stats.conflicts,
        "dependent ({} conflicts) should cost more than independent ({})",
        dep.solver_stats.conflicts,
        indep.solver_stats.conflicts
    );
}

#[test]
fn estimates_track_the_lut_count() {
    let profile = Profile::custom("est", 160, 8, 9, 7);
    let netlist = profile.generate(&mut StdRng::seed_from_u64(3));
    let mut flow = Flow::new(Library::predictive_90nm());
    let mut last = None;
    for budget in [2usize, 8, 32] {
        flow.selection.independent_gates = budget;
        let out = flow
            .run(&netlist, SelectionAlgorithm::Independent, 1)
            .expect("flow runs");
        let n = out.report.security.n_indep.log10();
        if let Some(prev) = last {
            assert!(n > prev, "more missing gates must cost the attacker more");
        }
        last = Some(n);
    }
}
