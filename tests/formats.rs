//! Cross-crate format integration: hybrid netlists survive `.bench` and
//! structural-Verilog round trips bit-for-bit, in both the programmed
//! and the redacted view, and the reloaded designs still simulate
//! identically.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sttlock::benchgen::Profile;
use sttlock::core::{Flow, SelectionAlgorithm};
use sttlock::netlist::{bench_format, verilog, Netlist};
use sttlock::sim::Simulator;
use sttlock::techlib::Library;

fn hybrid_fixture() -> (Netlist, Netlist) {
    let profile = Profile::custom("fmt", 140, 6, 7, 5);
    let netlist = profile.generate(&mut StdRng::seed_from_u64(2));
    let flow = Flow::new(Library::predictive_90nm());
    let out = flow
        .run(&netlist, SelectionAlgorithm::ParametricAware, 4)
        .expect("flow runs");
    (netlist, out.hybrid)
}

fn equivalent(a: &Netlist, b: &Netlist) -> bool {
    let mut sa = Simulator::new(a).expect("a simulates");
    let mut sb = Simulator::new(b).expect("b simulates");
    let mut rng = StdRng::seed_from_u64(3);
    (0..64).all(|_| {
        let p: Vec<u64> = (0..a.inputs().len()).map(|_| rng.gen()).collect();
        sa.step(&p).unwrap() == sb.step(&p).unwrap()
    })
}

#[test]
fn programmed_hybrid_round_trips_through_bench() {
    let (original, hybrid) = hybrid_fixture();
    let text = bench_format::write(&hybrid);
    let back = bench_format::parse(&text, hybrid.name()).expect("parses");
    assert_eq!(back.lut_count(), hybrid.lut_count());
    assert!(equivalent(&original, &back));
}

#[test]
fn programmed_hybrid_round_trips_through_verilog() {
    let (original, hybrid) = hybrid_fixture();
    let text = verilog::write(&hybrid);
    let back = verilog::parse(&text).expect("parses");
    assert_eq!(back.lut_count(), hybrid.lut_count());
    assert!(equivalent(&original, &back));
}

#[test]
fn redacted_view_round_trips_and_reprograms() {
    let (original, hybrid) = hybrid_fixture();
    let (foundry, secret) = hybrid.redact();

    // Through .bench …
    let text = bench_format::write(&foundry);
    let mut from_bench = bench_format::parse(&text, foundry.name()).expect("parses");
    for id in from_bench.node_ids() {
        assert!(from_bench.lut_config(id).is_none());
    }
    from_bench.program(&secret);
    assert!(equivalent(&original, &from_bench));

    // … and through Verilog.
    let text = verilog::write(&foundry);
    let mut from_verilog = verilog::parse(&text).expect("parses");
    from_verilog.program(&secret);
    assert!(equivalent(&original, &from_verilog));
}

#[test]
fn bench_and_verilog_agree_on_the_same_design() {
    let (_, hybrid) = hybrid_fixture();
    let via_bench = bench_format::parse(&bench_format::write(&hybrid), hybrid.name()).unwrap();
    let via_verilog = verilog::parse(&verilog::write(&hybrid)).unwrap();
    assert!(equivalent(&via_bench, &via_verilog));
}
