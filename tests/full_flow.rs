//! End-to-end flow integration: every selection algorithm on several
//! benchmark profiles must yield a hybrid netlist that is functionally
//! identical to the original, redacts cleanly, and reports sane numbers.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sttlock::benchgen::profiles;
use sttlock::core::{Flow, SelectionAlgorithm};
use sttlock::sim::Simulator;
use sttlock::techlib::Library;

fn assert_equivalent(a: &sttlock::netlist::Netlist, b: &sttlock::netlist::Netlist, seed: u64) {
    let mut sa = Simulator::new(a).expect("original simulates");
    let mut sb = Simulator::new(b).expect("hybrid simulates");
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..128 {
        let pattern: Vec<u64> = (0..a.inputs().len()).map(|_| rng.gen()).collect();
        assert_eq!(
            sa.step(&pattern).unwrap(),
            sb.step(&pattern).unwrap(),
            "hybrid diverged from original"
        );
    }
}

#[test]
fn all_algorithms_preserve_function_on_small_benchmarks() {
    let flow = Flow::new(Library::predictive_90nm());
    for profile in profiles::up_to(600) {
        let netlist = profile.generate(&mut StdRng::seed_from_u64(11));
        for alg in SelectionAlgorithm::ALL {
            let out = flow
                .run(&netlist, alg, 7)
                .unwrap_or_else(|e| panic!("{}/{alg}: {e}", profile.name));
            assert!(out.report.stt_count > 0, "{}/{alg}: no LUTs", profile.name);
            assert_eq!(out.hybrid.lut_count(), out.report.stt_count);
            assert_equivalent(&netlist, &out.hybrid, 13);
        }
    }
}

#[test]
fn foundry_view_leaks_no_configuration() {
    let flow = Flow::new(Library::predictive_90nm());
    let profile = profiles::by_name("s953").unwrap();
    let netlist = profile.generate(&mut StdRng::seed_from_u64(5));
    let out = flow
        .run(&netlist, SelectionAlgorithm::ParametricAware, 3)
        .expect("flow runs");
    let foundry = out.foundry_view();
    for id in foundry.node_ids() {
        assert!(foundry.lut_config(id).is_none(), "config leaked to foundry");
    }
    // Programming the foundry view with the bitstream restores the part.
    let mut programmed = foundry;
    programmed.program(&out.bitstream);
    assert_equivalent(&netlist, &programmed, 29);
}

#[test]
fn reports_are_internally_consistent() {
    let flow = Flow::new(Library::predictive_90nm());
    let profile = profiles::by_name("s1196").unwrap();
    let netlist = profile.generate(&mut StdRng::seed_from_u64(5));
    for alg in SelectionAlgorithm::ALL {
        let out = flow.run(&netlist, alg, 9).expect("flow runs");
        let r = &out.report;
        assert!(r.performance_degradation_pct >= 0.0);
        assert!(r.power_overhead_pct > 0.0, "{alg}: LUTs draw extra power");
        assert!(
            r.area_overhead_pct > 0.0,
            "{alg}: LUTs are bigger than cells"
        );
        assert_eq!(out.bitstream.len(), r.stt_count);
        assert!(r.security.n_dep.log10() >= 0.0);
    }
}

#[test]
fn parametric_budget_is_respected() {
    let mut flow = Flow::new(Library::predictive_90nm());
    flow.selection.timing_budget_pct = 3.0;
    for profile in profiles::up_to(600).into_iter().take(3) {
        let netlist = profile.generate(&mut StdRng::seed_from_u64(17));
        let out = flow
            .run(&netlist, SelectionAlgorithm::ParametricAware, 21)
            .expect("flow runs");
        assert!(
            out.report.performance_degradation_pct <= 3.0 + 1e-6,
            "{}: {}% exceeds the 3% budget",
            profile.name,
            out.report.performance_degradation_pct
        );
    }
}

#[test]
fn security_ordering_matches_figure_3() {
    let flow = Flow::new(Library::predictive_90nm());
    let profile = profiles::by_name("s1238").unwrap();
    let netlist = profile.generate(&mut StdRng::seed_from_u64(23));
    let indep = flow
        .run(&netlist, SelectionAlgorithm::Independent, 1)
        .unwrap();
    let dep = flow
        .run(&netlist, SelectionAlgorithm::Dependent, 1)
        .unwrap();
    let para = flow
        .run(&netlist, SelectionAlgorithm::ParametricAware, 1)
        .unwrap();
    // Equation 1 is linear; Equations 2-3 are products/exponentials.
    assert!(dep.report.security.n_dep.log10() > indep.report.security.n_indep.log10());
    assert!(para.report.security.n_bf.log10() > indep.report.security.n_indep.log10());
}
