//! # sttlock — hybrid STT-CMOS design-for-assurance toolkit
//!
//! `sttlock` is a from-scratch reproduction of *"Hybrid STT-CMOS Designs
//! for Reverse-engineering Prevention"* (Winograd, Salmani, Mahmoodi, Gaj,
//! Homayoun — DAC 2016). It replaces selected CMOS gates of a gate-level
//! netlist with non-volatile STT-MRAM look-up tables whose contents are
//! programmed after fabrication, so an untrusted foundry cannot reverse
//! engineer or overproduce the design.
//!
//! This facade crate re-exports the workspace crates:
//!
//! * [`netlist`] — gate-level netlist model, graph algorithms, `.bench`
//!   and structural-Verilog I/O.
//! * [`techlib`] — 90 nm-class CMOS cell models and the STT-LUT technology
//!   model (Figure 1 of the paper).
//! * [`sim`] — bit-parallel logic simulation and switching-activity
//!   estimation.
//! * [`sta`] — static timing analysis (clock period, critical path,
//!   slack).
//! * [`power`] — power and area analysis and overhead reports.
//! * [`benchgen`] — ISCAS '89-profile synthetic benchmark generator.
//! * [`sat`] — a CDCL SAT solver and netlist-to-CNF encoding.
//! * [`attack`] — sensitization and oracle-guided SAT attacks, plus the
//!   paper's analytic security estimators (Equations 1–3).
//! * [`core`] — the paper's contribution: the independent, dependent and
//!   parametric-aware selection algorithms and the security-driven flow.
//!
//! # Quickstart
//!
//! ```
//! use rand::SeedableRng;
//! use sttlock::benchgen::profiles;
//! use sttlock::core::{Flow, SelectionAlgorithm};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let circuit = profiles::by_name("s641")
//!     .expect("known profile")
//!     .generate(&mut rand::rngs::StdRng::seed_from_u64(1));
//! let flow = Flow::new(sttlock::techlib::Library::predictive_90nm());
//! let outcome = flow.run(&circuit, SelectionAlgorithm::ParametricAware, 42)?;
//! println!(
//!     "{} LUTs, {:.2}% power overhead",
//!     outcome.report.stt_count, outcome.report.power_overhead_pct
//! );
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use sttlock_attack as attack;
pub use sttlock_benchgen as benchgen;
pub use sttlock_core as core;
pub use sttlock_netlist as netlist;
pub use sttlock_opt as opt;
pub use sttlock_power as power;
pub use sttlock_sat as sat;
pub use sttlock_sim as sim;
pub use sttlock_sta as sta;
pub use sttlock_techlib as techlib;
