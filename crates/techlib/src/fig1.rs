//! The published Figure 1 data of the paper: SPICE comparison of the
//! MTJ-based (STT) LUT against static CMOS, normalized to the CMOS
//! implementation, in a 32 nm predictive technology.
//!
//! These constants are the *input data* of the reproduction — the STT
//! library is calibrated against them (see
//! [`SttLibrary::calibrated`](crate::stt::SttLibrary::calibrated)) and the
//! `fig1` bench binary regenerates the table from the calibrated model and
//! reports the residual error of the fit.

use sttlock_netlist::GateKind;

/// One row group of Figure 1: the five published ratios for a gate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig1Entry {
    /// The gate the LUT is compared against.
    pub kind: GateKind,
    /// Gate fan-in.
    pub fanin: usize,
    /// LUT delay / CMOS delay.
    pub delay: f64,
    /// LUT active power / CMOS active power at 10 % output activity.
    pub active_power_10: f64,
    /// LUT active power / CMOS active power at 30 % output activity.
    pub active_power_30: f64,
    /// LUT standby power / CMOS standby power.
    pub standby_power: f64,
    /// LUT energy per switching / CMOS energy per switching.
    pub energy_per_switching: f64,
}

/// The six gate groups of Figure 1, verbatim from the paper.
pub const PUBLISHED: [Fig1Entry; 6] = [
    Fig1Entry {
        kind: GateKind::Nand,
        fanin: 2,
        delay: 6.46,
        active_power_10: 90.35,
        active_power_30: 30.12,
        standby_power: 0.48,
        energy_per_switching: 58.36,
    },
    Fig1Entry {
        kind: GateKind::Nand,
        fanin: 4,
        delay: 4.49,
        active_power_10: 76.73,
        active_power_30: 25.57,
        standby_power: 0.96,
        energy_per_switching: 34.45,
    },
    Fig1Entry {
        kind: GateKind::Nor,
        fanin: 2,
        delay: 4.85,
        active_power_10: 80.2,
        active_power_30: 26.73,
        standby_power: 0.51,
        energy_per_switching: 38.89,
    },
    Fig1Entry {
        kind: GateKind::Nor,
        fanin: 4,
        delay: 3.06,
        active_power_10: 24.25,
        active_power_30: 8.08,
        standby_power: 1.06,
        energy_per_switching: 7.42,
    },
    Fig1Entry {
        kind: GateKind::Xor,
        fanin: 2,
        delay: 4.95,
        active_power_10: 22.45,
        active_power_30: 7.48,
        standby_power: 0.13,
        energy_per_switching: 11.11,
    },
    Fig1Entry {
        kind: GateKind::Xor,
        fanin: 4,
        delay: 4.18,
        active_power_10: 90.06,
        active_power_30: 30.02,
        standby_power: 0.04,
        energy_per_switching: 37.64,
    },
];

/// Looks up the published entry for a gate, if Figure 1 measured it.
pub fn published(kind: GateKind, fanin: usize) -> Option<Fig1Entry> {
    PUBLISHED
        .iter()
        .copied()
        .find(|e| e.kind == kind && e.fanin == fanin)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_finds_all_published_rows() {
        for e in PUBLISHED {
            assert_eq!(published(e.kind, e.fanin), Some(e));
        }
        assert_eq!(published(GateKind::And, 2), None);
    }

    #[test]
    fn active_power_scales_inversely_with_activity() {
        // The paper's data shows exactly 3x between the 10 % and 30 %
        // columns — LUT power is activity-insensitive while CMOS dynamic
        // power is proportional to activity.
        for e in PUBLISHED {
            let ratio = e.active_power_10 / e.active_power_30;
            assert!((ratio - 3.0).abs() < 0.01, "{}{}: {ratio}", e.kind, e.fanin);
        }
    }

    #[test]
    fn delay_overhead_shrinks_with_complexity() {
        // "as the circuit complexity increases this overhead reduces"
        assert!(
            published(GateKind::Nand, 4).unwrap().delay
                < published(GateKind::Nand, 2).unwrap().delay
        );
        assert!(
            published(GateKind::Nor, 4).unwrap().delay < published(GateKind::Nor, 2).unwrap().delay
        );
        assert!(
            published(GateKind::Xor, 4).unwrap().delay < published(GateKind::Xor, 2).unwrap().delay
        );
    }

    #[test]
    fn stacking_erodes_standby_advantage() {
        // High fan-in NAND/NOR static CMOS leaks less (stacking effect),
        // so the LUT's relative standby power rises above 1 at fan-in 4.
        assert!(
            published(GateKind::Nand, 4).unwrap().standby_power
                > published(GateKind::Nand, 2).unwrap().standby_power
        );
        assert!(published(GateKind::Nor, 4).unwrap().standby_power > 1.0);
    }
}
