//! The non-volatile STT-MRAM look-up-table model.
//!
//! The paper builds on the STT-based LUT of Suzuki (VLSI '09) as improved
//! by Mahmoodi (CAL '14). Its defining electrical properties (Section III
//! and Figure 1):
//!
//! * **content independence** — delay and power do not depend on the
//!   programmed truth table;
//! * **activity independence** — the LUT is a dynamic circuit that
//!   pre-charges every cycle, so its active power does not track input or
//!   output switching activity (this is also why it resists power
//!   side-channel analysis);
//! * power and delay depend **only on fan-in**;
//! * near-zero standby power thanks to the non-volatile MTJ storage;
//! * a large write current — programming is expensive, but happens once
//!   per configuration, not per cycle.
//!
//! The absolute parameters are obtained by calibrating against the
//! published Figure 1 ratios over the [`CmosLibrary`] baseline (geometric
//! mean across the measured gates of each fan-in), then log-interpolating
//! to the unmeasured fan-ins.

use crate::cmos::CmosLibrary;
use crate::fig1;

/// Electrical and physical parameters of one STT-based LUT.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LutParams {
    /// Number of LUT inputs.
    pub fanin: usize,
    /// Read-path propagation delay, nanoseconds (content-independent).
    pub delay_ns: f64,
    /// Circuit-level energy drawn per clock cycle by the dynamic read
    /// path, femtojoules. Active power is `clock_ghz * cycle_energy_fj`
    /// µW, regardless of activity. This is the isolated
    /// [`microbench_cycle_energy_fj`](LutParams::microbench_cycle_energy_fj)
    /// derated by the read-path duty factor (the improved Mahmoodi LUT
    /// only fires its pre-charge when the embedding logic clocks it) —
    /// the derating reconciles the paper's Figure 1 microbenchmark with
    /// its Table I circuit-level overheads.
    pub cycle_energy_fj: f64,
    /// Isolated-microbenchmark cycle energy (the Figure 1 load), fJ.
    pub microbench_cycle_energy_fj: f64,
    /// Standby (leakage) power, nanowatts — near zero for MTJ storage.
    pub standby_nw: f64,
    /// LUT area, square micrometers (MTJ array + sense amp + select tree).
    pub area_um2: f64,
    /// Energy to program one configuration bit, picojoules.
    pub write_energy_per_bit_pj: f64,
    /// Time to program the full table, nanoseconds.
    pub write_latency_ns: f64,
}

impl LutParams {
    /// Active power at the given clock, microwatts. Independent of the
    /// programmed content and of input activity, per the paper.
    pub fn active_power_uw(&self, clock_ghz: f64) -> f64 {
        // fJ × GHz = 1e-15 J × 1e9 Hz = 1e-6 W = µW.
        self.cycle_energy_fj * clock_ghz
    }

    /// Total energy to (re)program the LUT, picojoules.
    pub fn write_energy_pj(&self) -> f64 {
        self.write_energy_per_bit_pj * (1u64 << self.fanin) as f64
    }
}

/// The STT LUT library: calibrated parameters for fan-ins 1 through 6.
#[derive(Debug, Clone, PartialEq)]
pub struct SttLibrary {
    luts: [LutParams; 6],
}

impl SttLibrary {
    /// Calibrates the LUT family against the published Figure 1 ratios
    /// over the given CMOS baseline.
    ///
    /// For each fan-in with published measurements (2 and 4), the absolute
    /// LUT delay / cycle energy / standby power are the geometric means of
    /// `ratio × cmos_absolute` across the measured gates. Fan-ins 3, 5 and
    /// 6 are log-interpolated/extrapolated; fan-in 1 reuses the fan-in-2
    /// read path (a 1-input function occupies a 2-input LUT).
    pub fn calibrated(cmos: &CmosLibrary) -> Self {
        let fit = |fanin: usize| -> (f64, f64, f64) {
            let entries: Vec<_> = fig1::PUBLISHED
                .iter()
                .filter(|e| e.fanin == fanin)
                .collect();
            assert!(!entries.is_empty());
            let mut delay = 1.0f64;
            let mut energy = 1.0f64;
            let mut standby = 1.0f64;
            for e in &entries {
                let cell = cmos.gate(e.kind, e.fanin);
                delay *= e.delay * cell.delay_ns;
                // Published: LUT_active / CMOS_active(α=10%), and CMOS
                // active power at activity α is α·f·E_sw. At f = 1 GHz the
                // LUT cycle energy (fJ) equals its active power (µW).
                energy *= e.active_power_10 * 0.10 * cell.switch_energy_fj;
                standby *= e.standby_power * cell.leakage_nw;
            }
            let n = entries.len() as f64;
            (
                delay.powf(1.0 / n),
                energy.powf(1.0 / n),
                standby.powf(1.0 / n),
            )
        };
        let (d2, e2, s2) = fit(2);
        let (d4, e4, s4) = fit(4);
        // Log-space interpolation between the two measured fan-ins.
        let interp = |a: f64, b: f64, k: usize| -> f64 {
            let t = (k as f64 - 2.0) / 2.0; // 0 at k=2, 1 at k=4
            (a.ln() + (b.ln() - a.ln()) * t).exp()
        };
        // Fraction of the isolated-microbenchmark read energy a LUT draws
        // per cycle once embedded in a clock-gated circuit. Calibrated so
        // the Table I power-overhead magnitudes reproduce; Figure 1's
        // active-power rows are reported at the microbenchmark load.
        const READ_DUTY_FACTOR: f64 = 0.15;
        let mk = |k: usize| -> LutParams {
            let (d, e, s) = (
                interp(d2, d4, k.max(2)),
                interp(e2, e4, k.max(2)),
                interp(s2, s4, k.max(2)).max(0.05),
            );
            LutParams {
                fanin: k,
                delay_ns: d,
                cycle_energy_fj: e * READ_DUTY_FACTOR,
                microbench_cycle_energy_fj: e,
                standby_nw: s,
                // MTJ array grows with 2^k; periphery (sense amp, select
                // tree) amortizes, giving ~2.5-3x the replaced cell at
                // small k, consistent with the paper's Table I area trend.
                area_um2: 6.0 + 1.6 * (1u64 << k) as f64,
                write_energy_per_bit_pj: 0.45,
                write_latency_ns: 10.0 * (1u64 << k) as f64,
            }
        };
        SttLibrary {
            luts: [mk(1), mk(2), mk(3), mk(4), mk(5), mk(6)],
        }
    }

    /// Returns a copy of this library with the given per-fan-in
    /// overrides applied (used by the library file format).
    #[must_use]
    pub fn with_overrides(
        mut self,
        overrides: std::collections::HashMap<usize, LutParams>,
    ) -> Self {
        for (fanin, params) in overrides {
            assert!(
                (1..=6).contains(&fanin),
                "STT LUT fan-in must be between 1 and 6, got {fanin}"
            );
            assert_eq!(
                params.fanin, fanin,
                "override fan-in field must match its key"
            );
            self.luts[fanin - 1] = params;
        }
        self
    }

    /// Parameters of a `fanin`-input LUT.
    ///
    /// # Panics
    ///
    /// Panics if `fanin` is 0 or exceeds 6.
    pub fn lut(&self, fanin: usize) -> LutParams {
        assert!(
            (1..=6).contains(&fanin),
            "STT LUT fan-in must be between 1 and 6, got {fanin}"
        );
        self.luts[fanin - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sttlock_netlist::GateKind;

    fn lib() -> SttLibrary {
        SttLibrary::calibrated(&CmosLibrary::predictive_90nm())
    }

    #[test]
    fn calibration_brackets_published_delay_ratios() {
        let cmos = CmosLibrary::predictive_90nm();
        let stt = lib();
        for e in fig1::PUBLISHED {
            let derived = stt.lut(e.fanin).delay_ns / cmos.gate(e.kind, e.fanin).delay_ns;
            // The single per-fan-in LUT cannot match all gates exactly
            // (the published baselines differ per gate); the geometric-mean
            // fit must stay within 2x of every published ratio.
            assert!(
                derived / e.delay < 2.0 && e.delay / derived < 2.0,
                "{}{}: derived {derived:.2} vs published {}",
                e.kind,
                e.fanin,
                e.delay
            );
        }
    }

    #[test]
    fn delay_and_energy_grow_with_fanin() {
        let stt = lib();
        for k in 2..6 {
            assert!(stt.lut(k + 1).delay_ns >= stt.lut(k).delay_ns);
            assert!(stt.lut(k + 1).cycle_energy_fj >= stt.lut(k).cycle_energy_fj);
            assert!(stt.lut(k + 1).area_um2 > stt.lut(k).area_um2);
        }
    }

    #[test]
    fn standby_power_is_near_zero() {
        let cmos = CmosLibrary::predictive_90nm();
        let stt = lib();
        // LUT2 standby well under the NAND2 cell it typically replaces.
        assert!(stt.lut(2).standby_nw < cmos.gate(GateKind::Nand, 2).leakage_nw);
    }

    #[test]
    fn active_power_is_activity_and_content_independent() {
        let stt = lib();
        let p = stt.lut(3);
        // Single number per fan-in: the API gives no way for activity or
        // content to enter — assert the arithmetic of the helper.
        assert!((p.active_power_uw(1.0) - p.cycle_energy_fj).abs() < 1e-12);
        assert!((p.active_power_uw(2.0) - 2.0 * p.cycle_energy_fj).abs() < 1e-9);
    }

    #[test]
    fn write_energy_scales_with_table_size() {
        let stt = lib();
        assert!(stt.lut(4).write_energy_pj() > stt.lut(2).write_energy_pj());
        assert!((stt.lut(2).write_energy_pj() - 4.0 * 0.45).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "between 1 and 6")]
    fn rejects_seven_input_lut() {
        let _ = lib().lut(7);
    }
}
