//! Technology models for the `sttlock` hybrid STT-CMOS toolkit.
//!
//! Two cell families are modeled:
//!
//! * [`cmos`] — a synthetic 90 nm-class static CMOS standard-cell library
//!   (delay, switching energy, leakage, area per gate kind and fan-in),
//!   standing in for the Synopsys library the paper synthesized against.
//!   All paper results are *relative* overheads, so any self-consistent
//!   cell library preserves the trends.
//! * [`stt`] — the non-volatile STT-MRAM look-up-table model of Suzuki
//!   (VLSI '09) as characterized in Figure 1 of the paper: LUT delay and
//!   power depend only on fan-in, never on the programmed content or the
//!   input activity, and standby power is near zero.
//!
//! The published Figure 1 ratios live in [`fig1`]; the STT model is
//! *calibrated* against them at construction time
//! ([`SttLibrary::calibrated`]), so the technology trends of the paper
//! (LUT delay overhead shrinking with complexity, activity-insensitive
//! power, sub-CMOS standby power) hold by construction.
//!
//! # Example
//!
//! ```
//! use sttlock_techlib::Library;
//! use sttlock_netlist::GateKind;
//!
//! let lib = Library::predictive_90nm();
//! let nand2 = lib.gate(GateKind::Nand, 2);
//! let lut2 = lib.lut(2);
//! // The paper's headline trade-off: the LUT is slower than the cell it
//! // replaces but burns less standby power.
//! assert!(lut2.delay_ns > nand2.delay_ns);
//! assert!(lut2.standby_nw < nand2.leakage_nw * 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cmos;
pub mod fig1;
pub mod stt;
pub mod textfmt;

pub use cmos::{CellParams, CmosLibrary, DffParams};
pub use stt::{LutParams, SttLibrary};

use sttlock_netlist::GateKind;

/// A complete technology library: CMOS cells, STT LUTs and the operating
/// point (clock frequency) shared by all analyses.
#[derive(Debug, Clone, PartialEq)]
pub struct Library {
    cmos: CmosLibrary,
    stt: SttLibrary,
    clock_ghz: f64,
}

impl Library {
    /// The default library: synthetic 90 nm CMOS cells with the STT model
    /// calibrated against the paper's Figure 1, clocked at 1 GHz.
    pub fn predictive_90nm() -> Self {
        let cmos = CmosLibrary::predictive_90nm();
        let stt = SttLibrary::calibrated(&cmos);
        Library {
            cmos,
            stt,
            clock_ghz: 1.0,
        }
    }

    /// Builds a library from explicit parts.
    pub fn new(cmos: CmosLibrary, stt: SttLibrary, clock_ghz: f64) -> Self {
        assert!(clock_ghz > 0.0, "clock frequency must be positive");
        Library {
            cmos,
            stt,
            clock_ghz,
        }
    }

    /// Parameters of the CMOS cell implementing `kind` at `fanin`.
    ///
    /// # Panics
    ///
    /// Panics if the fan-in is illegal for the kind (see
    /// [`GateKind::arity_ok`]).
    pub fn gate(&self, kind: GateKind, fanin: usize) -> CellParams {
        self.cmos.gate(kind, fanin)
    }

    /// Parameters of a `fanin`-input STT LUT.
    ///
    /// # Panics
    ///
    /// Panics if `fanin` is 0 or exceeds 6.
    pub fn lut(&self, fanin: usize) -> LutParams {
        self.stt.lut(fanin)
    }

    /// Flip-flop parameters.
    pub fn dff(&self) -> DffParams {
        self.cmos.dff()
    }

    /// The operating clock frequency in GHz.
    pub fn clock_ghz(&self) -> f64 {
        self.clock_ghz
    }

    /// The CMOS sub-library.
    pub fn cmos(&self) -> &CmosLibrary {
        &self.cmos
    }

    /// The STT sub-library.
    pub fn stt(&self) -> &SttLibrary {
        &self.stt
    }
}

impl Default for Library {
    fn default() -> Self {
        Library::predictive_90nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_library_is_predictive_90nm() {
        let a = Library::default();
        let b = Library::predictive_90nm();
        assert_eq!(a, b);
        assert!((a.clock_ghz() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lut_is_slower_but_leaks_less_than_small_gates() {
        let lib = Library::predictive_90nm();
        for (kind, fanin) in [
            (GateKind::Nand, 2),
            (GateKind::Nor, 2),
            (GateKind::Xor, 2),
            (GateKind::Nand, 4),
        ] {
            let cell = lib.gate(kind, fanin);
            let lut = lib.lut(fanin);
            assert!(lut.delay_ns > cell.delay_ns, "{kind}{fanin} delay");
            // "for low fan-in (4-input or less) standard logic gates, the
            // STT-based LUT style implementation offers less leakage"
            // modulo the NOR4/NAND4 stacking exception noted in the paper.
            if fanin == 2 {
                assert!(lut.standby_nw < cell.leakage_nw, "{kind}{fanin} standby");
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_clock() {
        let cmos = CmosLibrary::predictive_90nm();
        let stt = SttLibrary::calibrated(&cmos);
        let _ = Library::new(cmos, stt, 0.0);
    }
}
