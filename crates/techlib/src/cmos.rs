//! Synthetic 90 nm-class static CMOS standard-cell library.
//!
//! The paper synthesizes the ISCAS '89 benchmarks with Synopsys Design
//! Compiler in a 90 nm node; its published numbers are all *relative*
//! overheads against that baseline, so this reproduction uses an
//! analytical cell model with physically plausible 90 nm magnitudes:
//!
//! * inverter FO4-ish delays in the tens of picoseconds,
//! * switching energies of a few femtojoules,
//! * leakage of a few nanowatts per cell,
//! * NOR pull-up (series PMOS) delay penalty larger than the NAND
//!   pull-down penalty — the asymmetry Figure 1 of the paper leans on,
//! * leakage *reduction* with fan-in for NAND/NOR due to the transistor
//!   stacking effect (Section III of the paper).

use sttlock_netlist::GateKind;

/// Electrical and physical parameters of one combinational cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellParams {
    /// Pin-to-pin worst-case propagation delay, nanoseconds.
    pub delay_ns: f64,
    /// Energy per output switching event, femtojoules.
    pub switch_energy_fj: f64,
    /// Standby (leakage) power, nanowatts.
    pub leakage_nw: f64,
    /// Cell area, square micrometers.
    pub area_um2: f64,
}

/// Parameters of the D flip-flop cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DffParams {
    /// Clock-to-Q delay, nanoseconds.
    pub clk_to_q_ns: f64,
    /// Setup time, nanoseconds.
    pub setup_ns: f64,
    /// Energy per clock edge, femtojoules.
    pub clock_energy_fj: f64,
    /// Standby power, nanowatts.
    pub leakage_nw: f64,
    /// Cell area, square micrometers.
    pub area_um2: f64,
}

/// The CMOS standard-cell library: base 2-input (or 1-input) cells plus
/// analytic fan-in scaling laws, optionally overridden per cell from a
/// library file (see [`textfmt`](crate::textfmt)).
#[derive(Debug, Clone, PartialEq)]
pub struct CmosLibrary {
    dff: DffParams,
    overrides: std::collections::HashMap<(GateKind, usize), CellParams>,
}

/// Base parameters for the minimal-arity version of each kind
/// (1 input for BUF/NOT, 2 inputs otherwise).
fn base(kind: GateKind) -> CellParams {
    // delay ns, energy fJ, leakage nW, area µm²
    let (d, e, l, a) = match kind {
        GateKind::Buf => (0.025, 1.2, 3.0, 3.3),
        GateKind::Not => (0.015, 0.8, 2.0, 2.6),
        GateKind::And => (0.045, 2.2, 6.0, 5.5),
        GateKind::Nand => (0.030, 1.6, 4.0, 4.2),
        GateKind::Or => (0.055, 2.4, 6.5, 6.0),
        GateKind::Nor => (0.040, 1.8, 4.5, 4.7),
        GateKind::Xor => (0.060, 4.5, 8.0, 7.5),
        GateKind::Xnor => (0.062, 4.6, 8.2, 7.6),
    };
    CellParams {
        delay_ns: d,
        switch_energy_fj: e,
        leakage_nw: l,
        area_um2: a,
    }
}

/// Per-extra-input delay growth factor.
fn delay_growth(kind: GateKind) -> f64 {
    match kind {
        // Series-PMOS pull-up makes wide NOR/OR markedly slower; the paper
        // notes exactly this PMOS-stack asymmetry when discussing Fig. 1.
        GateKind::Nor | GateKind::Or => 0.55,
        GateKind::Nand | GateKind::And => 0.35,
        GateKind::Xor | GateKind::Xnor => 0.60,
        GateKind::Buf | GateKind::Not => 0.0,
    }
}

/// Per-extra-input leakage growth factor. Negative for NAND/NOR: the
/// transistor stacking effect suppresses leakage in series stacks.
fn leakage_growth(kind: GateKind) -> f64 {
    match kind {
        GateKind::Nand | GateKind::Nor => -0.12,
        GateKind::And | GateKind::Or => -0.05,
        GateKind::Xor | GateKind::Xnor => 0.30,
        GateKind::Buf | GateKind::Not => 0.0,
    }
}

impl CmosLibrary {
    /// The default synthetic 90 nm library.
    pub fn predictive_90nm() -> Self {
        CmosLibrary {
            dff: DffParams {
                clk_to_q_ns: 0.080,
                setup_ns: 0.040,
                clock_energy_fj: 6.0,
                leakage_nw: 10.0,
                area_um2: 18.0,
            },
            overrides: std::collections::HashMap::new(),
        }
    }

    /// Builds a library with an explicit flip-flop and per-cell
    /// overrides; fan-ins not listed fall back to the analytic model.
    pub fn with_overrides(
        dff: DffParams,
        overrides: std::collections::HashMap<(GateKind, usize), CellParams>,
    ) -> Self {
        CmosLibrary { dff, overrides }
    }

    /// The per-cell overrides installed on this library.
    pub fn overrides(&self) -> &std::collections::HashMap<(GateKind, usize), CellParams> {
        &self.overrides
    }

    /// Parameters of the cell implementing `kind` at `fanin`.
    ///
    /// Fan-ins above 4 are modeled as the synthesis tool would map them:
    /// a balanced cascade of narrower cells, which keeps delay growth
    /// logarithmic-ish and forfeits the stacking leakage advantage — the
    /// caveat the paper raises for high fan-in NAND/NOR.
    ///
    /// # Panics
    ///
    /// Panics if `fanin` is illegal for `kind`.
    pub fn gate(&self, kind: GateKind, fanin: usize) -> CellParams {
        assert!(kind.arity_ok(fanin), "{kind} cannot have fan-in {fanin}");
        if let Some(p) = self.overrides.get(&(kind, fanin)) {
            return *p;
        }
        let b = base(kind);
        if kind.is_unary() {
            return b;
        }
        let extra = (fanin.min(4) - 2) as f64;
        let mut p = CellParams {
            delay_ns: b.delay_ns * (1.0 + delay_growth(kind) * extra),
            switch_energy_fj: b.switch_energy_fj * (1.0 + 0.45 * extra),
            leakage_nw: (b.leakage_nw * (1.0 + leakage_growth(kind) * extra)).max(0.5),
            area_um2: b.area_um2 * (1.0 + 0.40 * extra),
        };
        if fanin > 4 {
            // Cascade of 4-input cells: one extra logic level per doubling,
            // linear growth in energy/leakage/area with the gate count of
            // the decomposition (≈ (fanin-1)/3 four-input cells).
            let cells = ((fanin - 1) as f64 / 3.0).ceil();
            let levels = (fanin as f64).log2().ceil();
            p.delay_ns *= levels / 2.0 + 0.5;
            p.switch_energy_fj *= cells;
            p.leakage_nw *= cells;
            p.area_um2 *= cells;
        }
        p
    }

    /// Flip-flop parameters.
    pub fn dff(&self) -> DffParams {
        self.dff
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nor_slows_faster_than_nand_with_fanin() {
        let lib = CmosLibrary::predictive_90nm();
        let nand_ratio =
            lib.gate(GateKind::Nand, 4).delay_ns / lib.gate(GateKind::Nand, 2).delay_ns;
        let nor_ratio = lib.gate(GateKind::Nor, 4).delay_ns / lib.gate(GateKind::Nor, 2).delay_ns;
        assert!(nor_ratio > nand_ratio, "PMOS stack penalty missing");
    }

    #[test]
    fn stacking_reduces_nand_leakage() {
        let lib = CmosLibrary::predictive_90nm();
        assert!(lib.gate(GateKind::Nand, 4).leakage_nw < lib.gate(GateKind::Nand, 2).leakage_nw);
        assert!(lib.gate(GateKind::Xor, 4).leakage_nw > lib.gate(GateKind::Xor, 2).leakage_nw);
    }

    #[test]
    fn unary_cells_ignore_scaling() {
        let lib = CmosLibrary::predictive_90nm();
        let not = lib.gate(GateKind::Not, 1);
        assert!(not.delay_ns < lib.gate(GateKind::Nand, 2).delay_ns);
    }

    #[test]
    fn wide_gates_are_cascades() {
        let lib = CmosLibrary::predictive_90nm();
        let g6 = lib.gate(GateKind::And, 6);
        let g4 = lib.gate(GateKind::And, 4);
        assert!(g6.delay_ns > g4.delay_ns);
        assert!(g6.area_um2 > g4.area_um2);
        assert!(g6.switch_energy_fj > g4.switch_energy_fj);
    }

    #[test]
    #[should_panic(expected = "cannot have fan-in")]
    fn rejects_two_input_inverter() {
        let _ = CmosLibrary::predictive_90nm().gate(GateKind::Not, 2);
    }

    #[test]
    fn all_parameters_positive() {
        let lib = CmosLibrary::predictive_90nm();
        for kind in GateKind::ALL {
            let lo = if kind.is_unary() { 1 } else { 2 };
            let hi = if kind.is_unary() { 1 } else { 8 };
            for fanin in lo..=hi {
                let p = lib.gate(kind, fanin);
                assert!(p.delay_ns > 0.0);
                assert!(p.switch_energy_fj > 0.0);
                assert!(p.leakage_nw > 0.0);
                assert!(p.area_um2 > 0.0);
            }
        }
        let ff = lib.dff();
        assert!(ff.clk_to_q_ns > 0.0 && ff.setup_ns > 0.0);
    }
}
