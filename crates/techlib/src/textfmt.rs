//! A plain-text technology-library exchange format.
//!
//! Lets teams characterize their own CMOS cells and STT LUTs (the paper
//! passes "the STT technology library information" into the flow,
//! Figure 2) without recompiling:
//!
//! ```text
//! # sttlock technology library v1
//! library my_90nm
//! clock_ghz 1.0
//! dff clk_to_q 0.080 setup 0.040 energy 6.0 leakage 10.0 area 18.0
//! cell NAND 2 delay 0.030 energy 1.6 leakage 4.0 area 4.2
//! lut 2 delay 0.222 cycle_energy 1.92 microbench_energy 12.8 \
//!       standby 1.66 area 12.4 write_energy 0.45 write_latency 40
//! ```
//!
//! `cell` lines override the built-in analytic CMOS model per
//! (kind, fan-in); unlisted cells fall back to it. `lut` lines replace
//! the calibrated STT parameters for that fan-in. Fields within a line
//! may appear in any order; `\` does **not** continue lines (the example
//! above is wrapped for the docs only).

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use sttlock_netlist::GateKind;

use crate::cmos::{CellParams, CmosLibrary, DffParams};
use crate::stt::{LutParams, SttLibrary};
use crate::Library;

/// Errors from [`parse_library`].
#[derive(Debug, Clone, PartialEq)]
pub struct ParseLibraryError {
    /// 1-based line number.
    pub line: usize,
    /// Problem description.
    pub message: String,
}

impl fmt::Display for ParseLibraryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "library parse error on line {}: {}",
            self.line, self.message
        )
    }
}

impl Error for ParseLibraryError {}

/// Serializes a library, materializing the analytic CMOS model for
/// fan-ins 1–4 so the file is self-contained.
pub fn write_library(lib: &Library) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("# sttlock technology library v1\n");
    let _ = writeln!(out, "library exported");
    let _ = writeln!(out, "clock_ghz {}", lib.clock_ghz());
    let ff = lib.dff();
    let _ = writeln!(
        out,
        "dff clk_to_q {} setup {} energy {} leakage {} area {}",
        ff.clk_to_q_ns, ff.setup_ns, ff.clock_energy_fj, ff.leakage_nw, ff.area_um2
    );
    for kind in GateKind::ALL {
        let fanins: &[usize] = if kind.is_unary() { &[1] } else { &[2, 3, 4] };
        for &fanin in fanins {
            let p = lib.gate(kind, fanin);
            let _ = writeln!(
                out,
                "cell {} {} delay {} energy {} leakage {} area {}",
                kind.bench_keyword(),
                fanin,
                p.delay_ns,
                p.switch_energy_fj,
                p.leakage_nw,
                p.area_um2
            );
        }
    }
    for fanin in 1..=6usize {
        let l = lib.lut(fanin);
        let _ = writeln!(
            out,
            "lut {} delay {} cycle_energy {} microbench_energy {} standby {} area {} write_energy {} write_latency {}",
            fanin,
            l.delay_ns,
            l.cycle_energy_fj,
            l.microbench_cycle_energy_fj,
            l.standby_nw,
            l.area_um2,
            l.write_energy_per_bit_pj,
            l.write_latency_ns
        );
    }
    out
}

/// Parses a library file. Unlisted CMOS cells use the analytic model;
/// unlisted LUT fan-ins keep the Figure-1-calibrated defaults.
///
/// # Errors
///
/// Returns [`ParseLibraryError`] with the offending line for malformed
/// input.
pub fn parse_library(text: &str) -> Result<Library, ParseLibraryError> {
    let mut clock_ghz = 1.0f64;
    let mut dff: Option<DffParams> = None;
    let mut overrides: HashMap<(GateKind, usize), CellParams> = HashMap::new();
    let mut luts: HashMap<usize, LutParams> = HashMap::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |message: String| ParseLibraryError {
            line: lineno + 1,
            message,
        };
        let mut words = line.split_whitespace();
        match words.next().expect("nonempty line has a word") {
            "library" => {} // informative only
            "clock_ghz" => {
                clock_ghz = words
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| err("clock_ghz needs a number".into()))?;
            }
            "dff" => {
                let f = parse_fields(words, &mut |_| true).map_err(&err)?;
                dff = Some(DffParams {
                    clk_to_q_ns: field(&f, "clk_to_q").map_err(&err)?,
                    setup_ns: field(&f, "setup").map_err(&err)?,
                    clock_energy_fj: field(&f, "energy").map_err(&err)?,
                    leakage_nw: field(&f, "leakage").map_err(&err)?,
                    area_um2: field(&f, "area").map_err(&err)?,
                });
            }
            "cell" => {
                let kind_word = words
                    .next()
                    .ok_or_else(|| err("cell needs a kind".into()))?;
                let kind = GateKind::from_bench_keyword(kind_word)
                    .ok_or_else(|| err(format!("unknown cell kind `{kind_word}`")))?;
                let fanin: usize = words
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| err("cell needs a fan-in".into()))?;
                if !kind.arity_ok(fanin) {
                    return Err(err(format!("{kind} cannot have fan-in {fanin}")));
                }
                let f = parse_fields(words, &mut |_| true).map_err(&err)?;
                overrides.insert(
                    (kind, fanin),
                    CellParams {
                        delay_ns: field(&f, "delay").map_err(&err)?,
                        switch_energy_fj: field(&f, "energy").map_err(&err)?,
                        leakage_nw: field(&f, "leakage").map_err(&err)?,
                        area_um2: field(&f, "area").map_err(&err)?,
                    },
                );
            }
            "lut" => {
                let fanin: usize = words
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| err("lut needs a fan-in".into()))?;
                if !(1..=6).contains(&fanin) {
                    return Err(err(format!("lut fan-in {fanin} outside 1..=6")));
                }
                let f = parse_fields(words, &mut |_| true).map_err(&err)?;
                luts.insert(
                    fanin,
                    LutParams {
                        fanin,
                        delay_ns: field(&f, "delay").map_err(&err)?,
                        cycle_energy_fj: field(&f, "cycle_energy").map_err(&err)?,
                        microbench_cycle_energy_fj: field(&f, "microbench_energy").map_err(&err)?,
                        standby_nw: field(&f, "standby").map_err(&err)?,
                        area_um2: field(&f, "area").map_err(&err)?,
                        write_energy_per_bit_pj: field(&f, "write_energy").map_err(&err)?,
                        write_latency_ns: field(&f, "write_latency").map_err(&err)?,
                    },
                );
            }
            other => return Err(err(format!("unknown directive `{other}`"))),
        }
    }

    let cmos = CmosLibrary::with_overrides(
        dff.unwrap_or_else(|| CmosLibrary::predictive_90nm().dff()),
        overrides,
    );
    let stt = SttLibrary::calibrated(&cmos).with_overrides(luts);
    Ok(Library::new(cmos, stt, clock_ghz))
}

fn parse_fields<'a>(
    words: impl Iterator<Item = &'a str>,
    accept: &mut impl FnMut(&str) -> bool,
) -> Result<HashMap<String, f64>, String> {
    let mut out = HashMap::new();
    let mut it = words.peekable();
    while let Some(key) = it.next() {
        if !accept(key) {
            return Err(format!("unexpected field `{key}`"));
        }
        let value = it
            .next()
            .ok_or_else(|| format!("field `{key}` needs a value"))?;
        let v: f64 = value
            .parse()
            .map_err(|_| format!("field `{key}` expects a number, got `{value}`"))?;
        out.insert(key.to_owned(), v);
    }
    Ok(out)
}

fn field(fields: &HashMap<String, f64>, key: &str) -> Result<f64, String> {
    fields
        .get(key)
        .copied()
        .ok_or_else(|| format!("missing field `{key}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_default_library() {
        let lib = Library::predictive_90nm();
        let text = write_library(&lib);
        let back = parse_library(&text).expect("own output parses");
        assert_eq!(back.clock_ghz(), lib.clock_ghz());
        for kind in GateKind::ALL {
            let fanins: &[usize] = if kind.is_unary() { &[1] } else { &[2, 3, 4] };
            for &f in fanins {
                assert_eq!(back.gate(kind, f), lib.gate(kind, f), "{kind}{f}");
            }
        }
        for f in 1..=6 {
            assert_eq!(back.lut(f), lib.lut(f), "lut{f}");
        }
        assert_eq!(back.dff(), lib.dff());
    }

    #[test]
    fn partial_files_fall_back_to_the_analytic_model() {
        let text = "clock_ghz 2.0\ncell NAND 2 delay 0.05 energy 2.0 leakage 5.0 area 5.0\n";
        let lib = parse_library(text).unwrap();
        assert_eq!(lib.clock_ghz(), 2.0);
        assert_eq!(lib.gate(GateKind::Nand, 2).delay_ns, 0.05);
        // Unlisted cells use the analytic default.
        let default = Library::predictive_90nm();
        assert_eq!(lib.gate(GateKind::Xor, 2), default.gate(GateKind::Xor, 2));
        assert_eq!(lib.dff(), default.dff());
    }

    #[test]
    fn comments_and_field_order_are_flexible() {
        let text = "# header\nlut 2 area 10 delay 0.3 standby 1.0 cycle_energy 2.0 \
                    microbench_energy 13.0 write_latency 40 write_energy 0.5 # inline\n";
        let lib = parse_library(text).unwrap();
        assert_eq!(lib.lut(2).delay_ns, 0.3);
        assert_eq!(lib.lut(2).area_um2, 10.0);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_library("clock_ghz 1.0\nbogus directive\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e = parse_library("cell FROB 2 delay 1 energy 1 leakage 1 area 1\n").unwrap_err();
        assert!(e.message.contains("FROB"));
        let e = parse_library("lut 9 delay 1\n").unwrap_err();
        assert!(e.message.contains("1..=6"));
    }

    #[test]
    fn missing_fields_are_reported() {
        let e = parse_library("cell NAND 2 delay 0.05\n").unwrap_err();
        assert!(e.message.contains("energy"));
    }
}
