//! SAT-based combinational equivalence checking.
//!
//! Builds a miter between two programmed netlists over the full-scan
//! frame model (shared primary inputs and state; primary outputs and
//! next-state must match) and asks the solver for a distinguishing
//! assignment. UNSAT proves frame equivalence, which for designs with
//! identical reset behaviour implies sequential equivalence.
//!
//! The flow uses this to *prove* (rather than spot-check) that a hybrid
//! netlist implements its CMOS original, and the attacks use it to
//! validate recovered bitstreams exactly.

use std::error::Error;
use std::fmt;

use sttlock_netlist::Netlist;

use crate::encode::{assert_some_difference, encode};
use crate::lit::{Lit, Var};
use crate::solver::{SatResult, Solver};

/// Outcome of an equivalence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EquivResult {
    /// No frame distinguishes the designs: equivalent.
    Equivalent,
    /// A distinguishing frame exists; the witness assigns every primary
    /// input and every state bit (`true`/`false` per position).
    Different {
        /// Primary-input assignment of the witness frame.
        inputs: Vec<bool>,
        /// Flip-flop state assignment of the witness frame (arena
        /// order).
        state: Vec<bool>,
    },
}

/// Reasons an equivalence check cannot run.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EquivError {
    /// The designs differ in primary-input, primary-output or flip-flop
    /// counts — no common frame interface exists.
    InterfaceMismatch {
        /// Description of the mismatching interface part.
        what: &'static str,
    },
    /// One of the designs contains a redacted LUT; equivalence of
    /// *unprogrammed* designs is not well defined (every key choice is a
    /// different function).
    RedactedLut {
        /// Name of the offending LUT.
        name: String,
    },
}

impl fmt::Display for EquivError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EquivError::InterfaceMismatch { what } => {
                write!(f, "designs disagree on their {what} interface")
            }
            EquivError::RedactedLut { name } => {
                write!(
                    f,
                    "LUT `{name}` is unprogrammed; program both designs before checking"
                )
            }
        }
    }
}

impl Error for EquivError {}

/// Checks frame equivalence of two programmed netlists.
///
/// # Errors
///
/// Returns [`EquivError::InterfaceMismatch`] when the I/O or register
/// interfaces differ and [`EquivError::RedactedLut`] when either design
/// still contains unprogrammed LUTs.
///
/// # Example
///
/// ```
/// use sttlock_netlist::{GateKind, NetlistBuilder};
/// use sttlock_sat::equiv::{check_equivalence, EquivResult};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = NetlistBuilder::new("a");
/// b.input("x");
/// b.input("y");
/// b.gate("o", GateKind::Nand, &["x", "y"]);
/// b.output("o");
/// let a = b.finish()?;
///
/// // NAND vs its LUT replacement: provably the same function.
/// let mut hybrid = a.clone();
/// hybrid.replace_gate_with_lut(hybrid.find("o").unwrap())?;
/// assert_eq!(check_equivalence(&a, &hybrid)?, EquivResult::Equivalent);
/// # Ok(())
/// # }
/// ```
pub fn check_equivalence(a: &Netlist, b: &Netlist) -> Result<EquivResult, EquivError> {
    if a.inputs().len() != b.inputs().len() {
        return Err(EquivError::InterfaceMismatch {
            what: "primary-input",
        });
    }
    if a.outputs().len() != b.outputs().len() {
        return Err(EquivError::InterfaceMismatch {
            what: "primary-output",
        });
    }
    for n in [a, b] {
        for (id, node) in n.iter() {
            if let sttlock_netlist::Node::Lut { config: None, .. } = node {
                return Err(EquivError::RedactedLut {
                    name: n.node_name(id).to_owned(),
                });
            }
        }
    }

    let mut solver = Solver::new();
    let ea = encode(a, &mut solver);
    let eb = encode(b, &mut solver);
    if ea.state_inputs.len() != eb.state_inputs.len() {
        return Err(EquivError::InterfaceMismatch { what: "flip-flop" });
    }

    for (&x, &y) in ea.inputs.iter().zip(&eb.inputs) {
        tie(&mut solver, x, y);
    }
    for ((_, x), (_, y)) in ea.state_inputs.iter().zip(&eb.state_inputs) {
        tie(&mut solver, *x, *y);
    }
    let mut pairs: Vec<(Var, Var)> = ea
        .outputs
        .iter()
        .copied()
        .zip(eb.outputs.iter().copied())
        .collect();
    pairs.extend(
        ea.next_state
            .iter()
            .map(|(_, v)| *v)
            .zip(eb.next_state.iter().map(|(_, v)| *v)),
    );
    assert_some_difference(&mut solver, &pairs);

    match solver.solve() {
        SatResult::Unsat => Ok(EquivResult::Equivalent),
        SatResult::Sat => {
            let value = |v: Var| solver.value(v) == Some(true);
            Ok(EquivResult::Different {
                inputs: ea.inputs.iter().map(|&v| value(v)).collect(),
                state: ea.state_inputs.iter().map(|(_, v)| value(*v)).collect(),
            })
        }
    }
}

fn tie(solver: &mut Solver, x: Var, y: Var) {
    solver.add_clause(&[Lit::pos(x), Lit::neg(y)]);
    solver.add_clause(&[Lit::neg(x), Lit::pos(y)]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sttlock_netlist::{GateKind, NetlistBuilder, TruthTable};

    fn design(kind: GateKind) -> Netlist {
        let mut b = NetlistBuilder::new("d");
        b.input("x");
        b.input("y");
        b.gate("g", kind, &["x", "y"]);
        b.dff("q", "g");
        b.gate("o", GateKind::Xor, &["q", "x"]);
        b.output("o");
        b.finish().unwrap()
    }

    #[test]
    fn identical_designs_are_equivalent() {
        let a = design(GateKind::Nand);
        assert_eq!(check_equivalence(&a, &a).unwrap(), EquivResult::Equivalent);
    }

    #[test]
    fn lut_replacement_is_proven_equivalent() {
        let a = design(GateKind::Nor);
        let mut hybrid = a.clone();
        hybrid
            .replace_gate_with_lut(hybrid.find("g").unwrap())
            .unwrap();
        hybrid
            .replace_gate_with_lut(hybrid.find("o").unwrap())
            .unwrap();
        assert_eq!(
            check_equivalence(&a, &hybrid).unwrap(),
            EquivResult::Equivalent
        );
    }

    #[test]
    fn different_gates_produce_a_witness() {
        let a = design(GateKind::And);
        let b = design(GateKind::Or);
        match check_equivalence(&a, &b).unwrap() {
            EquivResult::Different { inputs, state } => {
                assert_eq!(inputs.len(), 2);
                assert_eq!(state.len(), 1);
                // AND and OR differ exactly when x != y.
                assert_ne!(inputs[0], inputs[1]);
            }
            EquivResult::Equivalent => panic!("AND and OR are not equivalent"),
        }
    }

    #[test]
    fn deep_structural_difference_detected_through_state() {
        // Differ only in the D-cone: visible on the next-state outputs.
        let a = design(GateKind::Xor);
        let b = design(GateKind::Xnor);
        assert!(matches!(
            check_equivalence(&a, &b).unwrap(),
            EquivResult::Different { .. }
        ));
    }

    #[test]
    fn interface_mismatch_is_reported() {
        let a = design(GateKind::And);
        let mut builder = NetlistBuilder::new("b");
        builder.input("x");
        builder.gate("o", GateKind::Not, &["x"]);
        builder.output("o");
        let b = builder.finish().unwrap();
        assert!(matches!(
            check_equivalence(&a, &b),
            Err(EquivError::InterfaceMismatch { .. })
        ));
    }

    #[test]
    fn redacted_luts_are_refused() {
        let a = design(GateKind::And);
        let mut hybrid = a.clone();
        hybrid
            .replace_gate_with_lut(hybrid.find("g").unwrap())
            .unwrap();
        let (stripped, _) = hybrid.redact();
        assert!(matches!(
            check_equivalence(&a, &stripped),
            Err(EquivError::RedactedLut { .. })
        ));
    }

    #[test]
    fn reprogrammed_lut_differs() {
        let a = design(GateKind::And);
        let mut hybrid = a.clone();
        let g = hybrid.find("g").unwrap();
        hybrid.replace_gate_with_lut(g).unwrap();
        hybrid.set_lut_config(g, TruthTable::from_gate(GateKind::Nand, 2));
        assert!(matches!(
            check_equivalence(&a, &hybrid).unwrap(),
            EquivResult::Different { .. }
        ));
    }
}
