use std::fmt;
use std::ops::Not;

/// A propositional variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub(crate) u32);

impl Var {
    /// Zero-based variable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a variable from its zero-based index. Prefer ids from
    /// [`Solver::new_var`](crate::Solver::new_var).
    #[inline]
    pub fn from_index(index: usize) -> Self {
        Var(u32::try_from(index).expect("variable index overflows u32"))
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0 + 1)
    }
}

/// A literal: a variable or its negation, encoded as `var << 1 | sign`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(pub(crate) u32);

impl Lit {
    /// The positive literal of `v`.
    #[inline]
    pub fn pos(v: Var) -> Self {
        Lit(v.0 << 1)
    }

    /// The negative literal of `v`.
    #[inline]
    pub fn neg(v: Var) -> Self {
        Lit(v.0 << 1 | 1)
    }

    /// Builds a literal with an explicit sign (`true` = negated).
    #[inline]
    pub fn new(v: Var, negated: bool) -> Self {
        Lit(v.0 << 1 | u32::from(negated))
    }

    /// The underlying variable.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether the literal is negated.
    #[inline]
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// Dense index for watch lists (`2·var + sign`).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl Not for Lit {
    type Output = Lit;
    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_neg() {
            write!(f, "¬{}", self.var())
        } else {
            write!(f, "{}", self.var())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding() {
        let v = Var::from_index(3);
        let p = Lit::pos(v);
        let n = Lit::neg(v);
        assert_eq!(p.var(), v);
        assert_eq!(n.var(), v);
        assert!(!p.is_neg());
        assert!(n.is_neg());
        assert_eq!(!p, n);
        assert_eq!(!!p, p);
        assert_eq!(p.index() + 1, n.index());
    }

    #[test]
    fn display_forms() {
        let v = Var::from_index(0);
        assert_eq!(Lit::pos(v).to_string(), "x1");
        assert_eq!(Lit::neg(v).to_string(), "¬x1");
    }

    #[test]
    fn new_with_sign() {
        let v = Var::from_index(5);
        assert_eq!(Lit::new(v, false), Lit::pos(v));
        assert_eq!(Lit::new(v, true), Lit::neg(v));
    }
}
