//! DIMACS CNF reading and writing.
//!
//! Round-trips the solver's clause database for interop with external
//! tools and for file-based regression tests.

use std::error::Error;
use std::fmt;

use crate::lit::{Lit, Var};
use crate::solver::Solver;

/// A parsed CNF formula.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Cnf {
    /// Declared variable count.
    pub num_vars: usize,
    /// Clauses as literal lists.
    pub clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// Loads the formula into a fresh solver.
    pub fn into_solver(&self) -> Solver {
        let mut s = Solver::new();
        for _ in 0..self.num_vars {
            s.new_var();
        }
        for c in &self.clauses {
            s.add_clause(c);
        }
        s
    }
}

/// DIMACS parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDimacsError {
    /// 1-based line number.
    pub line: usize,
    /// Problem description.
    pub message: String,
}

impl fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dimacs parse error on line {}: {}",
            self.line, self.message
        )
    }
}

impl Error for ParseDimacsError {}

/// Parses DIMACS CNF text.
///
/// # Errors
///
/// Returns [`ParseDimacsError`] for malformed headers, out-of-range
/// variables or stray tokens.
pub fn parse(text: &str) -> Result<Cnf, ParseDimacsError> {
    let mut cnf = Cnf::default();
    let mut header_seen = false;
    let mut current: Vec<Lit> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let err = |message: String| ParseDimacsError {
            line: lineno + 1,
            message,
        };
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if line.starts_with('p') {
            let mut parts = line.split_whitespace();
            let (_, fmt_kw) = (parts.next(), parts.next());
            if fmt_kw != Some("cnf") {
                return Err(err("expected `p cnf <vars> <clauses>`".into()));
            }
            cnf.num_vars = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err("bad variable count".into()))?;
            header_seen = true;
            continue;
        }
        if !header_seen {
            return Err(err("clause before `p cnf` header".into()));
        }
        for tok in line.split_whitespace() {
            let v: i64 = tok
                .parse()
                .map_err(|_| err(format!("bad literal `{tok}`")))?;
            if v == 0 {
                cnf.clauses.push(std::mem::take(&mut current));
            } else {
                let idx = v.unsigned_abs() as usize - 1;
                if idx >= cnf.num_vars {
                    return Err(err(format!("variable {} out of range", v.abs())));
                }
                current.push(Lit::new(Var::from_index(idx), v < 0));
            }
        }
    }
    if !current.is_empty() {
        cnf.clauses.push(current);
    }
    Ok(cnf)
}

/// Serializes a formula to DIMACS text.
pub fn write(cnf: &Cnf) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "p cnf {} {}", cnf.num_vars, cnf.clauses.len());
    for c in &cnf.clauses {
        for &l in c {
            let v = l.var().index() as i64 + 1;
            let _ = write!(out, "{} ", if l.is_neg() { -v } else { v });
        }
        let _ = writeln!(out, "0");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SatResult;

    const SAMPLE: &str = "c sample\np cnf 3 2\n1 -2 0\n2 3 0\n";

    #[test]
    fn parses_and_solves() {
        let cnf = parse(SAMPLE).unwrap();
        assert_eq!(cnf.num_vars, 3);
        assert_eq!(cnf.clauses.len(), 2);
        let mut s = cnf.into_solver();
        assert_eq!(s.solve(), SatResult::Sat);
    }

    #[test]
    fn round_trips() {
        let cnf = parse(SAMPLE).unwrap();
        let text = write(&cnf);
        let again = parse(&text).unwrap();
        assert_eq!(cnf, again);
    }

    #[test]
    fn rejects_missing_header() {
        assert!(parse("1 2 0\n").is_err());
    }

    #[test]
    fn rejects_out_of_range_variable() {
        let e = parse("p cnf 1 1\n2 0\n").unwrap_err();
        assert!(e.to_string().contains("out of range"));
    }

    #[test]
    fn multi_line_clause() {
        let cnf = parse("p cnf 2 1\n1\n-2 0\n").unwrap();
        assert_eq!(cnf.clauses.len(), 1);
        assert_eq!(cnf.clauses[0].len(), 2);
    }

    #[test]
    fn unsat_formula_round_trips_to_unsat() {
        let cnf = parse("p cnf 1 2\n1 0\n-1 0\n").unwrap();
        let mut s = cnf.into_solver();
        assert_eq!(s.solve(), SatResult::Unsat);
    }
}
