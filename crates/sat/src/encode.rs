//! Tseitin encoding of a netlist's combinational core into CNF.
//!
//! The encoding treats flip-flop outputs as free *state inputs* and
//! exposes flip-flop D pins alongside the primary outputs — i.e. the
//! full-scan view that oracle-guided attacks assume. (The paper's defense
//! argument is precisely that scan access is locked in fielded parts;
//! the executable attack quantifies what the defense is protecting
//! against.)
//!
//! Redacted LUTs are encoded with **key variables**: a k-input LUT
//! contributes 2^k key bits, one per truth-table row, and the row-select
//! semantics
//!
//! ```text
//! (inputs = row) → (output ↔ key[row])
//! ```
//!
//! A satisfying assignment of the key variables is a hypothesis for the
//! missing gates' functionality — the search space the paper's Equation 3
//! counts.

use std::collections::HashMap;

use sttlock_netlist::{GateKind, Netlist, Node, NodeId, TruthTable};

use crate::lit::{Lit, Var};
use crate::solver::Solver;

/// Result of encoding a netlist: variable maps for driving and reading
/// the CNF.
#[derive(Debug, Clone)]
pub struct Encoding {
    /// CNF variable of every net (indexed by [`NodeId::index`]).
    pub net_var: Vec<Var>,
    /// Primary-input variables, in netlist order.
    pub inputs: Vec<Var>,
    /// State-input variables (flip-flop outputs), in arena order.
    pub state_inputs: Vec<(NodeId, Var)>,
    /// Primary-output variables, in netlist order.
    pub outputs: Vec<Var>,
    /// Next-state variables (flip-flop D pins), in arena order.
    pub next_state: Vec<(NodeId, Var)>,
    /// Key variables per redacted LUT: `key[lut][row]`.
    pub keys: HashMap<NodeId, Vec<Var>>,
}

impl Encoding {
    /// Total number of key bits across all redacted LUTs.
    pub fn key_bits(&self) -> usize {
        self.keys.values().map(Vec::len).sum()
    }

    /// Decodes a satisfying model into per-LUT truth tables.
    ///
    /// Unconstrained key bits default to 0.
    pub fn decode_keys(&self, solver: &Solver) -> Vec<(NodeId, TruthTable)> {
        let mut out: Vec<(NodeId, TruthTable)> = self
            .keys
            .iter()
            .map(|(&id, vars)| {
                let mut bits = 0u64;
                for (row, &v) in vars.iter().enumerate() {
                    if solver.value(v) == Some(true) {
                        bits |= 1 << row;
                    }
                }
                let inputs = vars.len().trailing_zeros() as usize;
                (id, TruthTable::new(inputs, bits))
            })
            .collect();
        out.sort_by_key(|(id, _)| *id);
        out
    }
}

/// Encodes the combinational core of `netlist` into `solver`.
///
/// Every net gets a fresh variable; gates get their Tseitin clauses;
/// programmed LUTs are encoded from their truth table; redacted LUTs get
/// key variables shared across *one* encoding (for the miter construction
/// of the SAT attack, call this twice and bridge the key variables with
/// [`tie_keys`]).
pub fn encode(netlist: &Netlist, solver: &mut Solver) -> Encoding {
    let mut net_var = Vec::with_capacity(netlist.len());
    for _ in 0..netlist.len() {
        net_var.push(solver.new_var());
    }
    let mut keys = HashMap::new();
    let mut state_inputs = Vec::new();
    let mut next_state = Vec::new();

    for (id, node) in netlist.iter() {
        let out = net_var[id.index()];
        match node {
            Node::Input => {}
            Node::Const(v) => {
                solver.add_clause(&[Lit::new(out, !v)]);
            }
            Node::Dff { d } => {
                // The DFF output is a free state input; its D pin is an
                // observable next-state output.
                state_inputs.push((id, out));
                next_state.push((id, net_var[d.index()]));
            }
            Node::Gate { kind, fanin } => {
                let ins: Vec<Var> = fanin.iter().map(|f| net_var[f.index()]).collect();
                encode_gate(solver, *kind, out, &ins);
            }
            Node::Lut { fanin, config } => {
                let ins: Vec<Var> = fanin.iter().map(|f| net_var[f.index()]).collect();
                match config {
                    Some(table) => encode_table(solver, *table, out, &ins),
                    None => {
                        let rows = 1usize << ins.len();
                        let key: Vec<Var> = (0..rows).map(|_| solver.new_var()).collect();
                        encode_keyed_lut(solver, out, &ins, &key);
                        keys.insert(id, key);
                    }
                }
            }
        }
    }

    Encoding {
        inputs: netlist
            .inputs()
            .iter()
            .map(|i| net_var[i.index()])
            .collect(),
        outputs: netlist
            .outputs()
            .iter()
            .map(|o| net_var[o.index()])
            .collect(),
        state_inputs,
        next_state,
        keys,
        net_var,
    }
}

/// Adds clauses forcing the key variables of two encodings of the same
/// netlist to be equal — the shared-key side of a miter.
///
/// # Panics
///
/// Panics if the encodings disagree on the set of redacted LUTs.
pub fn tie_keys(solver: &mut Solver, a: &Encoding, b: &Encoding) {
    assert_eq!(a.keys.len(), b.keys.len(), "mismatched key sets");
    for (id, ka) in &a.keys {
        let kb = &b.keys[id];
        assert_eq!(ka.len(), kb.len());
        for (&x, &y) in ka.iter().zip(kb) {
            equal(solver, x, y);
        }
    }
}

/// Adds `x ↔ y`.
fn equal(solver: &mut Solver, x: Var, y: Var) {
    solver.add_clause(&[Lit::pos(x), Lit::neg(y)]);
    solver.add_clause(&[Lit::neg(x), Lit::pos(y)]);
}

/// Introduces a fresh XOR tap `t ↔ x ⊕ y` per pair and returns the taps.
pub fn xor_taps(solver: &mut Solver, pairs: &[(Var, Var)]) -> Vec<Var> {
    let mut taps = Vec::with_capacity(pairs.len());
    for &(x, y) in pairs {
        let t = solver.new_var();
        solver.add_clause(&[Lit::neg(t), Lit::pos(x), Lit::pos(y)]);
        solver.add_clause(&[Lit::neg(t), Lit::neg(x), Lit::neg(y)]);
        solver.add_clause(&[Lit::pos(t), Lit::pos(x), Lit::neg(y)]);
        solver.add_clause(&[Lit::pos(t), Lit::neg(x), Lit::pos(y)]);
        taps.push(t);
    }
    taps
}

/// Adds "the two vectors differ somewhere" over paired variables.
/// Returns the XOR tap variables.
pub fn assert_some_difference(solver: &mut Solver, pairs: &[(Var, Var)]) -> Vec<Var> {
    let taps = xor_taps(solver, pairs);
    let clause: Vec<Lit> = taps.iter().map(|&t| Lit::pos(t)).collect();
    solver.add_clause(&clause);
    taps
}

/// Like [`assert_some_difference`], but the constraint is active only
/// while the returned literal is assumed true — the SAT attack disables
/// it for the final key-extraction solve.
pub fn assert_some_difference_gated(solver: &mut Solver, pairs: &[(Var, Var)]) -> Lit {
    let taps = xor_taps(solver, pairs);
    let act = solver.new_var();
    let mut clause: Vec<Lit> = taps.iter().map(|&t| Lit::pos(t)).collect();
    clause.push(Lit::neg(act));
    solver.add_clause(&clause);
    Lit::pos(act)
}

/// Tseitin clauses for one standard gate.
fn encode_gate(solver: &mut Solver, kind: GateKind, out: Var, ins: &[Var]) {
    use GateKind::*;
    match kind {
        Buf => equal(solver, out, ins[0]),
        Not => {
            solver.add_clause(&[Lit::pos(out), Lit::pos(ins[0])]);
            solver.add_clause(&[Lit::neg(out), Lit::neg(ins[0])]);
        }
        And | Nand => {
            let o = kind == And;
            // (¬out ∨ in_i) for all i ; (out ∨ ¬in_1 ∨ … ∨ ¬in_n)
            for &i in ins {
                solver.add_clause(&[Lit::new(out, o), Lit::pos(i)]);
            }
            let mut big: Vec<Lit> = vec![Lit::new(out, !o)];
            big.extend(ins.iter().map(|&i| Lit::neg(i)));
            solver.add_clause(&big);
        }
        Or | Nor => {
            let o = kind == Or;
            for &i in ins {
                solver.add_clause(&[Lit::new(out, !o), Lit::neg(i)]);
            }
            let mut big: Vec<Lit> = vec![Lit::new(out, o)];
            big.extend(ins.iter().map(|&i| Lit::pos(i)));
            solver.add_clause(&big);
        }
        Xor | Xnor => {
            // Chain pairwise XORs through auxiliaries; cheap because real
            // netlists keep XOR fan-in small.
            let mut acc = ins[0];
            for &i in &ins[1..ins.len() - 1] {
                let t = solver.new_var();
                encode_xor2(solver, t, acc, i);
                acc = t;
            }
            let last = *ins.last().expect("arity >= 2");
            if kind == Xor {
                encode_xor2(solver, out, acc, last);
            } else {
                let t = solver.new_var();
                encode_xor2(solver, t, acc, last);
                solver.add_clause(&[Lit::pos(out), Lit::pos(t)]);
                solver.add_clause(&[Lit::neg(out), Lit::neg(t)]);
            }
        }
    }
}

/// `out ↔ a ⊕ b`.
fn encode_xor2(solver: &mut Solver, out: Var, a: Var, b: Var) {
    solver.add_clause(&[Lit::neg(out), Lit::pos(a), Lit::pos(b)]);
    solver.add_clause(&[Lit::neg(out), Lit::neg(a), Lit::neg(b)]);
    solver.add_clause(&[Lit::pos(out), Lit::pos(a), Lit::neg(b)]);
    solver.add_clause(&[Lit::pos(out), Lit::neg(a), Lit::pos(b)]);
}

/// Clauses for a programmed LUT: for every row, `(inputs = row) → out = f(row)`.
fn encode_table(solver: &mut Solver, table: TruthTable, out: Var, ins: &[Var]) {
    for row in 0..table.rows() {
        let mut clause: Vec<Lit> = Vec::with_capacity(ins.len() + 1);
        for (i, &v) in ins.iter().enumerate() {
            // Literal false exactly when input i matches the row bit.
            clause.push(Lit::new(v, (row >> i) & 1 == 1));
        }
        clause.push(Lit::new(out, !table.eval(row)));
        solver.add_clause(&clause);
    }
}

/// Clauses for a redacted LUT with one key bit per row:
/// `(inputs = row) → (out ↔ key[row])`.
fn encode_keyed_lut(solver: &mut Solver, out: Var, ins: &[Var], key: &[Var]) {
    for (row, &k) in key.iter().enumerate() {
        let row_lits = |extra: [Lit; 2]| -> Vec<Lit> {
            let mut clause: Vec<Lit> = Vec::with_capacity(ins.len() + 2);
            for (i, &v) in ins.iter().enumerate() {
                clause.push(Lit::new(v, (row >> i) & 1 == 1));
            }
            clause.extend(extra);
            clause
        };
        solver.add_clause(&row_lits([Lit::neg(out), Lit::pos(k)]));
        solver.add_clause(&row_lits([Lit::pos(out), Lit::neg(k)]));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SatResult;
    use sttlock_netlist::NetlistBuilder;

    fn sample() -> Netlist {
        let mut b = NetlistBuilder::new("m");
        b.input("a");
        b.input("c");
        b.gate("g1", GateKind::Nand, &["a", "c"]);
        b.gate("g2", GateKind::Xor, &["g1", "a"]);
        b.output("g2");
        b.finish().unwrap()
    }

    /// Checks the CNF against exhaustive simulation of a combinational
    /// netlist: for every input assignment, the CNF must force the
    /// simulated output.
    fn assert_cnf_matches_simulation(n: &Netlist) {
        use sttlock_netlist::CircuitView;
        let view = CircuitView::new(n);
        let order = view.topo_order();
        let eval = |assignment: &[bool]| -> Vec<bool> {
            let mut vals = vec![false; n.len()];
            for (k, &pi) in n.inputs().iter().enumerate() {
                vals[pi.index()] = assignment[k];
            }
            for &id in order {
                let node = n.node(id);
                let ins: Vec<bool> = node.fanin().iter().map(|f| vals[f.index()]).collect();
                vals[id.index()] = match node {
                    Node::Gate { kind, .. } => {
                        use GateKind::*;
                        match kind {
                            Buf => ins[0],
                            Not => !ins[0],
                            And => ins.iter().all(|&x| x),
                            Nand => !ins.iter().all(|&x| x),
                            Or => ins.iter().any(|&x| x),
                            Nor => !ins.iter().any(|&x| x),
                            Xor => ins.iter().fold(false, |a, &b| a ^ b),
                            Xnor => !ins.iter().fold(false, |a, &b| a ^ b),
                        }
                    }
                    Node::Lut { config, .. } => {
                        let t = config.expect("programmed");
                        let mut row = 0;
                        for (i, &b) in ins.iter().enumerate() {
                            if b {
                                row |= 1 << i;
                            }
                        }
                        t.eval(row)
                    }
                    _ => unreachable!(),
                };
            }
            n.outputs().iter().map(|o| vals[o.index()]).collect()
        };

        let mut solver = Solver::new();
        let enc = encode(n, &mut solver);
        let pis = n.inputs().len();
        for pattern in 0..(1usize << pis) {
            let assignment: Vec<bool> = (0..pis).map(|i| (pattern >> i) & 1 == 1).collect();
            let expect = eval(&assignment);
            let mut assumptions: Vec<Lit> = enc
                .inputs
                .iter()
                .zip(&assignment)
                .map(|(&v, &b)| Lit::new(v, !b))
                .collect();
            // Output must be able to take the simulated value...
            assert_eq!(solver.solve_with(&assumptions), SatResult::Sat);
            for (o, &e) in enc.outputs.iter().zip(&expect) {
                assert_eq!(solver.value(*o), Some(e), "pattern {pattern:b}");
            }
            // ...and must not be able to take the opposite value.
            assumptions.push(Lit::new(enc.outputs[0], expect[0]));
            assert_eq!(solver.solve_with(&assumptions), SatResult::Unsat);
        }
    }

    #[test]
    fn gates_encode_correctly() {
        assert_cnf_matches_simulation(&sample());
    }

    #[test]
    fn every_gate_kind_encodes_correctly() {
        for kind in GateKind::ALL {
            let mut b = NetlistBuilder::new("m");
            b.input("a");
            b.input("c");
            b.input("d");
            if kind.is_unary() {
                b.gate("g", kind, &["a"]);
            } else {
                b.gate("g", kind, &["a", "c", "d"]);
            }
            b.output("g");
            let n = b.finish().unwrap();
            assert_cnf_matches_simulation(&n);
        }
    }

    #[test]
    fn programmed_lut_encodes_its_table() {
        let mut b = NetlistBuilder::new("m");
        b.input("a");
        b.input("c");
        b.lut(
            "y",
            &["a", "c"],
            Some(TruthTable::from_gate(GateKind::Nor, 2)),
        );
        b.output("y");
        let n = b.finish().unwrap();
        assert_cnf_matches_simulation(&n);
    }

    #[test]
    fn keyed_lut_admits_exactly_the_right_keys() {
        // Single redacted 2-input LUT straight to the output: forcing
        // input/output pairs must constrain exactly the matching key bit.
        let mut b = NetlistBuilder::new("m");
        b.input("a");
        b.input("c");
        b.lut("y", &["a", "c"], None);
        b.output("y");
        let n = b.finish().unwrap();
        let mut solver = Solver::new();
        let enc = encode(&n, &mut solver);
        assert_eq!(enc.key_bits(), 4);
        let y = n.find("y").unwrap();
        let key = enc.keys[&y].clone();
        // Assume a=1, c=0 (row 0b01) and out=1: key[1] must be 1.
        let a = enc.inputs[0];
        let c = enc.inputs[1];
        let out = enc.outputs[0];
        let assumptions = [Lit::pos(a), Lit::neg(c), Lit::pos(out), Lit::neg(key[1])];
        assert_eq!(solver.solve_with(&assumptions), SatResult::Unsat);
        let assumptions = [Lit::pos(a), Lit::neg(c), Lit::pos(out), Lit::pos(key[1])];
        assert_eq!(solver.solve_with(&assumptions), SatResult::Sat);
    }

    #[test]
    fn decode_keys_round_trip() {
        let mut b = NetlistBuilder::new("m");
        b.input("a");
        b.input("c");
        b.lut("y", &["a", "c"], None);
        b.output("y");
        let n = b.finish().unwrap();
        let mut solver = Solver::new();
        let enc = encode(&n, &mut solver);
        let y = n.find("y").unwrap();
        let key = enc.keys[&y].clone();
        // Pin the key to AND2 and decode.
        let and2 = TruthTable::from_gate(GateKind::And, 2);
        for (row, &k) in key.iter().enumerate() {
            solver.add_clause(&[Lit::new(k, !and2.eval(row))]);
        }
        assert_eq!(solver.solve(), SatResult::Sat);
        let decoded = enc.decode_keys(&solver);
        assert_eq!(decoded, vec![(y, and2)]);
    }

    #[test]
    fn dff_boundary_becomes_state_io() {
        let mut b = NetlistBuilder::new("m");
        b.input("a");
        b.gate("g", GateKind::Not, &["a"]);
        b.dff("q", "g");
        b.gate("h", GateKind::Buf, &["q"]);
        b.output("h");
        let n = b.finish().unwrap();
        let mut solver = Solver::new();
        let enc = encode(&n, &mut solver);
        assert_eq!(enc.state_inputs.len(), 1);
        assert_eq!(enc.next_state.len(), 1);
        // Output follows the state input freely (one frame, no clocking).
        let q_var = enc.state_inputs[0].1;
        assert_eq!(
            solver.solve_with(&[Lit::pos(q_var), Lit::neg(enc.outputs[0])]),
            SatResult::Unsat
        );
        // Next state is ¬a regardless of q.
        let d_var = enc.next_state[0].1;
        assert_eq!(
            solver.solve_with(&[Lit::pos(enc.inputs[0]), Lit::pos(d_var)]),
            SatResult::Unsat
        );
    }

    #[test]
    fn miter_with_tied_keys_finds_distinguishing_input() {
        // Redacted LUT vs itself with tied keys can never differ.
        let mut b = NetlistBuilder::new("m");
        b.input("a");
        b.input("c");
        b.lut("y", &["a", "c"], None);
        b.output("y");
        let n = b.finish().unwrap();
        let mut solver = Solver::new();
        let e1 = encode(&n, &mut solver);
        let e2 = encode(&n, &mut solver);
        tie_keys(&mut solver, &e1, &e2);
        // Same inputs into both copies:
        for (&x, &y) in e1.inputs.iter().zip(&e2.inputs) {
            equal(&mut solver, x, y);
        }
        let pairs: Vec<(Var, Var)> = e1
            .outputs
            .iter()
            .copied()
            .zip(e2.outputs.iter().copied())
            .collect();
        assert_some_difference(&mut solver, &pairs);
        assert_eq!(solver.solve(), SatResult::Unsat);
    }
}
