//! A conflict-driven clause-learning (CDCL) SAT solver with gate-level
//! netlist encoding.
//!
//! The machine-learning/decamouflaging attack the paper cites (\[11\],
//! El Massad et al.) is at its core a satisfiability-based key search;
//! this crate provides the substrate for the executable attack in
//! `sttlock-attack`:
//!
//! * [`Solver`] — MiniSat-style CDCL: two-literal watching, VSIDS
//!   decision heuristic, first-UIP clause learning, non-chronological
//!   backjumping, Luby restarts and phase saving. Supports incremental
//!   solving under assumptions.
//! * [`encode`] — Tseitin encoding of a netlist's combinational core.
//!   Redacted LUTs contribute *key variables* (one per truth-table row),
//!   so a model of the CNF is a consistent hypothesis about the missing
//!   gates.
//! * [`dimacs`] — DIMACS CNF reading/writing for interop and tests.
//!
//! # Example
//!
//! ```
//! use sttlock_sat::{Lit, SatResult, Solver};
//!
//! let mut s = Solver::new();
//! let a = s.new_var();
//! let b = s.new_var();
//! s.add_clause(&[Lit::pos(a), Lit::pos(b)]);   // a ∨ b
//! s.add_clause(&[Lit::neg(a)]);                // ¬a
//! assert_eq!(s.solve(), SatResult::Sat);
//! assert_eq!(s.value(b), Some(true));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dimacs;
pub mod encode;
pub mod equiv;
pub mod unroll;

mod lit;
mod solver;

pub use lit::{Lit, Var};
pub use solver::{SatResult, Solver, SolverStats};
