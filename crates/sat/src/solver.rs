use crate::lit::{Lit, Var};

/// Outcome of a satisfiability query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SatResult {
    /// A satisfying assignment exists (retrieve it with
    /// [`Solver::value`]).
    Sat,
    /// No satisfying assignment exists (under the given assumptions).
    Unsat,
}

/// Running counters, useful for attack-effort reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Conflicts encountered.
    pub conflicts: u64,
    /// Decisions taken.
    pub decisions: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Learnt clauses added.
    pub learnt_clauses: u64,
}

#[derive(Debug, Clone)]
struct Clause {
    lits: Vec<Lit>,
}

const VAR_DECAY: f64 = 0.95;
const ACTIVITY_RESCALE: f64 = 1e100;
const LUBY_UNIT: u64 = 64;

/// A CDCL SAT solver: two-literal watching, VSIDS, first-UIP learning,
/// Luby restarts, phase saving, incremental solving under assumptions.
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Debug, Clone, Default)]
pub struct Solver {
    clauses: Vec<Clause>,
    /// `watches[l.index()]` lists clauses currently watching literal `l`;
    /// they are inspected when `l` becomes false.
    watches: Vec<Vec<u32>>,
    assign: Vec<Option<bool>>,
    level: Vec<u32>,
    reason: Vec<Option<u32>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    heap: OrderHeap,
    phase: Vec<bool>,
    seen: Vec<bool>,
    model: Vec<Option<bool>>,
    ok: bool,
    stats: SolverStats,
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver {
            var_inc: 1.0,
            ok: true,
            ..Solver::default()
        }
    }

    /// Number of variables allocated so far.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of problem plus learnt clauses currently stored.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Solver counters.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::from_index(self.assign.len());
        self.assign.push(None);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.phase.push(false);
        self.seen.push(false);
        self.model.push(None);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap.insert(v, &self.activity);
        v
    }

    fn value_lit(&self, l: Lit) -> Option<bool> {
        self.assign[l.var().index()].map(|b| b ^ l.is_neg())
    }

    /// The model value of `v` after a [`SatResult::Sat`] answer.
    ///
    /// Returns `None` before the first satisfiable solve or for variables
    /// created *after* it. Within one solve the answer is total: the
    /// search only reports [`SatResult::Sat`] once the branching heap is
    /// exhausted, i.e. every variable that existed at solve time —
    /// including variables in no clause — carries `Some` value (the
    /// `sat_models_are_total` regression test pins this invariant, which
    /// DIP extraction in `sttlock-attack` relies on).
    pub fn value(&self, v: Var) -> Option<bool> {
        self.model[v.index()]
    }

    /// Adds a clause (a disjunction of literals).
    ///
    /// Returns `false` if the solver is already in an unsatisfiable state
    /// (adding to a dead solver is permitted and ignored).
    ///
    /// # Panics
    ///
    /// Panics if a literal references an unallocated variable.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        if !self.ok {
            return false;
        }
        assert_eq!(self.decision_level(), 0, "clauses must be added at level 0");
        // Simplify: dedupe, drop false literals, detect tautology/satisfied.
        let mut c: Vec<Lit> = Vec::with_capacity(lits.len());
        for &l in lits {
            assert!(
                l.var().index() < self.num_vars(),
                "unallocated variable {l}"
            );
            match self.value_lit(l) {
                Some(true) => return true, // satisfied at level 0
                Some(false) => continue,   // false at level 0: drop literal
                None => {}
            }
            if c.contains(&!l) {
                return true; // tautology
            }
            if !c.contains(&l) {
                c.push(l);
            }
        }
        match c.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.enqueue(c[0], None);
                self.ok = self.propagate().is_none();
                self.ok
            }
            _ => {
                self.attach(c);
                true
            }
        }
    }

    fn attach(&mut self, lits: Vec<Lit>) -> u32 {
        let cref = self.clauses.len() as u32;
        self.watches[lits[0].index()].push(cref);
        self.watches[lits[1].index()].push(cref);
        self.clauses.push(Clause { lits });
        cref
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn enqueue(&mut self, l: Lit, reason: Option<u32>) {
        debug_assert!(self.value_lit(l).is_none());
        let v = l.var();
        self.assign[v.index()] = Some(!l.is_neg());
        self.level[v.index()] = self.decision_level();
        self.reason[v.index()] = reason;
        self.trail.push(l);
        self.stats.propagations += 1;
    }

    /// Unit propagation; returns a conflicting clause reference, if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            let false_lit = !p; // literals equal to `false_lit` just became false
            let mut i = 0;
            'clauses: while i < self.watches[false_lit.index()].len() {
                let cref = self.watches[false_lit.index()][i];
                let ci = cref as usize;
                // Normalize: watched false literal at position 1.
                if self.clauses[ci].lits[0] == false_lit {
                    self.clauses[ci].lits.swap(0, 1);
                }
                debug_assert_eq!(self.clauses[ci].lits[1], false_lit);
                let first = self.clauses[ci].lits[0];
                if self.value_lit(first) == Some(true) {
                    i += 1;
                    continue;
                }
                // Look for a replacement watch.
                for k in 2..self.clauses[ci].lits.len() {
                    let cand = self.clauses[ci].lits[k];
                    if self.value_lit(cand) != Some(false) {
                        self.clauses[ci].lits.swap(1, k);
                        self.watches[false_lit.index()].swap_remove(i);
                        self.watches[cand.index()].push(cref);
                        continue 'clauses;
                    }
                }
                // No replacement: clause is unit or conflicting.
                if self.value_lit(first) == Some(false) {
                    self.qhead = self.trail.len();
                    return Some(cref);
                }
                self.enqueue(first, Some(cref));
                i += 1;
            }
        }
        None
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > ACTIVITY_RESCALE {
            for a in self.activity.iter_mut() {
                *a *= 1.0 / ACTIVITY_RESCALE;
            }
            self.var_inc *= 1.0 / ACTIVITY_RESCALE;
        }
        self.heap.bumped(v, &self.activity);
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backjump level.
    fn analyze(&mut self, conflict: u32) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::pos(Var::from_index(0))]; // placeholder slot 0
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut cref = conflict;
        let mut index = self.trail.len();

        loop {
            let ci = cref as usize;
            let start = usize::from(p.is_some()); // skip the asserting literal slot
            for k in start..self.clauses[ci].lits.len() {
                let q = self.clauses[ci].lits[k];
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    self.bump_var(v);
                    if self.level[v.index()] == self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Pick the next seen literal on the trail.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let pl = self.trail[index];
            self.seen[pl.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                p = Some(pl);
                break;
            }
            cref =
                self.reason[pl.var().index()].expect("non-decision implied literal has a reason");
            p = Some(pl);
            // Slot 0 of a reason clause is the implied literal itself; the
            // `start` offset above skips it next iteration.
            debug_assert_eq!(self.clauses[cref as usize].lits[0], pl);
        }
        learnt[0] = !p.expect("conflict at decision level > 0 yields a UIP");

        // Backjump level: second-highest level in the learnt clause.
        let backjump = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for k in 2..learnt.len() {
                if self.level[learnt[k].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = k;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()]
        };
        for &l in &learnt {
            self.seen[l.var().index()] = false;
        }
        (learnt, backjump)
    }

    fn cancel_until(&mut self, target: u32) {
        if self.decision_level() <= target {
            return;
        }
        let lim = self.trail_lim[target as usize];
        for k in (lim..self.trail.len()).rev() {
            let v = self.trail[k].var();
            self.phase[v.index()] = self.assign[v.index()].unwrap_or(false);
            self.assign[v.index()] = None;
            self.reason[v.index()] = None;
            self.heap.insert(v, &self.activity);
        }
        self.trail.truncate(lim);
        self.trail_lim.truncate(target as usize);
        self.qhead = self.trail.len();
    }

    fn pick_branch(&mut self) -> Option<Lit> {
        while let Some(v) = self.heap.pop(&self.activity) {
            if self.assign[v.index()].is_none() {
                return Some(Lit::new(v, !self.phase[v.index()]));
            }
        }
        None
    }

    /// Solves the current formula.
    pub fn solve(&mut self) -> SatResult {
        self.solve_with(&[])
    }

    /// Solves under the given assumptions. The solver remains usable
    /// afterwards: more clauses and queries may follow (incremental use).
    pub fn solve_with(&mut self, assumptions: &[Lit]) -> SatResult {
        if !self.ok {
            return SatResult::Unsat;
        }
        let mut conflicts_until_restart = luby(self.stats.restarts + 1) * LUBY_UNIT;
        loop {
            if let Some(conflict) = self.propagate() {
                self.stats.conflicts += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    self.cancel_until(0);
                    return SatResult::Unsat;
                }
                if (self.decision_level() as usize) <= assumptions.len() {
                    // Conflict inside the assumption prefix: unsat under
                    // these assumptions (the formula itself may be sat).
                    self.cancel_until(0);
                    return SatResult::Unsat;
                }
                let (learnt, backjump) = self.analyze(conflict);
                self.cancel_until(backjump);
                // Backjumping may remove assumption decisions; the decide
                // branch below re-applies them (levels stay aligned
                // because lower assumption levels survive the backjump).
                if learnt.len() == 1 {
                    // Learnt clauses are consequences of the formula alone
                    // (assumptions surface as literals, not resolutions),
                    // so a unit learnt clause is a global fact.
                    debug_assert_eq!(backjump, 0);
                    match self.value_lit(learnt[0]) {
                        Some(false) => {
                            self.ok = false;
                            return SatResult::Unsat;
                        }
                        Some(true) => {}
                        None => self.enqueue(learnt[0], None),
                    }
                } else {
                    self.stats.learnt_clauses += 1;
                    let cref = self.attach(learnt);
                    let l0 = self.clauses[cref as usize].lits[0];
                    debug_assert!(self.value_lit(l0).is_none());
                    self.enqueue(l0, Some(cref));
                }
                conflicts_until_restart = conflicts_until_restart.saturating_sub(1);
                self.var_inc /= VAR_DECAY;
            } else {
                if conflicts_until_restart == 0 {
                    self.stats.restarts += 1;
                    conflicts_until_restart = luby(self.stats.restarts + 1) * LUBY_UNIT;
                    self.cancel_until((assumptions.len() as u32).min(self.decision_level()));
                }
                let dl = self.decision_level() as usize;
                let next = if dl < assumptions.len() {
                    let a = assumptions[dl];
                    match self.value_lit(a) {
                        Some(true) => {
                            // Already implied: open an empty level so the
                            // assumption indexing stays aligned.
                            self.trail_lim.push(self.trail.len());
                            continue;
                        }
                        Some(false) => {
                            self.cancel_until(0);
                            return SatResult::Unsat;
                        }
                        None => Some(a),
                    }
                } else {
                    self.stats.decisions += 1;
                    self.pick_branch()
                };
                match next {
                    None => {
                        // Fully assigned: record the model.
                        self.model.clone_from(&self.assign);
                        self.cancel_until(0);
                        return SatResult::Sat;
                    }
                    Some(l) => {
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(l, None);
                    }
                }
            }
        }
    }
}

/// The Luby restart sequence (1, 1, 2, 1, 1, 2, 4, …).
fn luby(mut i: u64) -> u64 {
    // Find the finite subsequence containing i.
    let mut k = 1u32;
    while (1u64 << k) - 1 < i {
        k += 1;
    }
    while (1u64 << (k - 1)) - 1 != i && i != (1u64 << k) - 1 {
        i -= (1u64 << (k - 1)) - 1;
        k = 1;
        while (1u64 << k) - 1 < i {
            k += 1;
        }
    }
    1u64 << (k - 1)
}

/// Max-heap over variables keyed by activity, with index positions for
/// in-place bumping (MiniSat's order heap).
#[derive(Debug, Clone, Default)]
struct OrderHeap {
    heap: Vec<Var>,
    pos: Vec<i32>,
}

impl OrderHeap {
    fn ensure(&mut self, v: Var) {
        if self.pos.len() <= v.index() {
            self.pos.resize(v.index() + 1, -1);
        }
    }

    fn insert(&mut self, v: Var, act: &[f64]) {
        self.ensure(v);
        if self.pos[v.index()] >= 0 {
            return;
        }
        self.pos[v.index()] = self.heap.len() as i32;
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, act);
    }

    fn pop(&mut self, act: &[f64]) -> Option<Var> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("nonempty");
        self.pos[top.index()] = -1;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last.index()] = 0;
            self.sift_down(0, act);
        }
        Some(top)
    }

    fn bumped(&mut self, v: Var, act: &[f64]) {
        self.ensure(v);
        let p = self.pos[v.index()];
        if p >= 0 {
            self.sift_up(p as usize, act);
        }
    }

    fn sift_up(&mut self, mut i: usize, act: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if act[self.heap[i].index()] <= act[self.heap[parent].index()] {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, act: &[f64]) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len() && act[self.heap[l].index()] > act[self.heap[best].index()] {
                best = l;
            }
            if r < self.heap.len() && act[self.heap[r].index()] > act[self.heap[best].index()] {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos[self.heap[a].index()] = a as i32;
        self.pos[self.heap[b].index()] = b as i32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(s: &mut Solver, i: usize, neg: bool) -> Lit {
        while s.num_vars() <= i {
            s.new_var();
        }
        Lit::new(Var::from_index(i), neg)
    }

    #[test]
    fn trivial_sat_and_model() {
        let mut s = Solver::new();
        let a = lit(&mut s, 0, false);
        let b = lit(&mut s, 1, false);
        s.add_clause(&[a, b]);
        s.add_clause(&[!a]);
        assert_eq!(s.solve(), SatResult::Sat);
        assert_eq!(s.value(a.var()), Some(false));
        assert_eq!(s.value(b.var()), Some(true));
    }

    #[test]
    fn sat_models_are_total() {
        // DIP extraction in the SAT attack widens model values straight
        // into oracle stimulus, so a Sat answer must assign *every*
        // variable — even ones that appear in no clause.
        let mut s = Solver::new();
        let a = lit(&mut s, 0, false);
        let b = lit(&mut s, 1, false);
        let _unconstrained = lit(&mut s, 2, false);
        s.add_clause(&[a, b]);
        assert_eq!(s.solve(), SatResult::Sat);
        for i in 0..s.num_vars() {
            assert!(
                s.value(Var::from_index(i)).is_some(),
                "variable {i} left unassigned in a Sat model"
            );
        }
    }

    #[test]
    fn trivial_unsat() {
        let mut s = Solver::new();
        let a = lit(&mut s, 0, false);
        s.add_clause(&[a]);
        assert!(!s.add_clause(&[!a]));
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert_eq!(s.solve(), SatResult::Sat);
    }

    #[test]
    fn xor_chain_requires_search() {
        // x1 ^ x2 ^ ... ^ x10 = 1 encoded clause-wise pairwise with
        // auxiliary variables; satisfiable.
        let mut s = Solver::new();
        let xs: Vec<Lit> = (0..10).map(|i| lit(&mut s, i, false)).collect();
        let mut acc = xs[0];
        for (k, &x) in xs.iter().enumerate().skip(1) {
            let o = lit(&mut s, 10 + k, false);
            // o = acc XOR x
            s.add_clause(&[!acc, !x, !o]);
            s.add_clause(&[acc, x, !o]);
            s.add_clause(&[acc, !x, o]);
            s.add_clause(&[!acc, x, o]);
            acc = o;
        }
        s.add_clause(&[acc]);
        assert_eq!(s.solve(), SatResult::Sat);
        // Verify the model satisfies the parity constraint.
        let parity = xs
            .iter()
            .map(|l| s.value(l.var()).unwrap())
            .fold(false, |a, b| a ^ b);
        assert!(parity);
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // p[i][j]: pigeon i in hole j; 3 pigeons, 2 holes.
        let mut s = Solver::new();
        let p = |s: &mut Solver, i: usize, j: usize| lit(s, i * 2 + j, false);
        for i in 0..3 {
            let a = p(&mut s, i, 0);
            let b = p(&mut s, i, 1);
            s.add_clause(&[a, b]);
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    let a = p(&mut s, i1, j);
                    let b = p(&mut s, i2, j);
                    s.add_clause(&[!a, !b]);
                }
            }
        }
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn assumptions_are_temporary() {
        let mut s = Solver::new();
        let a = lit(&mut s, 0, false);
        let b = lit(&mut s, 1, false);
        s.add_clause(&[a, b]);
        assert_eq!(s.solve_with(&[!a, !b]), SatResult::Unsat);
        // The formula itself is still satisfiable afterwards.
        assert_eq!(s.solve(), SatResult::Sat);
        assert_eq!(s.solve_with(&[!a]), SatResult::Sat);
        assert_eq!(s.value(b.var()), Some(true));
    }

    #[test]
    fn incremental_clause_addition() {
        let mut s = Solver::new();
        let a = lit(&mut s, 0, false);
        let b = lit(&mut s, 1, false);
        s.add_clause(&[a, b]);
        assert_eq!(s.solve(), SatResult::Sat);
        s.add_clause(&[!a]);
        assert_eq!(s.solve(), SatResult::Sat);
        s.add_clause(&[!b]);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn duplicate_and_tautological_clauses() {
        let mut s = Solver::new();
        let a = lit(&mut s, 0, false);
        let b = lit(&mut s, 1, false);
        assert!(s.add_clause(&[a, a, b])); // deduped
        assert!(s.add_clause(&[a, !a])); // tautology: dropped
        assert_eq!(s.solve(), SatResult::Sat);
    }

    #[test]
    fn luby_sequence_prefix() {
        let expect = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(luby(i as u64 + 1), e, "luby({})", i + 1);
        }
    }

    #[test]
    fn stats_accumulate() {
        let mut s = Solver::new();
        let a = lit(&mut s, 0, false);
        let b = lit(&mut s, 1, false);
        s.add_clause(&[a, b]);
        s.solve();
        assert!(s.stats().propagations > 0 || s.stats().decisions > 0);
    }

    #[test]
    fn random_3sat_models_verify() {
        // Deterministic pseudo-random 3-SAT near ratio 3.5 (satisfiable
        // with high probability); verify returned models against the
        // clauses by direct evaluation.
        let mut state = 0x12345678u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..5 {
            let nvars = 30;
            let nclauses = 105;
            let mut s = Solver::new();
            for _ in 0..nvars {
                s.new_var();
            }
            let mut cls: Vec<Vec<Lit>> = Vec::new();
            for _ in 0..nclauses {
                let mut c = Vec::new();
                while c.len() < 3 {
                    let v = Var::from_index((next() % nvars as u64) as usize);
                    let l = Lit::new(v, next() % 2 == 0);
                    if !c.contains(&l) && !c.contains(&!l) {
                        c.push(l);
                    }
                }
                s.add_clause(&c);
                cls.push(c);
            }
            if s.solve() == SatResult::Sat {
                for c in &cls {
                    assert!(
                        c.iter().any(|l| s.value(l.var()) == Some(!l.is_neg())),
                        "round {round}: model violates clause"
                    );
                }
            }
        }
    }
}
