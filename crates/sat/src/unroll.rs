//! Time-frame unrolling: encodes `k` clock cycles of a sequential
//! netlist into one CNF, chaining each frame's next-state into the next
//! frame's state and sharing LUT key variables across all frames.
//!
//! This is the substrate of the *no-scan* SAT attack
//! (`run_sequential` in the attack crate):
//! with the scan chain locked — the deployment posture the paper
//! mandates — the attacker can only drive primary inputs from reset and
//! watch primary outputs, so key reasoning must span multiple cycles.

use std::collections::HashMap;

use sttlock_netlist::{Netlist, NodeId};

use crate::encode::{encode, Encoding};
use crate::lit::{Lit, Var};
use crate::solver::Solver;

/// A `k`-frame unrolled encoding.
#[derive(Debug, Clone)]
pub struct Unrolled {
    /// Primary-input variables per frame.
    pub inputs: Vec<Vec<Var>>,
    /// Primary-output variables per frame.
    pub outputs: Vec<Vec<Var>>,
    /// Shared key variables per redacted LUT (one set for all frames).
    pub keys: HashMap<NodeId, Vec<Var>>,
    /// The per-frame encodings, frame 0 first.
    pub frames: Vec<Encoding>,
}

impl Unrolled {
    /// Number of encoded frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether no frame was encoded.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }
}

/// Encodes `frames` cycles of `netlist` into `solver`, starting from the
/// all-zero reset state (the convention of the bit-parallel simulator's
/// `Simulator::run` — matching oracle queries replay the
/// same reset).
///
/// # Panics
///
/// Panics if `frames` is zero.
pub fn encode_unrolled(netlist: &Netlist, solver: &mut Solver, frames: usize) -> Unrolled {
    assert!(frames > 0, "need at least one frame");
    let mut encs: Vec<Encoding> = Vec::with_capacity(frames);
    for f in 0..frames {
        let enc = encode(netlist, solver);
        if f == 0 {
            // Reset: every flip-flop output is 0 in the first frame.
            for (_, v) in &enc.state_inputs {
                solver.add_clause(&[Lit::neg(*v)]);
            }
        } else {
            // Chain: this frame's state is the previous frame's D value.
            let prev = encs.last().expect("previous frame exists");
            for ((_, d_prev), (_, q_now)) in prev.next_state.iter().zip(&enc.state_inputs) {
                tie(solver, *d_prev, *q_now);
            }
            // One key per LUT across all frames.
            crate::encode::tie_keys(solver, &encs[0], &enc);
        }
        encs.push(enc);
    }
    Unrolled {
        inputs: encs.iter().map(|e| e.inputs.clone()).collect(),
        outputs: encs.iter().map(|e| e.outputs.clone()).collect(),
        keys: encs[0].keys.clone(),
        frames: encs,
    }
}

fn tie(solver: &mut Solver, x: Var, y: Var) {
    solver.add_clause(&[Lit::pos(x), Lit::neg(y)]);
    solver.add_clause(&[Lit::neg(x), Lit::pos(y)]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SatResult;
    use sttlock_netlist::{GateKind, NetlistBuilder};

    /// A toggle register gated by `en`: q' = q XOR en.
    fn toggler() -> Netlist {
        let mut b = NetlistBuilder::new("t");
        b.input("en");
        b.gate("next", GateKind::Xor, &["en", "q"]);
        b.dff("q", "next");
        b.gate("o", GateKind::Buf, &["q"]);
        b.output("o");
        b.finish().unwrap()
    }

    #[test]
    fn reset_state_is_zero() {
        let n = toggler();
        let mut s = Solver::new();
        let u = encode_unrolled(&n, &mut s, 1);
        // Frame 0 output = q = 0 regardless of en.
        assert_eq!(s.solve_with(&[Lit::pos(u.outputs[0][0])]), SatResult::Unsat);
    }

    #[test]
    fn frames_chain_through_state() {
        let n = toggler();
        let mut s = Solver::new();
        let u = encode_unrolled(&n, &mut s, 3);
        // en = 1 in every frame: q toggles 0, 1, 0 → outputs per frame.
        let assumptions: Vec<Lit> = u.inputs.iter().map(|f| Lit::pos(f[0])).collect();
        assert_eq!(s.solve_with(&assumptions), SatResult::Sat);
        assert_eq!(s.value(u.outputs[0][0]), Some(false));
        assert_eq!(s.value(u.outputs[1][0]), Some(true));
        assert_eq!(s.value(u.outputs[2][0]), Some(false));
    }

    #[test]
    fn keys_are_shared_across_frames() {
        let mut n = toggler();
        let next = n.find("next").unwrap();
        n.replace_gate_with_lut(next).unwrap();
        let (stripped, _) = n.redact();
        let mut s = Solver::new();
        let u = encode_unrolled(&stripped, &mut s, 2);
        assert_eq!(u.keys.len(), 1);
        // Asking frame 1's behaviour to contradict frame 0's key is
        // impossible: en=1 both frames and out(frame1) = 0 forces
        // key[0b01] = 0 twice over — consistent; but out(frame1)=1 and
        // out(frame2 hypothetical)=0 under identical state/input would
        // contradict. Simplest check: with en=1,1 and o2 = key(row 01)
        // applied twice, o at frame1 equals key[0b01]... assert the
        // key bit drives frame 1's output.
        let key = u.keys.values().next().unwrap().clone();
        // Row index for (en=1, q=0): en is input 0, q input 1 → row 0b01.
        let a = [
            Lit::pos(u.inputs[0][0]),
            Lit::pos(u.inputs[1][0]),
            Lit::pos(u.outputs[1][0]), // q at frame 1 = next(frame 0) = key[1]
            Lit::neg(key[1]),
        ];
        assert_eq!(s.solve_with(&a), SatResult::Unsat);
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_frames_rejected() {
        let n = toggler();
        let mut s = Solver::new();
        let _ = encode_unrolled(&n, &mut s, 0);
    }

    #[test]
    fn unrolled_matches_simulator() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        use sttlock_benchgen::Profile;
        use sttlock_sim::Simulator;

        let p = Profile::custom("u", 50, 4, 4, 3);
        let n = p.generate(&mut StdRng::seed_from_u64(1));
        let mut s = Solver::new();
        let frames = 4usize;
        let u = encode_unrolled(&n, &mut s, frames);

        let mut rng = StdRng::seed_from_u64(2);
        let seq: Vec<Vec<bool>> = (0..frames)
            .map(|_| (0..n.inputs().len()).map(|_| rng.gen()).collect())
            .collect();

        // Simulator reference (lane 0).
        let mut sim = Simulator::new(&n).unwrap();
        let word_seq: Vec<Vec<u64>> = seq
            .iter()
            .map(|f| f.iter().map(|&b| if b { u64::MAX } else { 0 }).collect())
            .collect();
        let outs = sim.run(&word_seq).unwrap();

        // CNF with the same stimulus.
        let mut assumptions = Vec::new();
        for (frame, bits) in seq.iter().enumerate() {
            for (&v, &b) in u.inputs[frame].iter().zip(bits) {
                assumptions.push(Lit::new(v, !b));
            }
        }
        assert_eq!(s.solve_with(&assumptions), SatResult::Sat);
        for (frame, frame_outs) in outs.iter().enumerate() {
            for (&v, &w) in u.outputs[frame].iter().zip(frame_outs) {
                assert_eq!(s.value(v), Some(w & 1 == 1), "frame {frame}");
            }
        }
    }
}
