//! Property-based tests for the CDCL solver and the netlist encoder:
//! models verify against their clauses, UNSAT agrees with exhaustive
//! checking on small formulas, and the Tseitin encoding agrees with the
//! bit-parallel simulator on whole random circuits.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sttlock_benchgen::Profile;
use sttlock_sat::encode::encode;
use sttlock_sat::{dimacs, Lit, SatResult, Solver, Var};
use sttlock_sim::Simulator;

/// Random small CNF: up to 12 variables, up to 40 3-ish-literal clauses.
fn arb_cnf() -> impl Strategy<Value = (usize, Vec<Vec<(usize, bool)>>)> {
    (3usize..12).prop_flat_map(|nvars| {
        let clause = prop::collection::vec((0..nvars, prop::bool::ANY), 1..4);
        (Just(nvars), prop::collection::vec(clause, 1..40))
    })
}

fn build(nvars: usize, clauses: &[Vec<(usize, bool)>]) -> (Solver, Vec<Vec<Lit>>) {
    let mut s = Solver::new();
    let vars: Vec<Var> = (0..nvars).map(|_| s.new_var()).collect();
    let mut lits_clauses = Vec::new();
    for c in clauses {
        let lits: Vec<Lit> = c.iter().map(|&(v, neg)| Lit::new(vars[v], neg)).collect();
        s.add_clause(&lits);
        lits_clauses.push(lits);
    }
    (s, lits_clauses)
}

fn brute_force_sat(nvars: usize, clauses: &[Vec<(usize, bool)>]) -> bool {
    'outer: for assignment in 0..(1u64 << nvars) {
        for c in clauses {
            let ok = c.iter().any(|&(v, neg)| {
                let value = (assignment >> v) & 1 == 1;
                value != neg
            });
            if !ok {
                continue 'outer;
            }
        }
        return true;
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn solver_agrees_with_brute_force((nvars, clauses) in arb_cnf()) {
        let (mut s, lits_clauses) = build(nvars, &clauses);
        let expected = brute_force_sat(nvars, &clauses);
        match s.solve() {
            SatResult::Sat => {
                prop_assert!(expected, "solver said SAT, brute force says UNSAT");
                for c in &lits_clauses {
                    prop_assert!(
                        c.iter().any(|l| s.value(l.var()) == Some(!l.is_neg())),
                        "model violates a clause"
                    );
                }
            }
            SatResult::Unsat => prop_assert!(!expected, "solver said UNSAT, brute force says SAT"),
        }
    }

    #[test]
    fn assumptions_restrict_but_do_not_destroy((nvars, clauses) in arb_cnf()) {
        let (mut s, _) = build(nvars, &clauses);
        let base = s.solve();
        // Assume the first variable both ways; at least one must agree
        // with the unconstrained result when satisfiable.
        let v = Var::from_index(0);
        let pos = s.solve_with(&[Lit::pos(v)]);
        let neg = s.solve_with(&[Lit::neg(v)]);
        if base == SatResult::Sat {
            prop_assert!(pos == SatResult::Sat || neg == SatResult::Sat);
        } else {
            prop_assert_eq!(pos, SatResult::Unsat);
            prop_assert_eq!(neg, SatResult::Unsat);
        }
        // The solver is still reusable afterwards.
        prop_assert_eq!(s.solve(), base);
    }

    #[test]
    fn dimacs_round_trip_preserves_satisfiability((nvars, clauses) in arb_cnf()) {
        let cnf = dimacs::Cnf {
            num_vars: nvars,
            clauses: clauses
                .iter()
                .map(|c| {
                    c.iter()
                        .map(|&(v, neg)| Lit::new(Var::from_index(v), neg))
                        .collect()
                })
                .collect(),
        };
        let text = dimacs::write(&cnf);
        let back = dimacs::parse(&text).expect("own output parses");
        prop_assert_eq!(back.into_solver().solve(), cnf.into_solver().solve());
    }
}

/// The encoder agrees with the simulator on whole circuits: for random
/// frames, assuming the frame's inputs/state in the CNF forces exactly
/// the simulated observation.
#[test]
fn encoding_matches_simulation_on_random_circuits() {
    for seed in 0..6u64 {
        let profile = Profile::custom("enc", 60 + 10 * seed as usize, 4, 5, 4);
        let netlist = profile.generate(&mut StdRng::seed_from_u64(seed));
        let mut solver = Solver::new();
        let enc = encode(&netlist, &mut solver);
        let mut sim = Simulator::new(&netlist).expect("programmed netlist");

        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        for _ in 0..8 {
            let inputs: Vec<u64> = (0..netlist.inputs().len())
                .map(|_| rng.gen::<bool>() as u64 * u64::MAX)
                .collect();
            let state: Vec<u64> = (0..sim.dff_ids().len())
                .map(|_| rng.gen::<bool>() as u64 * u64::MAX)
                .collect();
            sim.eval_frame(&inputs, &state).expect("frame evaluates");
            let obs = sim.observation();

            let mut assumptions: Vec<Lit> = Vec::new();
            for (&v, &w) in enc.inputs.iter().zip(&inputs) {
                assumptions.push(Lit::new(v, w == 0));
            }
            for ((_, v), &w) in enc.state_inputs.iter().zip(&state) {
                assumptions.push(Lit::new(*v, w == 0));
            }
            assert_eq!(solver.solve_with(&assumptions), SatResult::Sat);
            let mut obs_vars: Vec<Var> = enc.outputs.clone();
            obs_vars.extend(enc.next_state.iter().map(|(_, v)| *v));
            for (&v, &w) in obs_vars.iter().zip(&obs) {
                assert_eq!(
                    solver.value(v),
                    Some(w != 0),
                    "seed {seed}: CNF and simulator disagree on an observation"
                );
            }
        }
    }
}
