//! Power, leakage and area analysis for hybrid STT-CMOS netlists.
//!
//! The model follows the technology characterization of the paper's
//! Figure 1:
//!
//! * a CMOS gate dissipates `α · f · E_sw` dynamic power (activity-
//!   proportional) plus its cell leakage;
//! * an STT LUT dissipates `f · E_cycle` regardless of activity or
//!   content (its dynamic read path fires every cycle) plus its near-zero
//!   MTJ standby power;
//! * a flip-flop pays its clock energy every cycle.
//!
//! [`analyze_power`] consumes a measured
//! `ActivityReport` measured by simulation;
//! [`analyze_power_static`] uses the probabilistic estimate instead. The
//! relative overheads of Table I come from [`OverheadReport::between`].
//!
//! The [`trace`] module computes per-cycle power traces, used to
//! demonstrate the paper's side-channel claim: LUT power does not depend
//! on the data being processed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod trace;

use sttlock_netlist::{Netlist, Node};
use sttlock_sim::activity::ActivityReport;
use sttlock_sim::probability::ProbabilityReport;
use sttlock_techlib::Library;

/// Total power split into its components, microwatts.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PowerBreakdown {
    /// Activity-driven switching power of CMOS gates, µW.
    pub cmos_dynamic_uw: f64,
    /// Cycle-driven read power of STT LUTs, µW.
    pub lut_dynamic_uw: f64,
    /// Clock power of the flip-flops, µW.
    pub clock_uw: f64,
    /// Standby/leakage power of all cells, µW.
    pub leakage_uw: f64,
}

impl PowerBreakdown {
    /// Total power, microwatts.
    pub fn total_uw(&self) -> f64 {
        self.cmos_dynamic_uw + self.lut_dynamic_uw + self.clock_uw + self.leakage_uw
    }
}

/// Computes the power breakdown from a measured activity report.
///
/// The report must have been produced for a netlist with the same arena
/// layout (the original and its hybrid share node ids, so one measurement
/// serves both — LUT power does not read the activity anyway).
///
/// # Panics
///
/// Panics if the activity report is shorter than the netlist.
pub fn analyze_power(
    netlist: &Netlist,
    lib: &Library,
    activity: &ActivityReport,
) -> PowerBreakdown {
    assert!(
        activity.alpha.len() >= netlist.len(),
        "activity report does not cover the netlist"
    );
    analyze_with(netlist, lib, |i| activity.alpha[i])
}

/// Computes the power breakdown from static signal probabilities
/// (`α = 2·p·(1−p)` under temporal independence).
pub fn analyze_power_static(
    netlist: &Netlist,
    lib: &Library,
    prob: &ProbabilityReport,
) -> PowerBreakdown {
    assert!(
        prob.p_one.len() >= netlist.len(),
        "probability report does not cover the netlist"
    );
    analyze_with(netlist, lib, |i| {
        let p = prob.p_one[i];
        2.0 * p * (1.0 - p)
    })
}

fn analyze_with(netlist: &Netlist, lib: &Library, alpha: impl Fn(usize) -> f64) -> PowerBreakdown {
    let f = lib.clock_ghz();
    let mut out = PowerBreakdown::default();
    for (id, node) in netlist.iter() {
        match node {
            Node::Gate { kind, fanin } => {
                let cell = lib.gate(*kind, fanin.len());
                out.cmos_dynamic_uw += alpha(id.index()) * f * cell.switch_energy_fj;
                out.leakage_uw += cell.leakage_nw * 1e-3;
            }
            Node::Lut { fanin, .. } => {
                let lut = lib.lut(fanin.len());
                out.lut_dynamic_uw += lut.active_power_uw(f);
                out.leakage_uw += lut.standby_nw * 1e-3;
            }
            Node::Dff { .. } => {
                let ff = lib.dff();
                out.clock_uw += f * ff.clock_energy_fj;
                out.leakage_uw += ff.leakage_nw * 1e-3;
            }
            Node::Input | Node::Const(_) => {}
        }
    }
    out
}

/// Total cell area, square micrometers.
pub fn analyze_area(netlist: &Netlist, lib: &Library) -> f64 {
    let mut area = 0.0;
    for (_, node) in netlist.iter() {
        area += match node {
            Node::Gate { kind, fanin } => lib.gate(*kind, fanin.len()).area_um2,
            Node::Lut { fanin, .. } => lib.lut(fanin.len()).area_um2,
            Node::Dff { .. } => lib.dff().area_um2,
            Node::Input | Node::Const(_) => 0.0,
        };
    }
    area
}

/// Relative power/area overheads of a hybrid design against its CMOS
/// baseline — the Table I columns.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OverheadReport {
    /// Total power overhead, percent.
    pub power_pct: f64,
    /// Leakage-only overhead, percent (negative when the LUTs' near-zero
    /// standby power wins, as the paper predicts for small fan-ins).
    pub leakage_pct: f64,
    /// Area overhead, percent.
    pub area_pct: f64,
}

impl OverheadReport {
    /// Computes overheads between a baseline and a hybrid analysis.
    pub fn between(
        base_power: &PowerBreakdown,
        base_area: f64,
        hybrid_power: &PowerBreakdown,
        hybrid_area: f64,
    ) -> OverheadReport {
        OverheadReport {
            power_pct: pct(base_power.total_uw(), hybrid_power.total_uw()),
            leakage_pct: pct(base_power.leakage_uw, hybrid_power.leakage_uw),
            area_pct: pct(base_area, hybrid_area),
        }
    }
}

fn pct(base: f64, new: f64) -> f64 {
    if base <= 0.0 {
        0.0
    } else {
        (new - base) / base * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sttlock_netlist::{GateKind, NetlistBuilder};
    use sttlock_sim::activity::estimate_activity;
    use sttlock_sim::probability::signal_probabilities;

    fn toy() -> Netlist {
        let mut b = NetlistBuilder::new("toy");
        b.input("a");
        b.input("c");
        b.gate("g1", GateKind::Nand, &["a", "c"]);
        b.gate("g2", GateKind::Xor, &["g1", "a"]);
        b.dff("q", "g2");
        b.output("q");
        b.finish().unwrap()
    }

    #[test]
    fn breakdown_components_sum() {
        let p = PowerBreakdown {
            cmos_dynamic_uw: 1.0,
            lut_dynamic_uw: 2.0,
            clock_uw: 3.0,
            leakage_uw: 4.0,
        };
        assert!((p.total_uw() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn measured_power_is_positive_and_activity_sensitive() {
        let n = toy();
        let lib = Library::predictive_90nm();
        let mut rng = StdRng::seed_from_u64(1);
        let act = estimate_activity(&n, 100, &mut rng).unwrap();
        let p = analyze_power(&n, &lib, &act);
        assert!(p.cmos_dynamic_uw > 0.0);
        assert!(p.clock_uw > 0.0);
        assert!(p.leakage_uw > 0.0);
        assert_eq!(p.lut_dynamic_uw, 0.0);
    }

    #[test]
    fn static_and_dynamic_estimates_agree_roughly() {
        let n = toy();
        let lib = Library::predictive_90nm();
        let mut rng = StdRng::seed_from_u64(2);
        let act = estimate_activity(&n, 500, &mut rng).unwrap();
        let dynamic = analyze_power(&n, &lib, &act);
        let prob = signal_probabilities(&n);
        assert!(
            prob.converged,
            "cross-check is only meaningful on a converged fixpoint \
             ({} iterations)",
            prob.iterations
        );
        let stat = analyze_power_static(&n, &lib, &prob);
        let ratio = stat.total_uw() / dynamic.total_uw();
        assert!(
            (0.5..2.0).contains(&ratio),
            "static {} vs dynamic {}",
            stat.total_uw(),
            dynamic.total_uw()
        );
    }

    #[test]
    fn hybrid_lut_power_is_activity_insensitive() {
        let mut n = toy();
        n.replace_gate_with_lut(n.find("g1").unwrap()).unwrap();
        let lib = Library::predictive_90nm();
        // Zero-activity report: CMOS dynamic collapses, LUT power remains.
        let zero = ActivityReport {
            alpha: vec![0.0; n.len()],
            cycles: 1,
        };
        let p = analyze_power(&n, &lib, &zero);
        assert!(p.lut_dynamic_uw > 0.0);
        assert_eq!(p.cmos_dynamic_uw, 0.0);
    }

    #[test]
    fn replacement_increases_power_and_area() {
        let n = toy();
        let lib = Library::predictive_90nm();
        let mut rng = StdRng::seed_from_u64(3);
        let act = estimate_activity(&n, 200, &mut rng).unwrap();
        let base_p = analyze_power(&n, &lib, &act);
        let base_a = analyze_area(&n, &lib);

        let mut hybrid = n.clone();
        hybrid
            .replace_gate_with_lut(hybrid.find("g1").unwrap())
            .unwrap();
        let hyb_p = analyze_power(&hybrid, &lib, &act);
        let hyb_a = analyze_area(&hybrid, &lib);
        let report = OverheadReport::between(&base_p, base_a, &hyb_p, hyb_a);
        assert!(report.power_pct > 0.0, "power {:?}", report);
        assert!(report.area_pct > 0.0, "area {:?}", report);
        // NAND2's leakage is higher than the LUT's MTJ standby power.
        assert!(report.leakage_pct < 0.0, "leakage {:?}", report);
    }

    #[test]
    fn redacted_view_draws_same_power() {
        let mut n = toy();
        n.replace_gate_with_lut(n.find("g1").unwrap()).unwrap();
        let (stripped, _) = n.redact();
        let lib = Library::predictive_90nm();
        let zero = ActivityReport {
            alpha: vec![0.0; n.len()],
            cycles: 1,
        };
        assert_eq!(
            analyze_power(&n, &lib, &zero),
            analyze_power(&stripped, &lib, &zero)
        );
        assert_eq!(analyze_area(&n, &lib), analyze_area(&stripped, &lib));
    }

    #[test]
    fn area_counts_all_cells() {
        let n = toy();
        let lib = Library::predictive_90nm();
        let expect = lib.gate(GateKind::Nand, 2).area_um2
            + lib.gate(GateKind::Xor, 2).area_um2
            + lib.dff().area_um2;
        assert!((analyze_area(&n, &lib) - expect).abs() < 1e-12);
    }

    #[test]
    fn pct_handles_zero_baseline() {
        assert_eq!(pct(0.0, 5.0), 0.0);
        assert!((pct(10.0, 11.0) - 10.0).abs() < 1e-12);
    }
}
