//! Per-cycle power traces — the side-channel view of a design.
//!
//! Section II of the paper argues that STT-based LUTs resist power
//! side-channel analysis because their consumption is "almost insensitive
//! to input changes". This module makes the claim measurable: it replays
//! an input sequence through the bit-parallel simulator (lane 0 only) and
//! integrates the data-dependent energy of every cycle. The
//! data-dependent variance of the hybrid design's trace shrinks as gates
//! move into LUTs.

use sttlock_netlist::{Netlist, Node, NodeId};
use sttlock_sim::{SimError, Simulator};
use sttlock_techlib::Library;

/// A per-cycle energy trace, femtojoules per cycle (lane 0).
#[derive(Debug, Clone, PartialEq)]
pub struct PowerTrace {
    /// Energy consumed in each simulated cycle, femtojoules.
    pub energy_fj: Vec<f64>,
}

impl PowerTrace {
    /// Mean cycle energy, femtojoules.
    pub fn mean(&self) -> f64 {
        if self.energy_fj.is_empty() {
            return 0.0;
        }
        self.energy_fj.iter().sum::<f64>() / self.energy_fj.len() as f64
    }

    /// Population variance of the cycle energy.
    pub fn variance(&self) -> f64 {
        let m = self.mean();
        if self.energy_fj.is_empty() {
            return 0.0;
        }
        self.energy_fj.iter().map(|e| (e - m).powi(2)).sum::<f64>() / self.energy_fj.len() as f64
    }

    /// Coefficient of variation (σ/µ) — the side-channel signal strength
    /// proxy used by the `side_channel` example.
    pub fn relative_spread(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.variance().sqrt() / m
        }
    }
}

/// Replays `inputs_per_cycle` (one `bool` per primary input per cycle)
/// and returns the lane-0 energy trace.
///
/// Per cycle, a CMOS gate contributes `E_sw` when its output toggles, a
/// LUT contributes its cycle energy unconditionally, and each flip-flop
/// its clock energy; leakage contributes `P_leak · T_cycle`.
///
/// # Errors
///
/// Returns [`SimError`] for redacted netlists or input arity mismatches.
pub fn power_trace(
    netlist: &Netlist,
    lib: &Library,
    inputs_per_cycle: &[Vec<bool>],
) -> Result<PowerTrace, SimError> {
    let mut sim = Simulator::new(netlist)?;
    let cycle_ns = 1.0 / lib.clock_ghz();

    // Constant per-cycle flooring: LUT reads, clocking and leakage.
    let mut floor_fj = 0.0;
    for (_, node) in netlist.iter() {
        match node {
            Node::Lut { fanin, .. } => floor_fj += lib.lut(fanin.len()).cycle_energy_fj,
            Node::Dff { .. } => {
                floor_fj += lib.dff().clock_energy_fj;
                // nW × ns = 1e-18 J = 1e-3 fJ.
                floor_fj += lib.dff().leakage_nw * 1e-3 * cycle_ns;
            }
            Node::Gate { kind, fanin } => {
                floor_fj += lib.gate(*kind, fanin.len()).leakage_nw * 1e-3 * cycle_ns;
            }
            _ => {}
        }
    }

    let mut prev = vec![0u64; netlist.len()];
    let mut energy = Vec::with_capacity(inputs_per_cycle.len());
    for cycle in inputs_per_cycle {
        let words: Vec<u64> = cycle.iter().map(|&b| if b { 1 } else { 0 }).collect();
        sim.step(&words)?;
        let mut e = floor_fj;
        for (id, node) in netlist.iter() {
            if let Node::Gate { kind, fanin } = node {
                let cur = sim.value(id) & 1;
                if cur != prev[id.index()] & 1 {
                    e += lib.gate(*kind, fanin.len()).switch_energy_fj;
                }
            }
            prev[id.index()] = sim.value(id);
        }
        energy.push(e);
    }
    Ok(PowerTrace { energy_fj: energy })
}

/// Convenience: trace a design over uniformly random single-bit inputs.
///
/// # Errors
///
/// Propagates [`power_trace`] errors.
pub fn random_trace<R: rand::Rng + ?Sized>(
    netlist: &Netlist,
    lib: &Library,
    cycles: usize,
    rng: &mut R,
) -> Result<PowerTrace, SimError> {
    let pis = netlist.inputs().len();
    let inputs: Vec<Vec<bool>> = (0..cycles)
        .map(|_| (0..pis).map(|_| rng.gen()).collect())
        .collect();
    power_trace(netlist, lib, &inputs)
}

/// Ids of nodes whose data-dependent energy is visible in the trace
/// (CMOS gates); useful for reporting which part of a design still leaks.
pub fn data_dependent_nodes(netlist: &Netlist) -> Vec<NodeId> {
    netlist
        .iter()
        .filter(|(_, n)| matches!(n, Node::Gate { .. }))
        .map(|(id, _)| id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sttlock_netlist::{GateKind, NetlistBuilder};

    fn toy() -> Netlist {
        let mut b = NetlistBuilder::new("toy");
        b.input("a");
        b.input("c");
        b.gate("g1", GateKind::And, &["a", "c"]);
        b.gate("g2", GateKind::Xor, &["g1", "c"]);
        b.output("g2");
        b.finish().unwrap()
    }

    #[test]
    fn constant_inputs_give_flat_trace() {
        let n = toy();
        let lib = Library::predictive_90nm();
        let inputs = vec![vec![true, false]; 10];
        let t = power_trace(&n, &lib, &inputs).unwrap();
        // After the first cycle nothing toggles.
        assert!(t.energy_fj[1..]
            .windows(2)
            .all(|w| (w[0] - w[1]).abs() < 1e-12));
        let steady = PowerTrace {
            energy_fj: t.energy_fj[1..].to_vec(),
        };
        assert!(steady.relative_spread() < 1e-9);
    }

    #[test]
    fn toggling_inputs_raise_energy() {
        let n = toy();
        let lib = Library::predictive_90nm();
        let idle = power_trace(&n, &lib, &vec![vec![false, false]; 8]).unwrap();
        let busy = power_trace(
            &n,
            &lib,
            &(0..8)
                .map(|i| vec![i % 2 == 0, i % 2 == 1])
                .collect::<Vec<_>>(),
        )
        .unwrap();
        assert!(busy.mean() > idle.mean());
    }

    #[test]
    fn full_lut_conversion_flattens_data_dependence() {
        let n = toy();
        let lib = Library::predictive_90nm();
        let mut hybrid = n.clone();
        for name in ["g1", "g2"] {
            let id = hybrid.find(name).unwrap();
            hybrid.replace_gate_with_lut(id).unwrap();
        }
        let mut rng = StdRng::seed_from_u64(9);
        let base = random_trace(&n, &lib, 200, &mut rng).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let hyb = random_trace(&hybrid, &lib, 200, &mut rng).unwrap();
        // The all-LUT design has zero data-dependent energy: flat trace.
        assert!(hyb.variance() < 1e-12, "variance {}", hyb.variance());
        assert!(base.variance() > 0.0);
        assert!(data_dependent_nodes(&hybrid).is_empty());
        assert_eq!(data_dependent_nodes(&n).len(), 2);
    }

    #[test]
    fn trace_statistics() {
        let t = PowerTrace {
            energy_fj: vec![1.0, 3.0],
        };
        assert!((t.mean() - 2.0).abs() < 1e-12);
        assert!((t.variance() - 1.0).abs() < 1e-12);
        assert!((t.relative_spread() - 0.5).abs() < 1e-12);
        let empty = PowerTrace { energy_fj: vec![] };
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.variance(), 0.0);
    }
}
