//! Reverse-engineering attacks on hybrid STT-CMOS netlists.
//!
//! The paper argues security through the cost of determining the "missing
//! gates" (redacted LUTs). This crate provides both the analytic cost
//! models of Section IV and executable attacks that validate them on
//! small circuits:
//!
//! * [`alpha`] — the per-fan-in α (average test patterns to disambiguate
//!   a missing gate, from truth-table similarity) and P (candidate gate
//!   count) constants, both the paper's published values and the ones
//!   recomputed from first principles.
//! * [`estimate`] — Equations 1–3 in log₁₀-domain arithmetic
//!   ([`estimate::BigEffort`]), since the parametric-aware numbers reach
//!   10²¹⁹ and beyond.
//! * [`sensitization`] — the testing-based attack sketched in Section
//!   IV-A.1: justify missing-gate inputs, propagate the output difference
//!   to an observation point, and accumulate a partial truth table. It
//!   succeeds against *independent* selection and stalls against
//!   *dependent* selection, the paper's central security claim.
//! * [`sat_attack`] — the oracle-guided SAT attack (the executable
//!   equivalent of the decamouflaging attack the paper cites as \[11\]),
//!   built on the `sttlock-sat` CDCL solver. Runs under the full-scan
//!   assumption the paper's defense explicitly removes in fielded parts.
//!
//! Attacks take two netlists: the *redacted* foundry view (structure
//! only) and the *oracle* (a programmed part bought on the open market
//! that can be stimulated and observed, but not opened).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alpha;
pub mod camouflage;
pub mod error;
pub mod estimate;
pub mod sat_attack;
pub mod sensitization;

pub use error::AttackError;
