//! The oracle-guided SAT attack on redacted LUT configurations.
//!
//! This is the executable counterpart of the decamouflaging /
//! machine-learning attack the paper cites as \[11\] (El Massad et al.):
//! iteratively find *distinguishing input patterns* (DIPs) — inputs on
//! which two key hypotheses disagree — query the oracle, and constrain
//! the key space until all remaining keys are functionally equivalent.
//!
//! The attack runs on the full-scan, single-frame model (state bits are
//! inputs, next-state bits are outputs). The paper's defense disables
//! scan access in fielded parts precisely because this attack is so
//! effective when scan is open; the `attack_resilience` example and the
//! Criterion benches quantify the growth of [`SatAttackOutcome::dips`]
//! and solver conflicts as the selection algorithms strengthen.

use sttlock_netlist::{Netlist, NodeId, TruthTable};
use sttlock_sat::encode::{assert_some_difference_gated, encode, tie_keys, Encoding};
use sttlock_sat::unroll::encode_unrolled;
use sttlock_sat::{Lit, SatResult, Solver, SolverStats, Var};
use sttlock_sim::{SimError, Simulator};

use crate::error::AttackError;

/// Attack limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SatAttackConfig {
    /// Abort after this many DIP iterations (0 = unlimited).
    pub max_dips: usize,
}

impl Default for SatAttackConfig {
    fn default() -> Self {
        SatAttackConfig { max_dips: 10_000 }
    }
}

/// Attack result.
#[derive(Debug, Clone, PartialEq)]
pub struct SatAttackOutcome {
    /// Recovered configuration per missing gate (functionally equivalent
    /// to the oracle on the single-frame model). `None` if the attack hit
    /// its DIP limit.
    pub bitstream: Option<Vec<(NodeId, TruthTable)>>,
    /// Distinguishing input patterns required.
    pub dips: usize,
    /// Solver counters at the end of the attack.
    pub solver_stats: SolverStats,
}

impl SatAttackOutcome {
    /// Whether the key space was reduced to one functional class.
    pub fn succeeded(&self) -> bool {
        self.bitstream.is_some()
    }
}

/// Runs the oracle-guided SAT attack.
///
/// `redacted` is the foundry view; `oracle` the programmed twin.
///
/// # Errors
///
/// * [`AttackError::Sim`] if the oracle is unprogrammed or structurally
///   incompatible.
/// * [`AttackError::DesignMismatch`] if `redacted` and `oracle` are not
///   the same design (these used to be `assert_eq!` process aborts).
/// * [`AttackError::OracleContradiction`] /
///   [`AttackError::Unsatisfiable`] if an oracle response contradicts
///   the key constraints — impossible for a genuine programmed twin,
///   and formerly an `assert!` abort; batch drivers record it as a
///   failed cell instead.
pub fn run(
    redacted: &Netlist,
    oracle: &Netlist,
    cfg: &SatAttackConfig,
) -> Result<SatAttackOutcome, AttackError> {
    if redacted.len() != oracle.len() {
        return Err(AttackError::DesignMismatch {
            redacted: redacted.len(),
            oracle: oracle.len(),
        });
    }
    let mut oracle_sim = Simulator::new(oracle)?;

    let mut solver = Solver::new();
    let e1 = encode(redacted, &mut solver);
    let e2 = encode(redacted, &mut solver);
    // Two key hypotheses over the same circuit: inputs and state shared,
    // keys independent, some observable output must differ.
    for (&a, &b) in e1.inputs.iter().zip(&e2.inputs) {
        equal(&mut solver, a, b);
    }
    for ((_, a), (_, b)) in e1.state_inputs.iter().zip(&e2.state_inputs) {
        equal(&mut solver, *a, *b);
    }
    let pairs = observation_pairs(&e1, &e2);
    let miter_active = assert_some_difference_gated(&mut solver, &pairs);

    let mut dips = 0usize;
    loop {
        if cfg.max_dips != 0 && dips >= cfg.max_dips {
            return Ok(SatAttackOutcome {
                bitstream: None,
                dips,
                solver_stats: solver.stats(),
            });
        }
        match solver.solve_with(&[miter_active]) {
            SatResult::Unsat => break,
            SatResult::Sat => {
                dips += 1;
                // Extract the DIP (inputs + state) from the model.
                let inputs: Vec<u64> = e1
                    .inputs
                    .iter()
                    .map(|&v| full_word(solver.value(v)))
                    .collect();
                let state: Vec<u64> = e1
                    .state_inputs
                    .iter()
                    .map(|(_, v)| full_word(solver.value(*v)))
                    .collect();
                oracle_sim.eval_frame(&inputs, &state)?;
                let response = oracle_sim.observation();
                // Both key hypotheses must now agree with the oracle on
                // this frame: constrain each copy with a fresh encoding
                // whose keys are tied to that copy.
                for enc in [&e1, &e2] {
                    if !add_io_constraint(&mut solver, redacted, enc, &inputs, &state, &response) {
                        return Err(AttackError::OracleContradiction);
                    }
                }
            }
        }
    }

    // Key space collapsed: any remaining key is functionally correct.
    // Solve without the miter to extract one.
    if solver.solve() != SatResult::Sat {
        return Err(AttackError::Unsatisfiable);
    }
    let bitstream = e1.decode_keys(&solver);
    Ok(SatAttackOutcome {
        bitstream: Some(bitstream),
        dips,
        solver_stats: solver.stats(),
    })
}

/// Limits of the no-scan sequential attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SequentialAttackConfig {
    /// Clock cycles to unroll from reset. The attack is only complete up
    /// to this bound: the recovered keys are guaranteed equivalent for
    /// input sequences of at most `frames` cycles.
    pub frames: usize,
    /// Abort after this many distinguishing sequences (0 = unlimited).
    pub max_dips: usize,
}

impl Default for SequentialAttackConfig {
    fn default() -> Self {
        SequentialAttackConfig {
            frames: 8,
            max_dips: 10_000,
        }
    }
}

/// Outcome of the no-scan attack.
#[derive(Debug, Clone, PartialEq)]
pub struct SequentialAttackOutcome {
    /// Recovered configuration, equivalent to the oracle for all input
    /// sequences up to the unroll bound. `None` on DIP-limit abort.
    pub bitstream: Option<Vec<(NodeId, TruthTable)>>,
    /// Distinguishing input *sequences* required.
    pub dips: usize,
    /// The unroll bound the result is valid for.
    pub frames: usize,
    /// Solver counters.
    pub solver_stats: SolverStats,
}

/// The **no-scan** variant of the SAT attack: the scan chain is locked
/// (the paper's deployment posture), so the oracle can only be driven
/// with primary-input sequences from reset and observed at its primary
/// outputs. Key reasoning spans `cfg.frames` unrolled cycles.
///
/// Compared with [`run`], the search space per query is `2^(I·k)` input
/// sequences instead of `2^(I+S)` frames and each CNF is `k` copies of
/// the circuit per miter side — the concrete cost of losing scan access,
/// and the correctness is only *bounded* (sequences longer than the
/// unroll may still distinguish keys). Both effects are what the paper
/// counts on when it instructs designers to disable scan.
///
/// # Errors
///
/// * [`AttackError::Sim`] if the oracle is unprogrammed or incompatible.
/// * [`AttackError::DesignMismatch`] / [`AttackError::ZeroFrames`] on a
///   mismatched netlist pair or a zero unroll bound (formerly panics).
/// * [`AttackError::OracleContradiction`] /
///   [`AttackError::Unsatisfiable`] if the oracle contradicts the key
///   constraints (formerly an `assert!` abort).
pub fn run_sequential(
    redacted: &Netlist,
    oracle: &Netlist,
    cfg: &SequentialAttackConfig,
) -> Result<SequentialAttackOutcome, AttackError> {
    if redacted.len() != oracle.len() {
        return Err(AttackError::DesignMismatch {
            redacted: redacted.len(),
            oracle: oracle.len(),
        });
    }
    if cfg.frames == 0 {
        return Err(AttackError::ZeroFrames);
    }
    let mut oracle_sim = Simulator::new(oracle)?;
    let k = cfg.frames;

    let mut solver = Solver::new();
    let u1 = encode_unrolled(redacted, &mut solver, k);
    let u2 = encode_unrolled(redacted, &mut solver, k);
    // Shared input sequence, independent keys, some output at some frame
    // must differ.
    let mut pairs: Vec<(Var, Var)> = Vec::new();
    for f in 0..k {
        for (&a, &b) in u1.inputs[f].iter().zip(&u2.inputs[f]) {
            equal(&mut solver, a, b);
        }
        pairs.extend(
            u1.outputs[f]
                .iter()
                .copied()
                .zip(u2.outputs[f].iter().copied()),
        );
    }
    // Keys of the two unrolled copies are internally shared per copy;
    // between copies they stay free.
    let miter_active = sttlock_sat::encode::assert_some_difference_gated(&mut solver, &pairs);

    let mut dips = 0usize;
    loop {
        if cfg.max_dips != 0 && dips >= cfg.max_dips {
            return Ok(SequentialAttackOutcome {
                bitstream: None,
                dips,
                frames: k,
                solver_stats: solver.stats(),
            });
        }
        match solver.solve_with(&[miter_active]) {
            SatResult::Unsat => break,
            SatResult::Sat => {
                dips += 1;
                // Extract the distinguishing input sequence.
                let sequence: Vec<Vec<u64>> = (0..k)
                    .map(|f| {
                        u1.inputs[f]
                            .iter()
                            .map(|&v| full_word(solver.value(v)))
                            .collect()
                    })
                    .collect();
                // Oracle responses from reset.
                let responses = oracle_sim.run(&sequence)?;
                // Constrain both copies to reproduce the oracle on this
                // sequence: one fresh unrolled copy per key side.
                for base in [&u1, &u2] {
                    let copy = encode_unrolled(redacted, &mut solver, k);
                    sttlock_sat::encode::tie_keys(&mut solver, &base.frames[0], &copy.frames[0]);
                    let mut ok = true;
                    for f in 0..k {
                        for (&v, &w) in copy.inputs[f].iter().zip(&sequence[f]) {
                            ok &= solver.add_clause(&[Lit::new(v, w & 1 == 0)]);
                        }
                        for (&v, &w) in copy.outputs[f].iter().zip(&responses[f]) {
                            ok &= solver.add_clause(&[Lit::new(v, w & 1 == 0)]);
                        }
                    }
                    if !ok {
                        return Err(AttackError::OracleContradiction);
                    }
                }
            }
        }
    }

    if solver.solve() != SatResult::Sat {
        return Err(AttackError::Unsatisfiable);
    }
    let bitstream = u1.frames[0].decode_keys(&solver);
    Ok(SequentialAttackOutcome {
        bitstream: Some(bitstream),
        dips,
        frames: k,
        solver_stats: solver.stats(),
    })
}

/// Verifies a recovered bitstream against the oracle by random
/// single-frame simulation. Returns the number of mismatching frames.
///
/// # Errors
///
/// Returns [`SimError`] on structural mismatches.
pub fn verify_bitstream<R: rand::Rng + ?Sized>(
    redacted: &Netlist,
    oracle: &Netlist,
    bitstream: &[(NodeId, TruthTable)],
    frames: usize,
    rng: &mut R,
) -> Result<usize, SimError> {
    let mut rebuilt = redacted.clone();
    rebuilt.program(bitstream);
    let mut a = Simulator::new(&rebuilt)?;
    let mut b = Simulator::new(oracle)?;
    let n_in = redacted.inputs().len();
    let n_state = a.dff_ids().len();
    let mut mismatches = 0usize;
    for _ in 0..frames {
        let inputs: Vec<u64> = (0..n_in).map(|_| rng.gen()).collect();
        let state: Vec<u64> = (0..n_state).map(|_| rng.gen()).collect();
        a.eval_frame(&inputs, &state)?;
        b.eval_frame(&inputs, &state)?;
        let oa = a.observation();
        let ob = b.observation();
        for (x, y) in oa.iter().zip(&ob) {
            mismatches += (x ^ y).count_ones() as usize;
        }
    }
    Ok(mismatches)
}

fn observation_pairs(e1: &Encoding, e2: &Encoding) -> Vec<(Var, Var)> {
    let mut pairs: Vec<(Var, Var)> = e1
        .outputs
        .iter()
        .copied()
        .zip(e2.outputs.iter().copied())
        .collect();
    pairs.extend(
        e1.next_state
            .iter()
            .map(|(_, v)| *v)
            .zip(e2.next_state.iter().map(|(_, v)| *v)),
    );
    pairs
}

fn equal(solver: &mut Solver, a: Var, b: Var) {
    solver.add_clause(&[Lit::pos(a), Lit::neg(b)]);
    solver.add_clause(&[Lit::neg(a), Lit::pos(b)]);
}

/// Widens one model bit to the simulator's 64-bit word.
///
/// `None` means the SAT model left the variable unconstrained. The CDCL
/// solver only answers [`SatResult::Sat`] once *every* variable is
/// assigned (see `sat_models_are_total` in `sttlock-sat`), so for
/// freshly solved DIP extraction this arm is unreachable — but rather
/// than rely on that invariant silently, an unconstrained variable is
/// *explicitly pinned to 0*. Pinning is sound: a variable the model
/// leaves free satisfies the formula under either value, and
/// [`add_io_constraint`] subsequently pins both key-hypothesis copies to
/// the same extracted frame, so the solver and the oracle always see
/// one identical, fully-assigned DIP.
fn full_word(v: Option<bool>) -> u64 {
    match v {
        Some(true) => u64::MAX,
        Some(false) | None => 0,
    }
}

/// Encodes one more copy of the netlist with keys tied to `enc`, inputs
/// and state pinned to the DIP, and observations pinned to the oracle
/// response. Returns `false` if the solver became unsatisfiable.
fn add_io_constraint(
    solver: &mut Solver,
    redacted: &Netlist,
    enc: &Encoding,
    inputs: &[u64],
    state: &[u64],
    response: &[u64],
) -> bool {
    let copy = encode(redacted, solver);
    tie_keys(solver, enc, &copy);
    let mut ok = true;
    for (&v, &w) in copy.inputs.iter().zip(inputs) {
        ok &= solver.add_clause(&[Lit::new(v, w & 1 == 0)]);
    }
    for ((_, v), &w) in copy.state_inputs.iter().zip(state) {
        ok &= solver.add_clause(&[Lit::new(*v, w & 1 == 0)]);
    }
    let mut obs: Vec<Var> = copy.outputs.clone();
    obs.extend(copy.next_state.iter().map(|(_, v)| *v));
    for (&v, &w) in obs.iter().zip(response) {
        ok &= solver.add_clause(&[Lit::new(v, w & 1 == 0)]);
    }
    ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sttlock_netlist::{GateKind, NetlistBuilder};

    fn lockable() -> Netlist {
        let mut b = NetlistBuilder::new("m");
        b.input("a");
        b.input("c");
        b.input("d");
        b.gate("g1", GateKind::Nand, &["a", "c"]);
        b.gate("g2", GateKind::Nor, &["g1", "d"]);
        b.gate("g3", GateKind::Xor, &["g2", "a"]);
        b.dff("q", "g3");
        b.gate("g4", GateKind::And, &["q", "d"]);
        b.output("g4");
        b.finish().unwrap()
    }

    fn lock(names: &[&str]) -> (Netlist, Netlist) {
        let mut programmed = lockable();
        for name in names {
            let id = programmed.find(name).unwrap();
            programmed.replace_gate_with_lut(id).unwrap();
        }
        let (redacted, _) = programmed.redact();
        (redacted, programmed)
    }

    #[test]
    fn recovers_single_missing_gate() {
        let (redacted, programmed) = lock(&["g2"]);
        let out = run(&redacted, &programmed, &SatAttackConfig::default()).unwrap();
        assert!(out.succeeded());
        let bits = out.bitstream.unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mismatches = verify_bitstream(&redacted, &programmed, &bits, 64, &mut rng).unwrap();
        assert_eq!(mismatches, 0);
    }

    #[test]
    fn recovers_dependent_chain_with_scan_access() {
        // With full scan even the dependent chain falls — which is why
        // the paper insists scan is locked in fielded parts.
        let (redacted, programmed) = lock(&["g1", "g2", "g3"]);
        let out = run(&redacted, &programmed, &SatAttackConfig::default()).unwrap();
        assert!(out.succeeded());
        let bits = out.bitstream.unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mismatches = verify_bitstream(&redacted, &programmed, &bits, 64, &mut rng).unwrap();
        assert_eq!(mismatches, 0, "equivalence class member must match oracle");
    }

    #[test]
    fn dip_limit_aborts_gracefully() {
        let (redacted, programmed) = lock(&["g1", "g2", "g3"]);
        let cfg = SatAttackConfig { max_dips: 1 };
        let out = run(&redacted, &programmed, &cfg).unwrap();
        if !out.succeeded() {
            assert_eq!(out.dips, 1);
        }
    }

    #[test]
    fn sequential_attack_recovers_bounded_equivalent_keys() {
        let (redacted, programmed) = lock(&["g2", "g3"]);
        let cfg = SequentialAttackConfig {
            frames: 4,
            max_dips: 10_000,
        };
        let out = run_sequential(&redacted, &programmed, &cfg).unwrap();
        let bits = out.bitstream.expect("attack converges on a small design");
        // Bounded guarantee: replay random sequences of <= `frames`
        // cycles from reset and compare primary outputs.
        let mut rebuilt = redacted.clone();
        rebuilt.program(&bits);
        let mut a = Simulator::new(&rebuilt).unwrap();
        let mut b = Simulator::new(&programmed).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..16 {
            let seq: Vec<Vec<u64>> = (0..cfg.frames)
                .map(|_| (0..redacted.inputs().len()).map(|_| rng.gen()).collect())
                .collect();
            assert_eq!(a.run(&seq).unwrap(), b.run(&seq).unwrap());
        }
    }

    #[test]
    fn sequential_attack_costs_more_than_scan_attack() {
        // Losing scan access makes each query a k-frame formula; the
        // solver works strictly harder for the same key material.
        let (redacted, programmed) = lock(&["g1", "g2", "g3"]);
        let scan = run(&redacted, &programmed, &SatAttackConfig::default()).unwrap();
        let cfg = SequentialAttackConfig {
            frames: 6,
            max_dips: 10_000,
        };
        let noscan = run_sequential(&redacted, &programmed, &cfg).unwrap();
        assert!(noscan.bitstream.is_some());
        assert!(
            noscan.solver_stats.propagations >= scan.solver_stats.propagations,
            "no-scan {} vs scan {}",
            noscan.solver_stats.propagations,
            scan.solver_stats.propagations
        );
    }

    #[test]
    fn full_word_pins_unassigned_model_values_to_zero() {
        // An unconstrained model variable must widen to an explicit,
        // deterministic pin — never to garbage the oracle cannot see.
        assert_eq!(full_word(Some(true)), u64::MAX);
        assert_eq!(full_word(Some(false)), 0);
        assert_eq!(full_word(None), 0);
    }

    #[test]
    fn extracted_dips_are_fully_assigned() {
        // Regression for the partial-model hazard: every DIP handed to
        // the oracle must come from a total assignment over the inputs
        // and state variables of the miter encoding.
        let (redacted, _) = lock(&["g2"]);
        let mut solver = Solver::new();
        let e1 = encode(&redacted, &mut solver);
        let e2 = encode(&redacted, &mut solver);
        for (&a, &b) in e1.inputs.iter().zip(&e2.inputs) {
            equal(&mut solver, a, b);
        }
        let pairs = observation_pairs(&e1, &e2);
        let gate = assert_some_difference_gated(&mut solver, &pairs);
        assert_eq!(solver.solve_with(&[gate]), SatResult::Sat);
        for &v in e1
            .inputs
            .iter()
            .chain(e1.state_inputs.iter().map(|(_, v)| v))
        {
            assert!(
                solver.value(v).is_some(),
                "DIP extraction relies on total SAT models"
            );
        }
    }

    #[test]
    fn mismatched_netlists_are_an_error_not_a_panic() {
        let (redacted, _) = lock(&["g2"]);
        let mut other = NetlistBuilder::new("other");
        other.input("x");
        other.gate("y", GateKind::Not, &["x"]);
        other.output("y");
        let other = other.finish().unwrap();
        match run(&redacted, &other, &SatAttackConfig::default()) {
            Err(AttackError::DesignMismatch {
                redacted: r,
                oracle: o,
            }) => assert_ne!(r, o),
            other => panic!("expected DesignMismatch, got {other:?}"),
        }
        let cfg = SequentialAttackConfig::default();
        assert!(matches!(
            run_sequential(&redacted, &other, &cfg),
            Err(AttackError::DesignMismatch { .. })
        ));
    }

    #[test]
    fn contradictory_oracle_is_a_recorded_failure() {
        // An "oracle" that is not a programmed twin (same arena, one
        // tampered gate) cannot be explained by any key: the attack must
        // surface a typed error instead of aborting the process.
        let (redacted, _) = lock(&["g2"]);
        let mut b = NetlistBuilder::new("m");
        b.input("a");
        b.input("c");
        b.input("d");
        b.gate("g1", GateKind::Nand, &["a", "c"]);
        b.gate("g2", GateKind::Nor, &["g1", "d"]);
        b.gate("g3", GateKind::Xor, &["g2", "a"]);
        b.dff("q", "g3");
        b.gate("g4", GateKind::Or, &["q", "d"]); // tampered: And -> Or
        b.output("g4");
        let mut tampered = b.finish().unwrap();
        let id = tampered.find("g2").unwrap();
        tampered.replace_gate_with_lut(id).unwrap();
        let out = run(&redacted, &tampered, &SatAttackConfig::default());
        assert!(
            matches!(
                out,
                Err(AttackError::OracleContradiction) | Err(AttackError::Unsatisfiable)
            ),
            "got {out:?}"
        );
    }

    #[test]
    fn sequential_zero_frames_is_an_error() {
        let (redacted, programmed) = lock(&["g2"]);
        let cfg = SequentialAttackConfig {
            frames: 0,
            max_dips: 10,
        };
        assert_eq!(
            run_sequential(&redacted, &programmed, &cfg),
            Err(AttackError::ZeroFrames)
        );
    }

    #[test]
    fn no_missing_gates_needs_no_dips() {
        let n = lockable();
        let out = run(&n, &n, &SatAttackConfig::default()).unwrap();
        assert!(out.succeeded());
        assert_eq!(out.dips, 0);
        assert!(out.bitstream.unwrap().is_empty());
    }

    #[test]
    fn more_missing_gates_need_at_least_as_many_dips() {
        let (r1, p1) = lock(&["g2"]);
        let (r3, p3) = lock(&["g1", "g2", "g3"]);
        let o1 = run(&r1, &p1, &SatAttackConfig::default()).unwrap();
        let o3 = run(&r3, &p3, &SatAttackConfig::default()).unwrap();
        assert!(o3.dips >= o1.dips, "{} vs {}", o3.dips, o1.dips);
    }
}
