//! The oracle-guided SAT attack on redacted LUT configurations.
//!
//! This is the executable counterpart of the decamouflaging /
//! machine-learning attack the paper cites as \[11\] (El Massad et al.):
//! iteratively find *distinguishing input patterns* (DIPs) — inputs on
//! which two key hypotheses disagree — query the oracle, and constrain
//! the key space until all remaining keys are functionally equivalent.
//!
//! The attack runs on the full-scan, single-frame model (state bits are
//! inputs, next-state bits are outputs). The paper's defense disables
//! scan access in fielded parts precisely because this attack is so
//! effective when scan is open; the `attack_resilience` example and the
//! Criterion benches quantify the growth of [`SatAttackOutcome::dips`]
//! and solver conflicts as the selection algorithms strengthen.

use sttlock_netlist::{Netlist, NodeId, TruthTable};
use sttlock_sat::encode::{assert_some_difference_gated, encode, tie_keys, Encoding};
use sttlock_sat::unroll::encode_unrolled;
use sttlock_sat::{Lit, SatResult, Solver, SolverStats, Var};
use sttlock_sim::{SimError, Simulator};

/// Attack limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SatAttackConfig {
    /// Abort after this many DIP iterations (0 = unlimited).
    pub max_dips: usize,
}

impl Default for SatAttackConfig {
    fn default() -> Self {
        SatAttackConfig { max_dips: 10_000 }
    }
}

/// Attack result.
#[derive(Debug, Clone, PartialEq)]
pub struct SatAttackOutcome {
    /// Recovered configuration per missing gate (functionally equivalent
    /// to the oracle on the single-frame model). `None` if the attack hit
    /// its DIP limit.
    pub bitstream: Option<Vec<(NodeId, TruthTable)>>,
    /// Distinguishing input patterns required.
    pub dips: usize,
    /// Solver counters at the end of the attack.
    pub solver_stats: SolverStats,
}

impl SatAttackOutcome {
    /// Whether the key space was reduced to one functional class.
    pub fn succeeded(&self) -> bool {
        self.bitstream.is_some()
    }
}

/// Runs the oracle-guided SAT attack.
///
/// `redacted` is the foundry view; `oracle` the programmed twin.
///
/// # Errors
///
/// Returns [`SimError`] if the oracle is unprogrammed or structurally
/// incompatible.
///
/// # Panics
///
/// Panics if `redacted` and `oracle` are not the same design, or if the
/// key constraints ever contradict the oracle (impossible for a genuine
/// programmed twin).
pub fn run(
    redacted: &Netlist,
    oracle: &Netlist,
    cfg: &SatAttackConfig,
) -> Result<SatAttackOutcome, SimError> {
    assert_eq!(
        redacted.len(),
        oracle.len(),
        "netlists must be the same design"
    );
    let mut oracle_sim = Simulator::new(oracle)?;

    let mut solver = Solver::new();
    let e1 = encode(redacted, &mut solver);
    let e2 = encode(redacted, &mut solver);
    // Two key hypotheses over the same circuit: inputs and state shared,
    // keys independent, some observable output must differ.
    for (&a, &b) in e1.inputs.iter().zip(&e2.inputs) {
        equal(&mut solver, a, b);
    }
    for ((_, a), (_, b)) in e1.state_inputs.iter().zip(&e2.state_inputs) {
        equal(&mut solver, *a, *b);
    }
    let pairs = observation_pairs(&e1, &e2);
    let miter_active = assert_some_difference_gated(&mut solver, &pairs);

    let mut dips = 0usize;
    loop {
        if cfg.max_dips != 0 && dips >= cfg.max_dips {
            return Ok(SatAttackOutcome {
                bitstream: None,
                dips,
                solver_stats: solver.stats(),
            });
        }
        match solver.solve_with(&[miter_active]) {
            SatResult::Unsat => break,
            SatResult::Sat => {
                dips += 1;
                // Extract the DIP (inputs + state) from the model.
                let inputs: Vec<u64> = e1
                    .inputs
                    .iter()
                    .map(|&v| full_word(solver.value(v)))
                    .collect();
                let state: Vec<u64> = e1
                    .state_inputs
                    .iter()
                    .map(|(_, v)| full_word(solver.value(*v)))
                    .collect();
                oracle_sim.eval_frame(&inputs, &state)?;
                let response = oracle_sim.observation();
                // Both key hypotheses must now agree with the oracle on
                // this frame: constrain each copy with a fresh encoding
                // whose keys are tied to that copy.
                for enc in [&e1, &e2] {
                    let ok =
                        add_io_constraint(&mut solver, redacted, enc, &inputs, &state, &response);
                    assert!(ok, "oracle response contradicts the key constraints");
                }
            }
        }
    }

    // Key space collapsed: any remaining key is functionally correct.
    // Solve without the miter to extract one.
    let res = solver.solve();
    assert_eq!(res, SatResult::Sat, "constraint set must stay satisfiable");
    let bitstream = e1.decode_keys(&solver);
    Ok(SatAttackOutcome {
        bitstream: Some(bitstream),
        dips,
        solver_stats: solver.stats(),
    })
}

/// Limits of the no-scan sequential attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SequentialAttackConfig {
    /// Clock cycles to unroll from reset. The attack is only complete up
    /// to this bound: the recovered keys are guaranteed equivalent for
    /// input sequences of at most `frames` cycles.
    pub frames: usize,
    /// Abort after this many distinguishing sequences (0 = unlimited).
    pub max_dips: usize,
}

impl Default for SequentialAttackConfig {
    fn default() -> Self {
        SequentialAttackConfig {
            frames: 8,
            max_dips: 10_000,
        }
    }
}

/// Outcome of the no-scan attack.
#[derive(Debug, Clone, PartialEq)]
pub struct SequentialAttackOutcome {
    /// Recovered configuration, equivalent to the oracle for all input
    /// sequences up to the unroll bound. `None` on DIP-limit abort.
    pub bitstream: Option<Vec<(NodeId, TruthTable)>>,
    /// Distinguishing input *sequences* required.
    pub dips: usize,
    /// The unroll bound the result is valid for.
    pub frames: usize,
    /// Solver counters.
    pub solver_stats: SolverStats,
}

/// The **no-scan** variant of the SAT attack: the scan chain is locked
/// (the paper's deployment posture), so the oracle can only be driven
/// with primary-input sequences from reset and observed at its primary
/// outputs. Key reasoning spans `cfg.frames` unrolled cycles.
///
/// Compared with [`run`], the search space per query is `2^(I·k)` input
/// sequences instead of `2^(I+S)` frames and each CNF is `k` copies of
/// the circuit per miter side — the concrete cost of losing scan access,
/// and the correctness is only *bounded* (sequences longer than the
/// unroll may still distinguish keys). Both effects are what the paper
/// counts on when it instructs designers to disable scan.
///
/// # Errors
///
/// Returns [`SimError`] if the oracle is unprogrammed or incompatible.
///
/// # Panics
///
/// Panics if the netlists are not the same design or `cfg.frames` is 0.
pub fn run_sequential(
    redacted: &Netlist,
    oracle: &Netlist,
    cfg: &SequentialAttackConfig,
) -> Result<SequentialAttackOutcome, SimError> {
    assert_eq!(
        redacted.len(),
        oracle.len(),
        "netlists must be the same design"
    );
    let mut oracle_sim = Simulator::new(oracle)?;
    let k = cfg.frames;

    let mut solver = Solver::new();
    let u1 = encode_unrolled(redacted, &mut solver, k);
    let u2 = encode_unrolled(redacted, &mut solver, k);
    // Shared input sequence, independent keys, some output at some frame
    // must differ.
    let mut pairs: Vec<(Var, Var)> = Vec::new();
    for f in 0..k {
        for (&a, &b) in u1.inputs[f].iter().zip(&u2.inputs[f]) {
            equal(&mut solver, a, b);
        }
        pairs.extend(
            u1.outputs[f]
                .iter()
                .copied()
                .zip(u2.outputs[f].iter().copied()),
        );
    }
    // Keys of the two unrolled copies are internally shared per copy;
    // between copies they stay free.
    let miter_active = sttlock_sat::encode::assert_some_difference_gated(&mut solver, &pairs);

    let mut dips = 0usize;
    loop {
        if cfg.max_dips != 0 && dips >= cfg.max_dips {
            return Ok(SequentialAttackOutcome {
                bitstream: None,
                dips,
                frames: k,
                solver_stats: solver.stats(),
            });
        }
        match solver.solve_with(&[miter_active]) {
            SatResult::Unsat => break,
            SatResult::Sat => {
                dips += 1;
                // Extract the distinguishing input sequence.
                let sequence: Vec<Vec<u64>> = (0..k)
                    .map(|f| {
                        u1.inputs[f]
                            .iter()
                            .map(|&v| full_word(solver.value(v)))
                            .collect()
                    })
                    .collect();
                // Oracle responses from reset.
                let responses = oracle_sim.run(&sequence)?;
                // Constrain both copies to reproduce the oracle on this
                // sequence: one fresh unrolled copy per key side.
                for base in [&u1, &u2] {
                    let copy = encode_unrolled(redacted, &mut solver, k);
                    sttlock_sat::encode::tie_keys(&mut solver, &base.frames[0], &copy.frames[0]);
                    for f in 0..k {
                        for (&v, &w) in copy.inputs[f].iter().zip(&sequence[f]) {
                            solver.add_clause(&[Lit::new(v, w & 1 == 0)]);
                        }
                        for (&v, &w) in copy.outputs[f].iter().zip(&responses[f]) {
                            solver.add_clause(&[Lit::new(v, w & 1 == 0)]);
                        }
                    }
                }
            }
        }
    }

    let res = solver.solve();
    assert_eq!(res, SatResult::Sat, "constraint set must stay satisfiable");
    let bitstream = u1.frames[0].decode_keys(&solver);
    Ok(SequentialAttackOutcome {
        bitstream: Some(bitstream),
        dips,
        frames: k,
        solver_stats: solver.stats(),
    })
}

/// Verifies a recovered bitstream against the oracle by random
/// single-frame simulation. Returns the number of mismatching frames.
///
/// # Errors
///
/// Returns [`SimError`] on structural mismatches.
pub fn verify_bitstream<R: rand::Rng + ?Sized>(
    redacted: &Netlist,
    oracle: &Netlist,
    bitstream: &[(NodeId, TruthTable)],
    frames: usize,
    rng: &mut R,
) -> Result<usize, SimError> {
    let mut rebuilt = redacted.clone();
    rebuilt.program(bitstream);
    let mut a = Simulator::new(&rebuilt)?;
    let mut b = Simulator::new(oracle)?;
    let n_in = redacted.inputs().len();
    let n_state = a.dff_ids().len();
    let mut mismatches = 0usize;
    for _ in 0..frames {
        let inputs: Vec<u64> = (0..n_in).map(|_| rng.gen()).collect();
        let state: Vec<u64> = (0..n_state).map(|_| rng.gen()).collect();
        a.eval_frame(&inputs, &state)?;
        b.eval_frame(&inputs, &state)?;
        let oa = a.observation();
        let ob = b.observation();
        for (x, y) in oa.iter().zip(&ob) {
            mismatches += (x ^ y).count_ones() as usize;
        }
    }
    Ok(mismatches)
}

fn observation_pairs(e1: &Encoding, e2: &Encoding) -> Vec<(Var, Var)> {
    let mut pairs: Vec<(Var, Var)> = e1
        .outputs
        .iter()
        .copied()
        .zip(e2.outputs.iter().copied())
        .collect();
    pairs.extend(
        e1.next_state
            .iter()
            .map(|(_, v)| *v)
            .zip(e2.next_state.iter().map(|(_, v)| *v)),
    );
    pairs
}

fn equal(solver: &mut Solver, a: Var, b: Var) {
    solver.add_clause(&[Lit::pos(a), Lit::neg(b)]);
    solver.add_clause(&[Lit::neg(a), Lit::pos(b)]);
}

fn full_word(v: Option<bool>) -> u64 {
    match v {
        Some(true) => u64::MAX,
        _ => 0,
    }
}

/// Encodes one more copy of the netlist with keys tied to `enc`, inputs
/// and state pinned to the DIP, and observations pinned to the oracle
/// response. Returns `false` if the solver became unsatisfiable.
fn add_io_constraint(
    solver: &mut Solver,
    redacted: &Netlist,
    enc: &Encoding,
    inputs: &[u64],
    state: &[u64],
    response: &[u64],
) -> bool {
    let copy = encode(redacted, solver);
    tie_keys(solver, enc, &copy);
    let mut ok = true;
    for (&v, &w) in copy.inputs.iter().zip(inputs) {
        ok &= solver.add_clause(&[Lit::new(v, w & 1 == 0)]);
    }
    for ((_, v), &w) in copy.state_inputs.iter().zip(state) {
        ok &= solver.add_clause(&[Lit::new(*v, w & 1 == 0)]);
    }
    let mut obs: Vec<Var> = copy.outputs.clone();
    obs.extend(copy.next_state.iter().map(|(_, v)| *v));
    for (&v, &w) in obs.iter().zip(response) {
        ok &= solver.add_clause(&[Lit::new(v, w & 1 == 0)]);
    }
    ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sttlock_netlist::{GateKind, NetlistBuilder};

    fn lockable() -> Netlist {
        let mut b = NetlistBuilder::new("m");
        b.input("a");
        b.input("c");
        b.input("d");
        b.gate("g1", GateKind::Nand, &["a", "c"]);
        b.gate("g2", GateKind::Nor, &["g1", "d"]);
        b.gate("g3", GateKind::Xor, &["g2", "a"]);
        b.dff("q", "g3");
        b.gate("g4", GateKind::And, &["q", "d"]);
        b.output("g4");
        b.finish().unwrap()
    }

    fn lock(names: &[&str]) -> (Netlist, Netlist) {
        let mut programmed = lockable();
        for name in names {
            let id = programmed.find(name).unwrap();
            programmed.replace_gate_with_lut(id).unwrap();
        }
        let (redacted, _) = programmed.redact();
        (redacted, programmed)
    }

    #[test]
    fn recovers_single_missing_gate() {
        let (redacted, programmed) = lock(&["g2"]);
        let out = run(&redacted, &programmed, &SatAttackConfig::default()).unwrap();
        assert!(out.succeeded());
        let bits = out.bitstream.unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mismatches = verify_bitstream(&redacted, &programmed, &bits, 64, &mut rng).unwrap();
        assert_eq!(mismatches, 0);
    }

    #[test]
    fn recovers_dependent_chain_with_scan_access() {
        // With full scan even the dependent chain falls — which is why
        // the paper insists scan is locked in fielded parts.
        let (redacted, programmed) = lock(&["g1", "g2", "g3"]);
        let out = run(&redacted, &programmed, &SatAttackConfig::default()).unwrap();
        assert!(out.succeeded());
        let bits = out.bitstream.unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mismatches = verify_bitstream(&redacted, &programmed, &bits, 64, &mut rng).unwrap();
        assert_eq!(mismatches, 0, "equivalence class member must match oracle");
    }

    #[test]
    fn dip_limit_aborts_gracefully() {
        let (redacted, programmed) = lock(&["g1", "g2", "g3"]);
        let cfg = SatAttackConfig { max_dips: 1 };
        let out = run(&redacted, &programmed, &cfg).unwrap();
        if !out.succeeded() {
            assert_eq!(out.dips, 1);
        }
    }

    #[test]
    fn sequential_attack_recovers_bounded_equivalent_keys() {
        let (redacted, programmed) = lock(&["g2", "g3"]);
        let cfg = SequentialAttackConfig {
            frames: 4,
            max_dips: 10_000,
        };
        let out = run_sequential(&redacted, &programmed, &cfg).unwrap();
        let bits = out.bitstream.expect("attack converges on a small design");
        // Bounded guarantee: replay random sequences of <= `frames`
        // cycles from reset and compare primary outputs.
        let mut rebuilt = redacted.clone();
        rebuilt.program(&bits);
        let mut a = Simulator::new(&rebuilt).unwrap();
        let mut b = Simulator::new(&programmed).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..16 {
            let seq: Vec<Vec<u64>> = (0..cfg.frames)
                .map(|_| (0..redacted.inputs().len()).map(|_| rng.gen()).collect())
                .collect();
            assert_eq!(a.run(&seq).unwrap(), b.run(&seq).unwrap());
        }
    }

    #[test]
    fn sequential_attack_costs_more_than_scan_attack() {
        // Losing scan access makes each query a k-frame formula; the
        // solver works strictly harder for the same key material.
        let (redacted, programmed) = lock(&["g1", "g2", "g3"]);
        let scan = run(&redacted, &programmed, &SatAttackConfig::default()).unwrap();
        let cfg = SequentialAttackConfig {
            frames: 6,
            max_dips: 10_000,
        };
        let noscan = run_sequential(&redacted, &programmed, &cfg).unwrap();
        assert!(noscan.bitstream.is_some());
        assert!(
            noscan.solver_stats.propagations >= scan.solver_stats.propagations,
            "no-scan {} vs scan {}",
            noscan.solver_stats.propagations,
            scan.solver_stats.propagations
        );
    }

    #[test]
    fn no_missing_gates_needs_no_dips() {
        let n = lockable();
        let out = run(&n, &n, &SatAttackConfig::default()).unwrap();
        assert!(out.succeeded());
        assert_eq!(out.dips, 0);
        assert!(out.bitstream.unwrap().is_empty());
    }

    #[test]
    fn more_missing_gates_need_at_least_as_many_dips() {
        let (r1, p1) = lock(&["g2"]);
        let (r3, p3) = lock(&["g1", "g2", "g3"]);
        let o1 = run(&r1, &p1, &SatAttackConfig::default()).unwrap();
        let o3 = run(&r3, &p3, &SatAttackConfig::default()).unwrap();
        assert!(o3.dips >= o1.dips, "{} vs {}", o3.dips, o1.dips);
    }
}
