//! The analytic attack-effort estimators of Section IV (Equations 1–3).
//!
//! The parametric-aware numbers in Figure 3 reach 10²¹⁹, far beyond
//! `f64`, so efforts are carried in the log₁₀ domain by [`BigEffort`].
//!
//! * Equation 1 — independent selection:
//!   `N_indep = Σᵢ αᵢ · Dᵢ` test clocks.
//! * Equation 2 — dependent selection:
//!   `N_dep = Πᵢ αᵢ · Pᵢ · Dᵢ`.
//! * Equation 3 — brute force against parametric-aware selection:
//!   `N_bf = 2^I · P^M · D`.
//!
//! `Dᵢ` is the number of flip-flops between missing gate `i` and a
//! primary output (at least 1 clock is always charged); `I` counts the
//! accessible (non-missing) signals driving missing gates; `D` is the
//! circuit depth in flip-flops.

use std::collections::VecDeque;
use std::fmt;

use sttlock_netlist::{CircuitView, Netlist, NodeId};

use crate::alpha::{alpha_for, p_for};

/// A non-negative effort count stored as log₁₀ (so 10²¹⁹ is fine).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct BigEffort {
    log10: f64,
}

/// Largest log₁₀ magnitude that still exponentiates to a finite `f64`
/// (`f64::MAX ≈ 1.798e308`). Every conversion out of the log domain
/// saturates here instead of overflowing to `inf`.
const MAX_FINITE_LOG10: f64 = 308.0;

/// `10^log10`, saturating at ~1e308 so the result is always finite.
///
/// This is the single place the log-domain arithmetic leaves the log
/// domain; [`BigEffort::clocks`] and [`BigEffort::years_at`] both clamp
/// through it (they previously carried hand-copied `min(308.0)` calls).
/// Underflow needs no clamp: `10^x` for very negative `x` flushes to
/// `0.0`, which is the correct saturation.
fn pow10_saturating(log10: f64) -> f64 {
    10f64.powf(log10.min(MAX_FINITE_LOG10))
}

impl BigEffort {
    /// One unit of effort (a single test clock).
    pub const ONE: BigEffort = BigEffort { log10: 0.0 };

    /// Effort from a plain count.
    ///
    /// # Panics
    ///
    /// Panics if `clocks` is not positive.
    pub fn from_clocks(clocks: f64) -> Self {
        assert!(clocks > 0.0, "effort must be positive");
        BigEffort {
            log10: clocks.log10(),
        }
    }

    /// Effort from a log₁₀ magnitude.
    pub fn from_log10(log10: f64) -> Self {
        BigEffort { log10 }
    }

    /// The log₁₀ magnitude.
    pub fn log10(self) -> f64 {
        self.log10
    }

    /// The plain count, saturating at ~1e308 (finite, never `inf`).
    pub fn clocks(self) -> f64 {
        pow10_saturating(self.log10)
    }

    /// Multiplies two efforts (adds magnitudes).
    #[must_use]
    pub fn times(self, other: BigEffort) -> BigEffort {
        BigEffort {
            log10: self.log10 + other.log10,
        }
    }

    /// Adds two efforts exactly in the log domain.
    #[must_use]
    pub fn plus(self, other: BigEffort) -> BigEffort {
        let (hi, lo) = if self.log10 >= other.log10 {
            (self.log10, other.log10)
        } else {
            (other.log10, self.log10)
        };
        BigEffort {
            log10: hi + (1.0 + 10f64.powf(lo - hi)).log10(),
        }
    }

    /// Wall-clock years at the given application rate (Figure 3 assumes
    /// 10⁹ patterns per second on modern testing equipment).
    pub fn years_at(self, patterns_per_second: f64) -> f64 {
        let secs_log = self.log10 - patterns_per_second.log10();
        pow10_saturating(secs_log - (365.25 * 24.0 * 3600.0f64).log10())
    }
}

impl fmt::Display for BigEffort {
    /// Scientific notation matching the paper's "6.07E+219" style.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let exp = self.log10.floor();
        // The fractional part is in [0, 1), so this particular exit from
        // the log domain cannot overflow — routed through the shared
        // saturating helper anyway so every exit clamps identically.
        let mantissa = pow10_saturating(self.log10 - exp);
        write!(f, "{:.2}E+{:02}", mantissa, exp as i64)
    }
}

/// Minimum number of flip-flops between each node and any primary output
/// (`None` when a node cannot reach an output at all). 0-1 BFS over the
/// fan-out graph, counting flip-flop crossings.
pub fn ff_distance_to_output(netlist: &Netlist) -> Vec<Option<u32>> {
    let mut dist: Vec<Option<u32>> = vec![None; netlist.len()];
    let mut queue: VecDeque<NodeId> = VecDeque::new();
    for &o in netlist.outputs() {
        if dist[o.index()].is_none() {
            dist[o.index()] = Some(0);
            queue.push_back(o);
        }
    }
    // Walk the graph backward: from each reached node to its fan-ins.
    // Crossing INTO a flip-flop's D-cone costs one clock.
    while let Some(id) = queue.pop_front() {
        let d = dist[id.index()].expect("queued nodes have distances");
        let node = netlist.node(id);
        let cost = u32::from(node.is_dff());
        for &f in node.fanin() {
            let nd = d + cost;
            if dist[f.index()].is_none_or(|old| nd < old) {
                dist[f.index()] = Some(nd);
                if cost == 0 {
                    queue.push_front(f);
                } else {
                    queue.push_back(f);
                }
            }
        }
    }
    dist
}

/// The redacted LUTs ("missing gates") of a netlist.
pub fn missing_gates(netlist: &Netlist) -> Vec<NodeId> {
    netlist
        .iter()
        .filter(|(_, n)| n.is_lut())
        .map(|(id, _)| id)
        .collect()
}

/// Equation 1: test clocks to resolve independently selected missing
/// gates, `Σ αᵢ·Dᵢ`.
///
/// Returns [`BigEffort::ONE`] when there are no missing gates (a sane
/// floor: reading the answer still takes a clock).
pub fn n_indep(netlist: &Netlist) -> BigEffort {
    n_indep_inner(netlist, &ff_distance_to_output(netlist))
}

fn n_indep_inner(netlist: &Netlist, dist: &[Option<u32>]) -> BigEffort {
    let mut total = 0.0f64;
    for id in missing_gates(netlist) {
        let fanin = netlist.node(id).fanin().len();
        let d = depth_of(dist, id);
        total += alpha_for(fanin) * d;
    }
    if total <= 0.0 {
        BigEffort::ONE
    } else {
        BigEffort::from_clocks(total)
    }
}

/// Equation 2: test clocks against dependent selection, `Π αᵢ·Pᵢ·Dᵢ`.
pub fn n_dep(netlist: &Netlist) -> BigEffort {
    n_dep_inner(netlist, &ff_distance_to_output(netlist))
}

fn n_dep_inner(netlist: &Netlist, dist: &[Option<u32>]) -> BigEffort {
    let mut log10 = 0.0f64;
    let luts = missing_gates(netlist);
    if luts.is_empty() {
        return BigEffort::ONE;
    }
    for id in luts {
        let fanin = netlist.node(id).fanin().len();
        let d = depth_of(dist, id);
        log10 += (alpha_for(fanin) * p_for(fanin) * d).log10();
    }
    BigEffort::from_log10(log10)
}

/// Equation 3: brute-force clocks against parametric-aware selection,
/// `2^I · P^M · D`, where `I` counts the accessible signals driving the
/// missing gates, `M` is the missing-gate count, `P` the candidate count
/// per gate and `D` the circuit flip-flop depth.
///
/// `I` is interpreted as the controllable signals — primary inputs and
/// flip-flops — in the transitive fan-in cone of the missing gates: the
/// attacker must sweep their joint assignment to exercise the missing
/// logic. (This reading reproduces the paper's magnitudes; e.g. its
/// s641 numbers imply I ≈ PIs + FFs of the cone, not just immediate
/// drivers.)
pub fn n_bf(netlist: &Netlist) -> BigEffort {
    n_bf_with(&CircuitView::new(netlist))
}

/// [`n_bf`] against a shared [`CircuitView`].
pub fn n_bf_with(view: &CircuitView<'_>) -> BigEffort {
    n_bf_inner(view, &ff_distance_to_output(view.netlist()))
}

fn n_bf_inner(view: &CircuitView<'_>, dist: &[Option<u32>]) -> BigEffort {
    let netlist = view.netlist();
    let luts = missing_gates(netlist);
    if luts.is_empty() {
        return BigEffort::ONE;
    }
    let cone = view.fanin_cone(&luts, true);
    let accessible = cone
        .iter()
        .filter(|&&id| {
            let node = netlist.node(id);
            node.is_input() || node.is_dff()
        })
        .count();
    let mut p_log_sum = 0.0f64;
    for &id in &luts {
        p_log_sum += p_for(netlist.node(id).fanin().len()).log10();
    }
    let i = accessible as f64;
    let d = dist.iter().flatten().copied().max().unwrap_or(0).max(1) as f64;
    BigEffort::from_log10(i * 2f64.log10() + p_log_sum + d.log10())
}

fn depth_of(dist: &[Option<u32>], id: NodeId) -> f64 {
    // A gate that reaches an output with no flip-flops still needs one
    // clock per pattern; unreachable gates (dangling cones) are charged
    // the same floor.
    dist[id.index()].map_or(1.0, |d| f64::from(d.max(1)))
}

/// Circuit depth `D`: the largest flip-flop count from any node to a
/// primary output — the paper's "maximum number of flip-flops on a path
/// from a primary input to a primary output" computed on the acyclic
/// min-distance approximation.
pub fn circuit_depth(netlist: &Netlist) -> u32 {
    ff_distance_to_output(netlist)
        .into_iter()
        .flatten()
        .max()
        .unwrap_or(0)
}

/// Bundle of all three estimates for one hybrid netlist.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SecurityEstimate {
    /// Equation 1 (testing attack on independent missing gates).
    pub n_indep: BigEffort,
    /// Equation 2 (testing attack on dependent missing gates).
    pub n_dep: BigEffort,
    /// Equation 3 (brute force / ML attack).
    pub n_bf: BigEffort,
}

/// Computes all three estimates.
pub fn security_estimate(netlist: &Netlist) -> SecurityEstimate {
    security_estimate_with(&CircuitView::new(netlist))
}

/// [`security_estimate`] against a shared [`CircuitView`], computing
/// the flip-flop distance map once for all three equations.
pub fn security_estimate_with(view: &CircuitView<'_>) -> SecurityEstimate {
    let netlist = view.netlist();
    let dist = ff_distance_to_output(netlist);
    SecurityEstimate {
        n_indep: n_indep_inner(netlist, &dist),
        n_dep: n_dep_inner(netlist, &dist),
        n_bf: n_bf_inner(view, &dist),
    }
}

/// Security of a hybrid whose STT cells fail with per-row probability
/// `p` and are *not* repaired.
///
/// A faulted row leaks for free: once the stored bit no longer carries
/// the design house's choice, the attacker does not need to infer it,
/// so the effective key material shrinks. We model this pessimistically
/// (for the defender) by raising every *key-derived* factor to the
/// surviving-row fraction `1 − p` while leaving the pure mechanics (the
/// flip-flop depths `Dᵢ`, `D`) untouched:
///
/// * Equation 1 becomes `Σᵢ αᵢ^(1−p) · Dᵢ`,
/// * Equation 2 becomes `Πᵢ (αᵢPᵢ)^(1−p) · Dᵢ`,
/// * Equation 3 becomes `2^(I(1−p)) · P^(M(1−p)) · D`.
///
/// `p` is clamped to `[0, 1]`. At `p = 0` all three equal
/// [`security_estimate`]; at `p = 1` they collapse to the pattern-cost
/// floor. This is the figure the repair loop defends: a `recovered`
/// verdict restores the `p = 0` numbers.
pub fn security_under_faults(netlist: &Netlist, p: f64) -> SecurityEstimate {
    let p = p.clamp(0.0, 1.0);
    let survive = 1.0 - p;
    let view = CircuitView::new(netlist);
    let dist = ff_distance_to_output(netlist);
    let luts = missing_gates(netlist);
    if luts.is_empty() {
        return SecurityEstimate {
            n_indep: BigEffort::ONE,
            n_dep: BigEffort::ONE,
            n_bf: BigEffort::ONE,
        };
    }

    // Equation 1 with αᵢ^(1−p): α ≤ 64, so the linear domain is safe.
    let mut indep_total = 0.0f64;
    for &id in &luts {
        let fanin = netlist.node(id).fanin().len();
        indep_total += alpha_for(fanin).powf(survive) * depth_of(&dist, id);
    }
    let n_indep = if indep_total <= 0.0 {
        BigEffort::ONE
    } else {
        BigEffort::from_clocks(indep_total)
    };

    // Equation 2 with (αᵢPᵢ)^(1−p)·Dᵢ per factor, in the log domain.
    let mut dep_log = 0.0f64;
    for &id in &luts {
        let fanin = netlist.node(id).fanin().len();
        dep_log +=
            survive * (alpha_for(fanin) * p_for(fanin)).log10() + depth_of(&dist, id).log10();
    }
    let n_dep = BigEffort::from_log10(dep_log);

    // Equation 3 with the keyspace exponents I and M·log P scaled.
    let cone = view.fanin_cone(&luts, true);
    let accessible = cone
        .iter()
        .filter(|&&id| {
            let node = netlist.node(id);
            node.is_input() || node.is_dff()
        })
        .count() as f64;
    let mut p_log_sum = 0.0f64;
    for &id in &luts {
        p_log_sum += p_for(netlist.node(id).fanin().len()).log10();
    }
    let d = dist.iter().flatten().copied().max().unwrap_or(0).max(1) as f64;
    let n_bf = BigEffort::from_log10(survive * (accessible * 2f64.log10() + p_log_sum) + d.log10());

    SecurityEstimate {
        n_indep,
        n_dep,
        n_bf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sttlock_netlist::{GateKind, NetlistBuilder};

    /// in → g0 → ff1 → g1 → ff2 → g2 → out (all NAND2, side input c).
    fn pipeline(lutify: &[&str]) -> Netlist {
        let mut b = NetlistBuilder::new("pipe");
        b.input("in");
        b.input("c");
        b.gate("g0", GateKind::Nand, &["in", "c"]);
        b.dff("ff1", "g0");
        b.gate("g1", GateKind::Nand, &["ff1", "c"]);
        b.dff("ff2", "g1");
        b.gate("g2", GateKind::Nand, &["ff2", "c"]);
        b.output("g2");
        let mut n = b.finish().unwrap();
        for name in lutify {
            let id = n.find(name).unwrap();
            n.replace_gate_with_lut(id).unwrap();
        }
        n
    }

    #[test]
    fn big_effort_arithmetic() {
        let a = BigEffort::from_clocks(1000.0);
        assert!((a.log10() - 3.0).abs() < 1e-12);
        let b = a.times(BigEffort::from_clocks(100.0));
        assert!((b.log10() - 5.0).abs() < 1e-12);
        let c = a.plus(a);
        assert!((c.clocks() - 2000.0).abs() < 1e-6);
        assert_eq!(BigEffort::from_log10(219.783).to_string(), "6.07E+219");
    }

    #[test]
    fn pow10_saturates_at_the_overflow_boundary() {
        // Below the clamp: exact exponentiation.
        assert!((pow10_saturating(300.0) - 1e300).abs() / 1e300 < 1e-12);
        // At and past the clamp: finite, monotone-capped, never inf.
        let cap = pow10_saturating(MAX_FINITE_LOG10);
        assert!(cap.is_finite());
        assert_eq!(pow10_saturating(308.5), cap);
        assert_eq!(pow10_saturating(1e6), cap);
        assert_eq!(pow10_saturating(f64::INFINITY), cap);
        // Underflow flushes to zero without any clamp.
        assert_eq!(pow10_saturating(-400.0), 0.0);
    }

    #[test]
    fn clocks_and_years_stay_finite_past_the_boundary() {
        let huge = BigEffort::from_log10(656.0); // s38584 parametric scale
        assert!(huge.clocks().is_finite());
        assert!(huge.years_at(1e9).is_finite());
        // Displays still render the true exponent, unclamped.
        assert!(huge.to_string().ends_with("E+656"));
    }

    #[test]
    fn plus_merge_handles_zero_and_negative_deltas() {
        // Zero delta (hi == lo): exactly doubles.
        let a = BigEffort::from_log10(10.0);
        let sum = a.plus(a);
        assert!((sum.log10() - (10.0 + 2f64.log10())).abs() < 1e-12);
        // Large negative delta: the small term underflows cleanly and
        // the merge returns hi unchanged — no NaN, no inf.
        let tiny = BigEffort::from_log10(-400.0);
        let big = BigEffort::from_log10(308.0);
        assert_eq!(big.plus(tiny).log10(), 308.0);
        assert_eq!(tiny.plus(big).log10(), 308.0);
        // Order independence around the hi/lo swap.
        let b = BigEffort::from_log10(9.0);
        assert!((a.plus(b).log10() - b.plus(a).log10()).abs() < 1e-12);
    }

    #[test]
    fn years_at_rate() {
        // 1e9 patterns/s for a year ≈ 3.156e16 patterns.
        let year = BigEffort::from_clocks(1e9 * 365.25 * 24.0 * 3600.0);
        let y = year.years_at(1e9);
        assert!((y - 1.0).abs() < 1e-9, "{y}");
    }

    #[test]
    fn ff_distance_counts_crossings() {
        let n = pipeline(&[]);
        let dist = ff_distance_to_output(&n);
        assert_eq!(dist[n.find("g2").unwrap().index()], Some(0));
        assert_eq!(dist[n.find("g1").unwrap().index()], Some(1));
        assert_eq!(dist[n.find("g0").unwrap().index()], Some(2));
        assert_eq!(dist[n.find("in").unwrap().index()], Some(2));
        assert_eq!(circuit_depth(&n), 2);
    }

    #[test]
    fn eq1_sums_alpha_times_depth() {
        let n = pipeline(&["g0", "g2"]);
        // g0: α=2.45, D=2; g2: α=2.45, D=max(0,1)=1 → 2.45*2 + 2.45*1.
        let e = n_indep(&n);
        assert!((e.clocks() - (2.45 * 2.0 + 2.45)).abs() < 1e-6, "{e}");
    }

    #[test]
    fn eq2_multiplies() {
        let n = pipeline(&["g0", "g1"]);
        // g0: αPD = 2.45·2.5·2; g1: 2.45·2.5·1 → product.
        let e = n_dep(&n);
        let expect = (2.45 * 2.5 * 2.0) * (2.45 * 2.5 * 1.0);
        assert!((e.clocks() - expect).abs() < 1e-6, "{e}");
    }

    #[test]
    fn eq3_is_exponential_in_inputs_and_gates() {
        let n = pipeline(&["g0", "g1", "g2"]);
        // Controllable cone of the three missing gates: in, c, ff1, ff2
        // → I = 4; M = 3 two-input gates (P = 2.5 each); D = 2.
        let e = n_bf(&n);
        let expect = 2f64.powi(4) * 2.5f64.powi(3) * 2.0;
        assert!((e.clocks() - expect).abs() < 1e-6, "{e}");
    }

    #[test]
    fn eq3_counts_transitive_cone_not_immediate_drivers() {
        // Only g2 is missing, but its transitive cone reaches both
        // flip-flops and both primary inputs: I = 4, not 2.
        let n = pipeline(&["g2"]);
        let e = n_bf(&n);
        let expect = 2f64.powi(4) * 2.5 * 2.0;
        assert!((e.clocks() - expect).abs() < 1e-6, "{e}");
    }

    #[test]
    fn dependent_beats_independent() {
        // With several missing gates, the product (Eq. 2) dwarfs the sum
        // (Eq. 1) — the paper's security ordering.
        let n = pipeline(&["g0", "g1", "g2"]);
        let s = security_estimate(&n);
        assert!(s.n_dep.log10() > s.n_indep.log10());
    }

    #[test]
    fn no_luts_floors_at_one() {
        let n = pipeline(&[]);
        assert_eq!(n_indep(&n), BigEffort::ONE);
        assert_eq!(n_dep(&n), BigEffort::ONE);
        assert_eq!(n_bf(&n), BigEffort::ONE);
    }

    #[test]
    fn faultless_estimate_matches_the_baseline() {
        let n = pipeline(&["g0", "g1", "g2"]);
        let base = security_estimate(&n);
        let faulted = security_under_faults(&n, 0.0);
        assert!((base.n_indep.log10() - faulted.n_indep.log10()).abs() < 1e-9);
        assert!((base.n_dep.log10() - faulted.n_dep.log10()).abs() < 1e-9);
        assert!((base.n_bf.log10() - faulted.n_bf.log10()).abs() < 1e-9);
    }

    #[test]
    fn security_decays_monotonically_with_fault_probability() {
        let n = pipeline(&["g0", "g1", "g2"]);
        let mut prev = security_under_faults(&n, 0.0);
        for p in [0.1, 0.5, 0.9, 1.0] {
            let s = security_under_faults(&n, p);
            assert!(s.n_indep.log10() <= prev.n_indep.log10() + 1e-12, "p={p}");
            assert!(s.n_dep.log10() <= prev.n_dep.log10() + 1e-12, "p={p}");
            assert!(s.n_bf.log10() <= prev.n_bf.log10() + 1e-12, "p={p}");
            prev = s;
        }
        // At p = 1 only the depth mechanics remain.
        let floor = security_under_faults(&n, 1.0);
        assert!(floor.n_bf.log10() <= 2f64.log10() + 1e-9);
        // Out-of-range probabilities clamp instead of exploding.
        assert_eq!(
            security_under_faults(&n, 7.5).n_bf,
            security_under_faults(&n, 1.0).n_bf
        );
    }
}
