//! The α and P attack constants of Section IV-A.
//!
//! α is "the average number of required patterns to determine an
//! independent missing gate", derived from the pairwise *similarity* of
//! the candidate gate family (two gates of similarity `s` need `s + 1`
//! patterns to tell apart in the worst placement, so `α = 1 + avg
//! similarity`). P is the number of candidate gates an attacker must
//! consider per missing gate.
//!
//! The paper publishes α = 2.45 / 4.2 / 7.4 for 2-/3-/4-input gates
//! (average similarity 1.45 for 2-input) and P = 2.5 for 2-input gates,
//! with "more than 12 meaningful gates" for 3-/4-input LUTs. The
//! [`recomputed_alpha`] value derived from the six-gate family here lands
//! close to but not exactly on the published constant (the paper does not
//! give its exact averaging convention); the estimators default to the
//! published values so Figure 3 reproduces on the paper's scale.

use sttlock_netlist::meaningful_gates;

/// Published α per fan-in (Section IV-A.1).
///
/// # Panics
///
/// Panics for fan-ins outside 2..=4 — the paper only characterizes those;
/// use [`alpha_for`] for a total function.
pub fn paper_alpha(fanin: usize) -> f64 {
    match fanin {
        2 => 2.45,
        3 => 4.2,
        4 => 7.4,
        _ => panic!("the paper publishes α only for fan-in 2..=4, got {fanin}"),
    }
}

/// Published P (candidate gates) per fan-in (Sections IV-A.2 / IV-A.3).
///
/// The paper states P = 2.5 for 2-input missing gates and "more than 12
/// meaningful gates" for 3-/4-input LUTs; 12.5 is used for those.
///
/// # Panics
///
/// Panics for fan-ins outside 2..=4; use [`p_for`] for a total function.
pub fn paper_p(fanin: usize) -> f64 {
    match fanin {
        2 => 2.5,
        3 | 4 => 12.5,
        _ => panic!("the paper publishes P only for fan-in 2..=4, got {fanin}"),
    }
}

/// Total α: published values in the characterized range, geometric
/// extrapolation outside it (α roughly doubles per added input in the
/// published data). Fan-in 1 (inverter/buffer in a LUT) needs a single
/// distinguishing pattern pair, α = 2.
pub fn alpha_for(fanin: usize) -> f64 {
    match fanin {
        0 | 1 => 2.0,
        2..=4 => paper_alpha(fanin),
        n => paper_alpha(4) * 1.8f64.powi(n as i32 - 4),
    }
}

/// Total P with the same extrapolation policy; fan-in 1 has two
/// meaningful functions (buffer and inverter).
pub fn p_for(fanin: usize) -> f64 {
    match fanin {
        0 | 1 => 2.0,
        2..=4 => paper_p(fanin),
        n => paper_p(4) * 2.0f64.powi(n as i32 - 4),
    }
}

/// Average pairwise similarity of the meaningful gate family at the
/// given fan-in, recomputed from the truth tables (unordered distinct
/// pairs).
///
/// # Panics
///
/// Panics if `fanin` is outside 2..=6.
pub fn recomputed_average_similarity(fanin: usize) -> f64 {
    let fam = meaningful_gates(fanin);
    let mut total = 0usize;
    let mut pairs = 0usize;
    for i in 0..fam.len() {
        for j in (i + 1)..fam.len() {
            total += fam[i].similarity(&fam[j]);
            pairs += 1;
        }
    }
    total as f64 / pairs as f64
}

/// α recomputed from first principles: `1 + avg similarity`.
///
/// # Panics
///
/// Panics if `fanin` is outside 2..=6.
pub fn recomputed_alpha(fanin: usize) -> f64 {
    1.0 + recomputed_average_similarity(fanin)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_constants() {
        assert_eq!(paper_alpha(2), 2.45);
        assert_eq!(paper_alpha(3), 4.2);
        assert_eq!(paper_alpha(4), 7.4);
        assert_eq!(paper_p(2), 2.5);
    }

    #[test]
    fn recomputed_alpha_is_near_published_for_two_inputs() {
        // Paper: average similarity 1.45 → α = 2.45. The six-gate family
        // yields 1.6 under unordered-pair averaging; the estimators use
        // the published constant, but the recomputation must stay close.
        let sim = recomputed_average_similarity(2);
        assert!((sim - 1.6).abs() < 1e-9, "similarity {sim}");
        assert!((recomputed_alpha(2) - paper_alpha(2)).abs() < 0.5);
    }

    #[test]
    fn alpha_grows_with_fanin() {
        assert!(paper_alpha(3) > paper_alpha(2));
        assert!(paper_alpha(4) > paper_alpha(3));
        assert!(alpha_for(5) > alpha_for(4));
        assert!(alpha_for(6) > alpha_for(5));
    }

    #[test]
    fn total_functions_cover_all_fanins() {
        for k in 0..=6 {
            assert!(alpha_for(k) >= 2.0);
            assert!(p_for(k) >= 2.0);
        }
    }

    #[test]
    #[should_panic(expected = "fan-in 2..=4")]
    fn paper_alpha_rejects_out_of_range() {
        let _ = paper_alpha(5);
    }
}
