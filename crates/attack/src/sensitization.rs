//! The testing-based sensitization attack of Section IV-A.1.
//!
//! The attacker owns the redacted netlist (foundry view) and a programmed
//! oracle part. Under the full-scan model (primary inputs and state
//! controllable; primary outputs and next-state observable) the attack
//! repeats, per missing gate `g` and truth-table row `r`:
//!
//! 1. find a pattern that *justifies* `g`'s inputs to `r` and
//!    *propagates* `g`'s output to an observation point;
//! 2. simulate the redacted netlist twice in three-valued logic, forcing
//!    `g = 0` and `g = 1` (every other unresolved missing gate stays X);
//! 3. if some observation point provably differs between the two runs,
//!    the oracle's response on that pattern reveals `g`'s output for
//!    row `r`.
//!
//! Patterns come from two generators: a cheap **random stage** (64-lane
//! bit-parallel) and a **SAT-guided justification stage** — the
//! "testing techniques to justify and propagate" of the paper — that
//! targets each remaining row directly and *proves* rows unresolvable
//! (don't-care) when no sensitizing pattern exists. Both stages iterate:
//! once a gate's table completes, it is programmed into the working
//! netlist, un-blinding its neighbours.
//!
//! When the per-gate stages stall with a *small* residue of mutually
//! blinding gates (random selection can land two missing gates next to
//! each other), the attack escalates once more: it enumerates the joint
//! assignments of the remaining open rows and kills hypotheses with
//! SAT-found distinguishing patterns until only one oracle-consistent
//! equivalence class survives. That effort is exponential in the size of
//! the interdependent cluster — the paper's Equation 2 — so the stage is
//! bounded ([`MAX_JOINT_GATES`]/[`MAX_JOINT_ROWS`] open rows) and is
//! skipped for anything larger.
//!
//! Against **independent selection** this recovers the missing gates.
//! Against **dependent selection** the mutual blinding (a missing gate's
//! inputs driven by missing gates, its output masked by missing gates)
//! denies the attack a first foothold, and the dependent cluster is far
//! too large for joint enumeration — the paper's Equation 2 argument,
//! here observable as a stalled resolution ratio.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::Rng;

use sttlock_exec::Budget;

use sttlock_netlist::{CircuitView, HybridOverlay, Netlist, Node, NodeId, TruthTable};
use sttlock_sat::encode::{assert_some_difference, encode};
use sttlock_sat::{Lit, SatResult, Solver, Var};
use sttlock_sim::tri::{Forced, PartialLut, TriSimulator};
use sttlock_sim::{SimError, Simulator};

use crate::error::AttackError;

/// Most interdependent missing gates the joint stage will take on.
///
/// Joint enumeration costs `2^rows` hypotheses (paper Equation 2): fine
/// for the occasional adjacent pair that random selection produces,
/// infeasible for a dependent path. Anything above the bound is left
/// unresolved.
pub const MAX_JOINT_GATES: usize = 4;

/// Most *open* truth-table rows (summed over the cluster) the joint
/// stage will enumerate; the hypothesis space is `2^MAX_JOINT_ROWS`.
pub const MAX_JOINT_ROWS: u32 = 12;

/// Attack configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SensitizationConfig {
    /// Random 64-lane patterns to try per missing gate per round.
    pub patterns_per_gate: usize,
    /// Whether to escalate to SAT-guided justification for the rows the
    /// random stage leaves unresolved.
    pub sat_justification: bool,
    /// Test-clock budget: the attack stops with
    /// [`AttackError::TimedOut`] once this many oracle clocks are spent
    /// (`0` = unbounded). The partial result travels in the error.
    /// Internally this becomes the step cap of the attack's
    /// [`sttlock_exec::Budget`] child.
    pub max_test_clocks: u64,
    /// Wall-clock budget in milliseconds, same semantics
    /// (`0` = unbounded). Checked between patterns/SAT queries, so a
    /// single long SAT call can overshoot slightly.
    pub max_wall_ms: u64,
}

impl Default for SensitizationConfig {
    fn default() -> Self {
        SensitizationConfig {
            patterns_per_gate: 256,
            sat_justification: true,
            max_test_clocks: 0,
            max_wall_ms: 0,
        }
    }
}

/// Per-gate recovery state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredGate {
    /// Bit `r` set when row `r`'s output is known.
    pub resolved_rows: u64,
    /// Recovered outputs for the resolved rows.
    pub table_bits: u64,
    /// Bit `r` set when row `r` was *proven* uninferable — either no
    /// pattern can ever sensitize it (its [`table_bits`] bit stays 0),
    /// or the joint stage found oracle-equivalent hypotheses taking both
    /// values on it (its [`table_bits`] bit holds one such equivalent
    /// filler). Either way the emitted table preserves functional
    /// equivalence.
    ///
    /// [`table_bits`]: RecoveredGate::table_bits
    pub dont_care_rows: u64,
    /// LUT fan-in.
    pub fanin: usize,
}

impl RecoveredGate {
    fn all_rows(&self) -> u64 {
        if self.fanin >= 6 {
            u64::MAX
        } else {
            (1u64 << (1usize << self.fanin)) - 1
        }
    }

    /// Whether every row is either resolved or proven don't-care.
    pub fn is_complete(&self) -> bool {
        (self.resolved_rows | self.dont_care_rows) == self.all_rows()
    }

    /// Number of resolved rows (don't-cares excluded).
    pub fn resolved_count(&self) -> usize {
        self.resolved_rows.count_ones() as usize
    }

    /// A truth table functionally equivalent to the oracle's, if the
    /// recovery completed (don't-care rows filled with 0).
    pub fn table(&self) -> Option<TruthTable> {
        self.is_complete()
            .then(|| TruthTable::new(self.fanin, self.table_bits))
    }
}

/// Attack outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SensitizationOutcome {
    /// Recovery state per missing gate.
    pub gates: HashMap<NodeId, RecoveredGate>,
    /// Test clocks spent querying the oracle (single patterns).
    pub test_clocks: u64,
    /// SAT justification queries issued.
    pub sat_queries: u64,
}

impl SensitizationOutcome {
    /// Whether every missing gate was fully recovered (up to proven
    /// don't-cares).
    pub fn is_full_break(&self) -> bool {
        !self.gates.is_empty() && self.gates.values().all(RecoveredGate::is_complete)
    }

    /// Fraction of truth-table rows either resolved or proven
    /// don't-care, across all missing gates.
    pub fn resolution_ratio(&self) -> f64 {
        let mut covered = 0usize;
        let mut total = 0usize;
        for g in self.gates.values() {
            covered += (g.resolved_rows | g.dont_care_rows).count_ones() as usize;
            total += 1usize << g.fanin;
        }
        if total == 0 {
            0.0
        } else {
            covered as f64 / total as f64
        }
    }

    /// The recovered bitstream for fully resolved gates.
    pub fn bitstream(&self) -> Vec<(NodeId, TruthTable)> {
        let mut v: Vec<(NodeId, TruthTable)> = self
            .gates
            .iter()
            .filter_map(|(&id, g)| g.table().map(|t| (id, t)))
            .collect();
        v.sort_by_key(|(id, _)| *id);
        v
    }
}

struct AttackState<'a> {
    oracle_sim: Simulator<'a>,
    gates: HashMap<NodeId, RecoveredGate>,
    test_clocks: u64,
    sat_queries: u64,
}

/// Runs the sensitization attack.
///
/// `redacted` is the foundry view (unprogrammed LUTs); `oracle` is the
/// programmed design with identical structure.
///
/// # Errors
///
/// * [`AttackError::Sim`] if the oracle contains unprogrammed LUTs or
///   the netlists disagree on I/O arity.
/// * [`AttackError::DesignMismatch`] if the two netlists have different
///   arena sizes — formerly an `assert_eq!` process abort, now a typed
///   failure so batch campaign cells degrade gracefully.
/// * [`AttackError::TimedOut`] when a configured test-clock or
///   wall-clock budget runs out; the partial outcome accumulated so far
///   is carried inside the error.
pub fn run<R: Rng + ?Sized>(
    redacted: &Netlist,
    oracle: &Netlist,
    cfg: &SensitizationConfig,
    rng: &mut R,
) -> Result<SensitizationOutcome, AttackError> {
    run_with_budget(redacted, oracle, cfg, &Budget::unbounded(), rng)
}

/// Runs the sensitization attack under a caller-provided [`Budget`].
///
/// The config's own limits (`max_test_clocks`, `max_wall_ms`) are
/// derived as a *child* of `budget` with min-of-deadlines semantics, so
/// whichever bound is tighter — the caller's (e.g. an HTTP request
/// deadline, a campaign cell's cancel) or the config's — stops the
/// attack. Exhaustion or cancellation surfaces as
/// [`AttackError::TimedOut`] carrying the partial outcome; every
/// simulated test clock is billed to the caller's budget chain.
pub fn run_with_budget<R: Rng + ?Sized>(
    redacted: &Netlist,
    oracle: &Netlist,
    cfg: &SensitizationConfig,
    budget: &Budget,
    rng: &mut R,
) -> Result<SensitizationOutcome, AttackError> {
    if redacted.len() != oracle.len() {
        return Err(AttackError::DesignMismatch {
            redacted: redacted.len(),
            oracle: oracle.len(),
        });
    }
    let missing: Vec<NodeId> = redacted
        .iter()
        .filter(|(_, n)| matches!(n, Node::Lut { config: None, .. }))
        .map(|(id, _)| id)
        .collect();

    let mut state = AttackState {
        oracle_sim: Simulator::new(oracle)?,
        gates: missing
            .iter()
            .map(|&id| {
                (
                    id,
                    RecoveredGate {
                        resolved_rows: 0,
                        table_bits: 0,
                        dont_care_rows: 0,
                        fanin: redacted.node(id).fanin().len(),
                    },
                )
            })
            .collect(),
        test_clocks: 0,
        sat_queries: 0,
    };

    let n_inputs = redacted.inputs().len();
    let n_state = redacted.iter().filter(|(_, n)| n.is_dff()).count();
    let budget = budget.child_with(
        (cfg.max_wall_ms > 0).then(|| Instant::now() + Duration::from_millis(cfg.max_wall_ms)),
        (cfg.max_test_clocks > 0).then_some(cfg.max_test_clocks),
    );
    let mut out_of_budget = false;

    // Iterative refinement: each round re-attacks the unresolved gates
    // against a working netlist with every completed gate programmed in.
    'rounds: loop {
        let mut working = redacted.clone();
        for (&id, g) in &state.gates {
            if let Some(t) = g.table() {
                working.set_lut_config(id, t);
            }
        }
        // One memoized view per round: the working netlist is frozen for
        // the whole round, so every hypothesis simulation (two per
        // pattern) reuses the same evaluation order instead of
        // recomputing it.
        let view = CircuitView::new(&working);
        let mut progress = false;

        // Random stage.
        let random_span = sttlock_obs::span!("attack.random_stage");
        for &g in &missing {
            if state.gates[&g].is_complete() {
                continue;
            }
            let _gate = sttlock_obs::span!("attack.gate_random", gate = g.index() as u64);
            for _ in 0..cfg.patterns_per_gate {
                if state.gates[&g].is_complete() {
                    break;
                }
                if budget.exhausted() {
                    out_of_budget = true;
                    break 'rounds;
                }
                let inputs: Vec<u64> = (0..n_inputs).map(|_| rng.gen()).collect();
                let st: Vec<u64> = (0..n_state).map(|_| rng.gen()).collect();
                progress |= try_pattern(&view, &mut state, &budget, g, &inputs, &st)?;
            }
        }
        drop(random_span);

        // SAT-guided justification stage: target the leftover rows.
        if cfg.sat_justification {
            let _sat_stage = sttlock_obs::span!("attack.sat_stage");
            for &g in &missing {
                let entry = &state.gates[&g];
                if entry.is_complete() {
                    continue;
                }
                let _gate = sttlock_obs::span!("attack.gate_justify", gate = g.index() as u64);
                let open = entry.all_rows() & !(entry.resolved_rows | entry.dont_care_rows);
                for row in 0..(1usize << entry.fanin) {
                    if open & (1 << row) == 0 {
                        continue;
                    }
                    if budget.exhausted() {
                        out_of_budget = true;
                        break 'rounds;
                    }
                    state.sat_queries += 1;
                    match justify_row(&working, g, row) {
                        None => {
                            // Proven unobservable for every consistent
                            // key hypothesis: don't-care.
                            let e = state.gates.get_mut(&g).expect("tracked");
                            e.dont_care_rows |= 1 << row;
                            progress = true;
                        }
                        Some((inputs, st)) => {
                            progress |= try_pattern(&view, &mut state, &budget, g, &inputs, &st)?;
                        }
                    }
                }
            }
        }

        let all_done = state.gates.values().all(RecoveredGate::is_complete);
        if !progress || all_done {
            break;
        }
    }

    // Escalation for a small stalled residue of mutually blinding gates
    // (Equation 2: exponential in the cluster size, so bounded).
    if !out_of_budget && cfg.sat_justification {
        let _joint = sttlock_obs::span!("attack.joint_stage");
        out_of_budget = !joint_cluster_stage(redacted, &mut state, &budget)?;
    }

    let outcome = SensitizationOutcome {
        gates: state.gates,
        test_clocks: state.test_clocks,
        sat_queries: state.sat_queries,
    };
    if out_of_budget {
        return Err(AttackError::TimedOut {
            partial: Box::new(outcome),
        });
    }
    Ok(outcome)
}

/// Joint resolution of a small residue of interdependent missing gates.
///
/// The per-gate stages prove a difference *regardless* of the other
/// unresolved gates; two missing gates wired into each other's cones can
/// therefore blind each other permanently. Here the attacker instead
/// enumerates every joint assignment of the remaining open rows,
/// SAT-solves for an input distinguishing two surviving hypotheses,
/// queries the oracle on it, and discards every hypothesis the oracle
/// contradicts. Single-frame I/O equivalence of concrete netlists is
/// function equality (transitive), so when the first survivor cannot be
/// distinguished from any other, the survivors form one equivalence
/// class: rows on which the class agrees are resolved, the rest can
/// never be inferred from I/O behaviour and are recorded as don't-cares
/// filled from a surviving (hence oracle-equivalent) hypothesis.
///
/// Effort is `2^rows` hypotheses — the paper's Equation 2 — so the stage
/// bails out beyond [`MAX_JOINT_GATES`] gates or [`MAX_JOINT_ROWS`] open
/// rows, which keeps dependent selections out of reach by design.
/// Returns `false` when the budget ran out mid-stage (results recorded
/// so far are kept), `true` otherwise — including the size-bound
/// bail-outs, which are a deliberate non-attempt rather than a timeout.
fn joint_cluster_stage(
    redacted: &Netlist,
    state: &mut AttackState<'_>,
    budget: &Budget,
) -> Result<bool, SimError> {
    let mut incomplete: Vec<NodeId> = state
        .gates
        .iter()
        .filter(|(_, g)| !g.is_complete())
        .map(|(&id, _)| id)
        .collect();
    incomplete.sort_unstable();
    if incomplete.is_empty() || incomplete.len() > MAX_JOINT_GATES {
        return Ok(true);
    }
    // Flat list of (gate, row) coordinates for the open rows; bit `k` of
    // a hypothesis mask is the output of `slots[k]`.
    let mut slots: Vec<(NodeId, usize)> = Vec::new();
    for &id in &incomplete {
        let g = &state.gates[&id];
        let open = g.all_rows() & !(g.resolved_rows | g.dont_care_rows);
        for row in 0..(1usize << g.fanin) {
            if open & (1 << row) != 0 {
                slots.push((id, row));
            }
        }
    }
    if slots.is_empty() || slots.len() as u32 > MAX_JOINT_ROWS {
        return Ok(true);
    }

    // Base netlist: everything already completed is programmed in. The
    // hypotheses below only differ in LUT configurations, so they share
    // this base behind an `Arc` and one evaluation order serves all.
    let mut working = redacted.clone();
    for (&id, g) in &state.gates {
        if let Some(t) = g.table() {
            working.set_lut_config(id, t);
        }
    }
    let base = Arc::new(working);
    let order = CircuitView::new(&base).topo_order_arc();

    // One concrete netlist per joint hypothesis, expressed as a sparse
    // overlay over the shared base and materialized for SAT encoding.
    let candidates: Vec<Netlist> = (0..1u64 << slots.len())
        .map(|mask| {
            let mut cand = HybridOverlay::new(Arc::clone(&base));
            for &id in &incomplete {
                let g = &state.gates[&id];
                let mut bits = g.table_bits & g.resolved_rows;
                for (k, &(gate, row)) in slots.iter().enumerate() {
                    if gate == id && (mask >> k) & 1 == 1 {
                        bits |= 1 << row;
                    }
                }
                cand.set_lut_config(id, TruthTable::new(g.fanin, bits));
            }
            cand.materialize()
        })
        .collect();

    let mut alive: Vec<usize> = (0..candidates.len()).collect();
    loop {
        if budget.exhausted() {
            return Ok(false);
        }
        // Distinguish the first survivor from any other survivor.
        let mut pattern = None;
        for &c in alive.iter().skip(1) {
            if budget.exhausted() {
                return Ok(false);
            }
            state.sat_queries += 1;
            if let Some(p) = distinguish(&candidates[alive[0]], &candidates[c]) {
                pattern = Some(p);
                break;
            }
        }
        let Some((inputs, frame_state)) = pattern else {
            // No survivor distinguishable from the first: one class.
            break;
        };
        state.oracle_sim.eval_frame(&inputs, &frame_state)?;
        let oracle_obs = state.oracle_sim.observation();
        state.test_clocks += 64;
        budget.charge(64);
        alive.retain(|&c| {
            // All candidates are structure-identical to the base, so the
            // precomputed order is valid for each of them.
            let mut sim = match Simulator::with_order(&candidates[c], Arc::clone(&order)) {
                Ok(sim) => sim,
                Err(_) => return false,
            };
            sim.eval_frame(&inputs, &frame_state).is_ok() && sim.observation() == oracle_obs
        });
        // The true key survives every query; ≤1 left means converged.
        if alive.len() <= 1 {
            break;
        }
    }
    let Some(&witness) = alive.first() else {
        return Ok(true);
    };

    for (k, &(gate, row)) in slots.iter().enumerate() {
        let bit = 1u64 << row;
        let value = (witness as u64 >> k) & 1 == 1;
        let unanimous = alive.iter().all(|&c| (c as u64 >> k) & 1 == value as u64);
        let entry = state.gates.get_mut(&gate).expect("tracked");
        if unanimous {
            entry.resolved_rows |= bit;
        } else {
            // Both values occur in the oracle-equivalent class: the row
            // is not inferable from I/O behaviour. Record it don't-care,
            // filled from the witness so the emitted table stays inside
            // the class.
            entry.dont_care_rows |= bit;
        }
        if value {
            entry.table_bits |= bit;
        }
    }
    Ok(true)
}

/// SAT-solves for a single (input, state) frame on which two concrete
/// (fully programmed) netlists produce different observations. `None`
/// means the two are functionally equivalent.
fn distinguish(a: &Netlist, b: &Netlist) -> Option<(Vec<u64>, Vec<u64>)> {
    let mut solver = Solver::new();
    let ea = encode(a, &mut solver);
    let eb = encode(b, &mut solver);
    for (&x, &y) in ea.inputs.iter().zip(&eb.inputs) {
        tie(&mut solver, x, y);
    }
    for ((_, x), (_, y)) in ea.state_inputs.iter().zip(&eb.state_inputs) {
        tie(&mut solver, *x, *y);
    }
    let mut pairs: Vec<(Var, Var)> = ea
        .outputs
        .iter()
        .copied()
        .zip(eb.outputs.iter().copied())
        .collect();
    pairs.extend(
        ea.next_state
            .iter()
            .map(|(_, v)| *v)
            .zip(eb.next_state.iter().map(|(_, v)| *v)),
    );
    assert_some_difference(&mut solver, &pairs);
    if solver.solve() != SatResult::Sat {
        return None;
    }
    let word = |v: Var| -> u64 {
        match solver.value(v) {
            Some(true) => u64::MAX,
            _ => 0,
        }
    };
    let inputs = ea.inputs.iter().map(|&v| word(v)).collect();
    let state = ea.state_inputs.iter().map(|(_, v)| word(*v)).collect();
    Some((inputs, state))
}

/// Applies one 64-lane pattern: three-valued hypothesis runs on the
/// working netlist, an oracle query, and row deduction for `g`.
/// Returns whether any new row was resolved. The 64 test clocks are
/// billed to `budget` (and so to every ancestor up the exec chain).
fn try_pattern(
    view: &CircuitView<'_>,
    state: &mut AttackState<'_>,
    budget: &Budget,
    g: NodeId,
    inputs: &[u64],
    frame_state: &[u64],
) -> Result<bool, SimError> {
    let working = view.netlist();
    let fanin: Vec<NodeId> = working.node(g).fanin().to_vec();
    state.test_clocks += 64;
    budget.charge(64);

    // Partial knowledge of the *other* unresolved gates narrows their X
    // poisoning to the rows still open.
    let with_partials = |sim: &mut TriSimulator<'_>| {
        for (&id, rec) in &state.gates {
            if id != g && rec.resolved_rows != 0 {
                sim.set_partial_lut(
                    id,
                    PartialLut {
                        resolved: rec.resolved_rows,
                        bits: rec.table_bits,
                    },
                );
            }
        }
    };

    let mut sim0 = TriSimulator::with_view(view);
    with_partials(&mut sim0);
    sim0.eval_frame(inputs, frame_state, &[Forced { node: g, value: 0 }])?;
    let obs0 = sim0.observation();
    // g's input rows are read off the 0-run: fan-ins are upstream of g
    // and unaffected by the forcing (eval_frame cuts feedback via state).
    let fanin_words: Vec<_> = fanin.iter().map(|&f| sim0.value(f)).collect();

    let mut sim1 = TriSimulator::with_view(view);
    with_partials(&mut sim1);
    sim1.eval_frame(
        inputs,
        frame_state,
        &[Forced {
            node: g,
            value: u64::MAX,
        }],
    )?;
    let obs1 = sim1.observation();

    // Lanes where some observation point provably differs regardless of
    // the other unresolved gates (they are X in both runs).
    let mut observable = 0u64;
    for (a, b) in obs0.iter().zip(&obs1) {
        observable |= a.known_difference(*b);
    }
    if observable == 0 {
        return Ok(false);
    }
    let fanin_known = fanin_words.iter().fold(u64::MAX, |m, w| m & w.known);
    let usable = observable & fanin_known;
    if usable == 0 {
        return Ok(false);
    }

    state.oracle_sim.eval_frame(inputs, frame_state)?;
    let oracle_obs = state.oracle_sim.observation();

    let mut progress = false;
    for lane in 0..64 {
        if (usable >> lane) & 1 == 0 {
            continue;
        }
        // The oracle matches exactly one hypothesis wherever they differ.
        let mut g_out: Option<bool> = None;
        for ((a, b), &o) in obs0.iter().zip(&obs1).zip(&oracle_obs) {
            if (a.known_difference(*b) >> lane) & 1 == 1 {
                let bit0 = (a.value >> lane) & 1;
                let orac = (o >> lane) & 1;
                g_out = Some(orac != bit0);
                break;
            }
        }
        let Some(g_out) = g_out else { continue };
        let mut row = 0usize;
        for (i, w) in fanin_words.iter().enumerate() {
            if (w.value >> lane) & 1 == 1 {
                row |= 1 << i;
            }
        }
        let entry = state.gates.get_mut(&g).expect("gate tracked");
        let bit = 1u64 << row;
        if entry.resolved_rows & bit == 0 {
            entry.resolved_rows |= bit;
            if g_out {
                entry.table_bits |= bit;
            }
            progress = true;
        }
    }
    Ok(progress)
}

/// SAT-based justify-and-propagate: finds a (primary-input, state)
/// pattern that sets `g`'s fan-in to `row` while an output difference
/// between the `g = 0` and `g = 1` hypotheses is observable for *some*
/// consistent assignment of the other missing gates' keys.
///
/// Returns `None` when UNSAT — then no pattern can reveal the row under
/// *any* key hypothesis (in particular the true one), so the row is a
/// proven don't-care. A `Some` pattern is only a candidate: the caller
/// re-checks it with the pessimistic X-simulation before trusting it.
fn justify_row(working: &Netlist, g: NodeId, row: usize) -> Option<(Vec<u64>, Vec<u64>)> {
    let mut solver = Solver::new();
    let a = encode(working, &mut solver);
    let b = encode(working, &mut solver);

    // Shared inputs and state.
    for (&x, &y) in a.inputs.iter().zip(&b.inputs) {
        tie(&mut solver, x, y);
    }
    for ((_, x), (_, y)) in a.state_inputs.iter().zip(&b.state_inputs) {
        tie(&mut solver, *x, *y);
    }
    // Other missing gates: same (free) key in both copies.
    for (id, ka) in &a.keys {
        if *id == g {
            continue;
        }
        for (&x, &y) in ka.iter().zip(&b.keys[id]) {
            tie(&mut solver, x, y);
        }
    }
    // Justify the row on copy A (inputs are shared upstream nets; the
    // X-filter at verification handles any divergence the free keys
    // smuggled in).
    for (i, &f) in working.node(g).fanin().iter().enumerate() {
        let want_one = (row >> i) & 1 == 1;
        solver.add_clause(&[Lit::new(a.net_var[f.index()], !want_one)]);
    }
    // Hypotheses: g = 0 in copy A, g = 1 in copy B.
    solver.add_clause(&[Lit::neg(a.net_var[g.index()])]);
    solver.add_clause(&[Lit::pos(b.net_var[g.index()])]);

    // Some observation point must differ.
    let mut pairs: Vec<(Var, Var)> = a
        .outputs
        .iter()
        .copied()
        .zip(b.outputs.iter().copied())
        .collect();
    pairs.extend(
        a.next_state
            .iter()
            .map(|(_, v)| *v)
            .zip(b.next_state.iter().map(|(_, v)| *v)),
    );
    assert_some_difference(&mut solver, &pairs);

    if solver.solve() != SatResult::Sat {
        return None;
    }
    let word = |v: Var| -> u64 {
        match solver.value(v) {
            Some(true) => u64::MAX,
            _ => 0,
        }
    };
    let inputs = a.inputs.iter().map(|&v| word(v)).collect();
    let state = a.state_inputs.iter().map(|(_, v)| word(*v)).collect();
    Some((inputs, state))
}

fn tie(solver: &mut Solver, x: Var, y: Var) {
    solver.add_clause(&[Lit::pos(x), Lit::neg(y)]);
    solver.add_clause(&[Lit::neg(x), Lit::pos(y)]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sttlock_netlist::{GateKind, NetlistBuilder};

    /// Two independent missing gates in otherwise known logic.
    fn independent_case() -> (Netlist, Netlist) {
        let mut b = NetlistBuilder::new("m");
        b.input("a");
        b.input("c");
        b.input("d");
        b.gate("g1", GateKind::Nand, &["a", "c"]);
        b.gate("g2", GateKind::Or, &["c", "d"]);
        b.gate("o1", GateKind::Xor, &["g1", "d"]);
        b.gate("o2", GateKind::And, &["g2", "a"]);
        b.output("o1");
        b.output("o2");
        let mut programmed = b.finish().unwrap();
        for name in ["g1", "g2"] {
            let id = programmed.find(name).unwrap();
            programmed.replace_gate_with_lut(id).unwrap();
        }
        let (redacted, _) = programmed.redact();
        (redacted, programmed)
    }

    /// A chain of missing gates: g2 reads g1 (dependent selection).
    fn dependent_case() -> (Netlist, Netlist) {
        let mut b = NetlistBuilder::new("m");
        b.input("a");
        b.input("c");
        b.gate("g1", GateKind::Nand, &["a", "c"]);
        b.gate("g2", GateKind::Nor, &["g1", "c"]);
        b.gate("g3", GateKind::Xor, &["g2", "a"]);
        b.output("g3");
        let mut programmed = b.finish().unwrap();
        for name in ["g1", "g2", "g3"] {
            let id = programmed.find(name).unwrap();
            programmed.replace_gate_with_lut(id).unwrap();
        }
        let (redacted, _) = programmed.redact();
        (redacted, programmed)
    }

    #[test]
    fn breaks_independent_selection() {
        let (redacted, programmed) = independent_case();
        let mut rng = StdRng::seed_from_u64(1);
        let out = run(
            &redacted,
            &programmed,
            &SensitizationConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert!(out.is_full_break(), "ratio {}", out.resolution_ratio());
        // The recovered bitstream reprograms the redacted netlist into a
        // functional equivalent of the oracle.
        let mut rebuilt = redacted.clone();
        rebuilt.program(&out.bitstream());
        let mut a = Simulator::new(&rebuilt).unwrap();
        let mut o = Simulator::new(&programmed).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..32 {
            let pat: Vec<u64> = (0..3).map(|_| rng.gen()).collect();
            assert_eq!(a.step(&pat).unwrap(), o.step(&pat).unwrap());
        }
    }

    #[test]
    fn stalls_on_dependent_selection() {
        let (redacted, programmed) = dependent_case();
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = SensitizationConfig {
            patterns_per_gate: 64,
            sat_justification: false,
            ..SensitizationConfig::default()
        };
        let out = run(&redacted, &programmed, &cfg, &mut rng).unwrap();
        // The interior gates g1/g2 are blinded: g1's output difference is
        // masked by the X of g2/g3, and g2's inputs include the X of g1.
        assert!(
            !out.is_full_break(),
            "dependent chain must not fully resolve, got ratio {}",
            out.resolution_ratio()
        );
    }

    #[test]
    fn sat_stage_resolves_what_random_misses() {
        // y = g AND mask, where mask = a1·a2·a3·a4 is 1 on only 1/16 of
        // random patterns: random sensitization of g is unlikely in few
        // patterns, SAT justification is immediate.
        let mut b = NetlistBuilder::new("m");
        for i in 0..4 {
            b.input(&format!("a{i}"));
        }
        b.input("p");
        b.input("q");
        b.gate("m1", GateKind::And, &["a0", "a1"]);
        b.gate("m2", GateKind::And, &["a2", "a3"]);
        b.gate("mask", GateKind::And, &["m1", "m2"]);
        b.gate("g", GateKind::Xnor, &["p", "q"]);
        b.gate("y", GateKind::And, &["g", "mask"]);
        b.output("y");
        let mut programmed = b.finish().unwrap();
        let g = programmed.find("g").unwrap();
        programmed.replace_gate_with_lut(g).unwrap();
        let (redacted, _) = programmed.redact();

        let mut rng = StdRng::seed_from_u64(5);
        // No random stage at all: every row must come from justification.
        let cfg = SensitizationConfig {
            patterns_per_gate: 0,
            sat_justification: true,
            ..SensitizationConfig::default()
        };
        let out = run(&redacted, &programmed, &cfg, &mut rng).unwrap();
        assert!(out.is_full_break(), "ratio {}", out.resolution_ratio());
        assert!(out.sat_queries > 0);
        let table = out.gates[&g].table().unwrap();
        assert_eq!(table, TruthTable::from_gate(GateKind::Xnor, 2));
    }

    #[test]
    fn unobservable_rows_are_proven_dont_care() {
        // g's output is ANDed with constant 0: nothing is ever
        // observable, every row must be proven don't-care (complete
        // recovery of an irrelevant gate).
        let mut b = NetlistBuilder::new("m");
        b.input("a");
        b.input("c");
        b.constant("zero", false);
        b.gate("g", GateKind::Or, &["a", "c"]);
        b.gate("y", GateKind::And, &["g", "zero"]);
        b.output("y");
        let mut programmed = b.finish().unwrap();
        let g = programmed.find("g").unwrap();
        programmed.replace_gate_with_lut(g).unwrap();
        let (redacted, _) = programmed.redact();

        let mut rng = StdRng::seed_from_u64(7);
        let cfg = SensitizationConfig {
            patterns_per_gate: 8,
            sat_justification: true,
            ..SensitizationConfig::default()
        };
        let out = run(&redacted, &programmed, &cfg, &mut rng).unwrap();
        assert!(out.is_full_break());
        let rec = &out.gates[&g];
        assert_eq!(rec.resolved_rows, 0);
        assert_eq!(rec.dont_care_rows, 0b1111);
    }

    #[test]
    fn counts_test_clocks_and_queries() {
        let (redacted, programmed) = independent_case();
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = SensitizationConfig {
            patterns_per_gate: 4,
            sat_justification: true,
            ..SensitizationConfig::default()
        };
        let out = run(&redacted, &programmed, &cfg, &mut rng).unwrap();
        assert!(out.test_clocks > 0);
    }

    #[test]
    fn clock_budget_expires_with_a_partial_result() {
        let (redacted, programmed) = independent_case();
        let mut rng = StdRng::seed_from_u64(11);
        let cfg = SensitizationConfig {
            // One 64-lane pattern fits; the second check trips the budget.
            max_test_clocks: 64,
            ..SensitizationConfig::default()
        };
        let err = run(&redacted, &programmed, &cfg, &mut rng).unwrap_err();
        let AttackError::TimedOut { partial } = &err else {
            panic!("expected TimedOut, got {err:?}");
        };
        assert!(partial.test_clocks >= 64);
        assert_eq!(err.partial_outcome().unwrap().gates.len(), 2);
        assert!(err.to_string().contains("budget exhausted"));
    }

    #[test]
    fn wall_clock_budget_expires_immediately() {
        let (redacted, programmed) = independent_case();
        let mut rng = StdRng::seed_from_u64(12);
        let cfg = SensitizationConfig {
            max_wall_ms: 1,
            ..SensitizationConfig::default()
        };
        std::thread::sleep(std::time::Duration::from_millis(2));
        // The deadline may or may not have passed before the first
        // pattern; either a timeout or (on a very fast machine) success
        // is acceptable, but never a panic or unbounded run.
        match run(&redacted, &programmed, &cfg, &mut rng) {
            Ok(out) => assert!(out.is_full_break()),
            Err(AttackError::TimedOut { .. }) => {}
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn a_cancelled_parent_budget_stops_the_attack_with_a_partial() {
        let (redacted, programmed) = independent_case();
        let mut rng = StdRng::seed_from_u64(21);
        let parent = Budget::unbounded();
        parent.cancel();
        let err = run_with_budget(
            &redacted,
            &programmed,
            &SensitizationConfig::default(),
            &parent,
            &mut rng,
        )
        .unwrap_err();
        assert!(matches!(err, AttackError::TimedOut { .. }), "{err:?}");
    }

    #[test]
    fn parent_deadline_tightens_an_unbounded_config() {
        let (redacted, programmed) = independent_case();
        let mut rng = StdRng::seed_from_u64(22);
        let parent = Budget::deadline_at(Instant::now() - Duration::from_millis(1));
        match run_with_budget(
            &redacted,
            &programmed,
            &SensitizationConfig::default(),
            &parent,
            &mut rng,
        ) {
            Err(AttackError::TimedOut { .. }) => {}
            other => panic!("expected timeout from the parent deadline, got {other:?}"),
        }
    }

    #[test]
    fn test_clocks_are_billed_to_the_caller_budget() {
        let (redacted, programmed) = independent_case();
        let mut rng = StdRng::seed_from_u64(23);
        let parent = Budget::unbounded();
        let out = run_with_budget(
            &redacted,
            &programmed,
            &SensitizationConfig::default(),
            &parent,
            &mut rng,
        )
        .unwrap();
        assert_eq!(parent.steps_spent(), out.test_clocks);
    }

    #[test]
    fn zero_budgets_mean_unbounded() {
        let (redacted, programmed) = independent_case();
        let mut rng = StdRng::seed_from_u64(13);
        let out = run(
            &redacted,
            &programmed,
            &SensitizationConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert!(out.is_full_break());
    }

    #[test]
    fn no_missing_gates_is_trivially_empty() {
        let mut b = NetlistBuilder::new("m");
        b.input("a");
        b.gate("g", GateKind::Not, &["a"]);
        b.output("g");
        let n = b.finish().unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let out = run(&n, &n, &SensitizationConfig::default(), &mut rng).unwrap();
        assert!(out.gates.is_empty());
        assert!(!out.is_full_break());
        assert_eq!(out.resolution_ratio(), 0.0);
    }
}
