//! The camouflaged-cell baseline the paper compares against.
//!
//! Section IV-A.3 argues that an STT-based LUT beats IC camouflaging
//! (Rajendran et al., CCS '13 — the paper's \[12\]) because "the possible
//! candidates per STT-based LUT is not limited to a small number of
//! gates": a camouflaged cell hides one of ~3 functions, a k-input LUT
//! hides one of 2^2^k.
//!
//! This module makes that comparison executable. A camouflage *policy*
//! restricts a redacted LUT's key space to a small candidate family in
//! the SAT encoding, modeling a camouflaged standard cell; the SAT
//! attack can then be run against a camouflaged design and a
//! LUT-obfuscated design of identical structure, and the DIP/conflict
//! counts compared (see the `ablation` harness and the attack-defense
//! integration tests).

use std::collections::HashMap;

use sttlock_netlist::{meaningful_gates, GateKind, Netlist, NodeId, TruthTable};
use sttlock_sat::encode::Encoding;
use sttlock_sat::{Lit, Solver};

/// The candidate family of the CCS'13-style camouflaged cell: each
/// camouflaged gate is one of NAND, NOR, XNOR at its fan-in.
pub fn ccs13_candidates(fanin: usize) -> Vec<TruthTable> {
    [GateKind::Nand, GateKind::Nor, GateKind::Xnor]
        .into_iter()
        .map(|k| TruthTable::from_gate(k, fanin))
        .collect()
}

/// The full meaningful-gate family (6 candidates) — an intermediate
/// point between camouflaging and the unrestricted LUT.
pub fn meaningful_candidates(fanin: usize) -> Vec<TruthTable> {
    meaningful_gates(fanin)
}

/// Restricts the key variables of the redacted LUT `id` in `enc` to the
/// given candidate tables: adds a selector per candidate, forces the key
/// bits to match the selected table, and requires at least one selector.
///
/// Applying this to every redacted LUT of an encoding turns the
/// LUT-obfuscation instance into a camouflaging instance of the same
/// structure — candidate count per gate becomes the paper's `P`.
///
/// # Panics
///
/// Panics if `id` has no key variables in `enc` (it is not a redacted
/// LUT of that encoding) or if a candidate's width mismatches.
pub fn restrict_keys(solver: &mut Solver, enc: &Encoding, id: NodeId, candidates: &[TruthTable]) {
    let key = enc
        .keys
        .get(&id)
        .unwrap_or_else(|| panic!("node {id} has no key variables"));
    assert!(!candidates.is_empty(), "need at least one candidate");
    let mut selectors = Vec::with_capacity(candidates.len());
    for table in candidates {
        assert_eq!(
            table.rows(),
            key.len(),
            "candidate width must match the LUT fan-in"
        );
        let s = solver.new_var();
        for (row, &k) in key.iter().enumerate() {
            // s → (k == table[row])
            solver.add_clause(&[Lit::neg(s), Lit::new(k, !table.eval(row))]);
        }
        selectors.push(Lit::pos(s));
    }
    solver.add_clause(&selectors);
}

/// Applies [`restrict_keys`] to every redacted LUT of an encoding using
/// a per-node candidate map; nodes missing from the map keep the full
/// LUT key space.
pub fn restrict_all(
    solver: &mut Solver,
    enc: &Encoding,
    candidates: &HashMap<NodeId, Vec<TruthTable>>,
) {
    let ids: Vec<NodeId> = enc.keys.keys().copied().collect();
    for id in ids {
        if let Some(c) = candidates.get(&id) {
            restrict_keys(solver, enc, id, c);
        }
    }
}

/// Log₁₀ of the hypothesis-space size for a redacted netlist under a
/// camouflage policy (`candidates_per_gate(fanin)` candidates per gate)
/// versus the unrestricted LUT key space — the analytic version of the
/// paper's "significantly large search space" argument.
pub fn search_space_log10(
    netlist: &Netlist,
    candidates_per_gate: impl Fn(usize) -> f64,
) -> (f64, f64) {
    let mut camo = 0.0f64;
    let mut lut = 0.0f64;
    for (_, node) in netlist.iter() {
        if let sttlock_netlist::Node::Lut {
            fanin,
            config: None,
        } = node
        {
            camo += candidates_per_gate(fanin.len()).log10();
            // A k-input LUT hides 2^(2^k) functions: log10 = 2^k·log10 2.
            lut += (1usize << fanin.len()) as f64 * 2f64.log10();
        }
    }
    (camo, lut)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sttlock_netlist::NetlistBuilder;
    use sttlock_sat::encode::encode;
    use sttlock_sat::SatResult;

    fn redacted_single_lut() -> (Netlist, NodeId) {
        let mut b = NetlistBuilder::new("m");
        b.input("a");
        b.input("c");
        b.gate("g", GateKind::Nand, &["a", "c"]);
        b.output("g");
        let mut n = b.finish().unwrap();
        let g = n.find("g").unwrap();
        n.replace_gate_with_lut(g).unwrap();
        let (stripped, _) = n.redact();
        (stripped, g)
    }

    #[test]
    fn ccs13_family_has_three_members() {
        let fam = ccs13_candidates(2);
        assert_eq!(fam.len(), 3);
        assert!(fam.contains(&TruthTable::from_gate(GateKind::Nand, 2)));
    }

    #[test]
    fn restriction_admits_only_candidates() {
        let (n, g) = redacted_single_lut();
        let mut solver = Solver::new();
        let enc = encode(&n, &mut solver);
        restrict_keys(&mut solver, &enc, g, &ccs13_candidates(2));

        let key = enc.keys[&g].clone();
        // NAND (a candidate) is admissible…
        let nand = TruthTable::from_gate(GateKind::Nand, 2);
        let asg: Vec<Lit> = key
            .iter()
            .enumerate()
            .map(|(r, &k)| Lit::new(k, !nand.eval(r)))
            .collect();
        assert_eq!(solver.solve_with(&asg), SatResult::Sat);
        // …AND (not a candidate) is not.
        let and = TruthTable::from_gate(GateKind::And, 2);
        let asg: Vec<Lit> = key
            .iter()
            .enumerate()
            .map(|(r, &k)| Lit::new(k, !and.eval(r)))
            .collect();
        assert_eq!(solver.solve_with(&asg), SatResult::Unsat);
    }

    #[test]
    fn search_space_matches_the_papers_argument() {
        let (n, _) = redacted_single_lut();
        let (camo, lut) = search_space_log10(&n, |_| 3.0);
        // One 2-input gate: 3 camouflage candidates vs 16 LUT functions.
        assert!((camo - 3f64.log10()).abs() < 1e-12);
        assert!((lut - 16f64.log10()).abs() < 1e-12);
        assert!(lut > camo);
    }

    #[test]
    fn restrict_all_skips_unlisted_nodes() {
        let (n, g) = redacted_single_lut();
        let mut solver = Solver::new();
        let enc = encode(&n, &mut solver);
        restrict_all(&mut solver, &enc, &HashMap::new());
        // No restriction: AND is still admissible.
        let and = TruthTable::from_gate(GateKind::And, 2);
        let key = enc.keys[&g].clone();
        let asg: Vec<Lit> = key
            .iter()
            .enumerate()
            .map(|(r, &k)| Lit::new(k, !and.eval(r)))
            .collect();
        assert_eq!(solver.solve_with(&asg), SatResult::Sat);
    }
}
