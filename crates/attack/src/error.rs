//! Typed attack failures.
//!
//! The executable attacks historically `panic!`ed on malformed inputs
//! (mismatched netlists) and on "impossible" solver states (an oracle
//! response contradicting the accumulated key constraints). Batch
//! drivers such as the campaign engine need a diverging or misconfigured
//! cell to degrade to a *recorded* failure instead of aborting the whole
//! process, so every entry point now surfaces [`AttackError`].

use std::error::Error;
use std::fmt;

use sttlock_sim::SimError;

use crate::sensitization::SensitizationOutcome;

/// Why an attack could not run to completion.
///
/// Simulation problems (unprogrammed oracle, arity mismatches) are
/// wrapped via [`AttackError::Sim`]; the remaining variants are the
/// conditions that used to be `assert!`-style aborts.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AttackError {
    /// `redacted` and `oracle` are not views of the same design (their
    /// node arenas have different sizes).
    DesignMismatch {
        /// Arena size of the redacted (foundry) view.
        redacted: usize,
        /// Arena size of the oracle.
        oracle: usize,
    },
    /// An oracle response contradicted the accumulated key constraints.
    /// Impossible for a genuine programmed twin of the redacted netlist;
    /// seen when the "oracle" is a different design or a tampered part.
    OracleContradiction,
    /// The constraint set became unsatisfiable after the DIP loop — the
    /// same inconsistency as [`OracleContradiction`], detected at final
    /// key extraction instead of during a query.
    Unsatisfiable,
    /// A sequential attack was configured with a zero unroll bound.
    ZeroFrames,
    /// A configured test-clock or wall-clock budget ran out before the
    /// attack converged. Not a hard failure: everything recovered before
    /// the cutoff travels in `partial`, so campaigns can still record
    /// the resolution ratio reached within the budget.
    TimedOut {
        /// The attack state at the moment the budget expired.
        partial: Box<SensitizationOutcome>,
    },
    /// The oracle could not be simulated.
    Sim(SimError),
}

impl AttackError {
    /// The partial outcome carried by a budget expiry, if any.
    pub fn partial_outcome(&self) -> Option<&SensitizationOutcome> {
        match self {
            AttackError::TimedOut { partial } => Some(partial),
            _ => None,
        }
    }
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackError::DesignMismatch { redacted, oracle } => write!(
                f,
                "redacted and oracle netlists are not the same design \
                 ({redacted} vs {oracle} nodes)"
            ),
            AttackError::OracleContradiction => {
                write!(f, "oracle response contradicts the key constraints")
            }
            AttackError::Unsatisfiable => {
                write!(f, "key constraint set became unsatisfiable")
            }
            AttackError::ZeroFrames => {
                write!(f, "sequential attack needs at least one unroll frame")
            }
            AttackError::TimedOut { partial } => write!(
                f,
                "attack budget exhausted at resolution ratio {:.3} \
                 ({} test clocks, {} SAT queries)",
                partial.resolution_ratio(),
                partial.test_clocks,
                partial.sat_queries
            ),
            AttackError::Sim(e) => write!(f, "oracle simulation failed: {e}"),
        }
    }
}

impl Error for AttackError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AttackError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for AttackError {
    fn from(e: SimError) -> Self {
        AttackError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        let e = AttackError::DesignMismatch {
            redacted: 10,
            oracle: 12,
        };
        assert!(e.to_string().contains("10 vs 12"));
        assert!(AttackError::OracleContradiction
            .to_string()
            .contains("contradicts"));
    }

    #[test]
    fn sim_errors_convert_and_chain() {
        let e = AttackError::from(SimError::UnprogrammedLut { name: "g1".into() });
        assert!(matches!(e, AttackError::Sim(_)));
        assert!(e.source().is_some());
    }
}
