//! The twelve ISCAS '89 benchmark profiles of the paper's Table I.
//!
//! Gate counts ("size") are the paper's own column; flip-flop and I/O
//! counts follow the published ISCAS '89 suite statistics (the paper uses
//! the `a` variants of s5378, s9234 and s15850). Where the paper's gate
//! count differs from the canonical netlist (synthesis re-maps cells),
//! the paper's number wins, since Table I normalizes against it.

use crate::Profile;

/// All twelve benchmarks, smallest first (Table I order).
pub const ALL: [Profile; 12] = [
    Profile {
        name: "s641",
        gates: 287,
        dffs: 19,
        inputs: 35,
        outputs: 24,
    },
    Profile {
        name: "s820",
        gates: 289,
        dffs: 5,
        inputs: 18,
        outputs: 19,
    },
    Profile {
        name: "s832",
        gates: 379,
        dffs: 5,
        inputs: 18,
        outputs: 19,
    },
    Profile {
        name: "s953",
        gates: 395,
        dffs: 29,
        inputs: 16,
        outputs: 23,
    },
    Profile {
        name: "s1196",
        gates: 508,
        dffs: 18,
        inputs: 14,
        outputs: 14,
    },
    Profile {
        name: "s1238",
        gates: 529,
        dffs: 18,
        inputs: 14,
        outputs: 14,
    },
    Profile {
        name: "s1488",
        gates: 657,
        dffs: 6,
        inputs: 8,
        outputs: 19,
    },
    Profile {
        name: "s5378a",
        gates: 2779,
        dffs: 179,
        inputs: 35,
        outputs: 49,
    },
    Profile {
        name: "s9234a",
        gates: 5597,
        dffs: 211,
        inputs: 36,
        outputs: 39,
    },
    Profile {
        name: "s13207",
        gates: 7951,
        dffs: 638,
        inputs: 62,
        outputs: 152,
    },
    Profile {
        name: "s15850a",
        gates: 9772,
        dffs: 534,
        inputs: 77,
        outputs: 150,
    },
    Profile {
        name: "s38584",
        gates: 19253,
        dffs: 1426,
        inputs: 38,
        outputs: 304,
    },
];

/// Looks a profile up by benchmark name.
pub fn by_name(name: &str) -> Option<Profile> {
    ALL.iter().copied().find(|p| p.name == name)
}

/// The subset of profiles with at most `max_gates` gates — used to keep
/// CI-sized test runs fast while the bench binaries run the full suite.
pub fn up_to(max_gates: usize) -> Vec<Profile> {
    ALL.iter()
        .copied()
        .filter(|p| p.gates <= max_gates)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sizes_match_the_paper_table() {
        // Table I "size" column, verbatim.
        let expected = [
            ("s641", 287),
            ("s820", 289),
            ("s832", 379),
            ("s953", 395),
            ("s1196", 508),
            ("s1238", 529),
            ("s1488", 657),
            ("s5378a", 2779),
            ("s9234a", 5597),
            ("s13207", 7951),
            ("s15850a", 9772),
            ("s38584", 19253),
        ];
        for (name, size) in expected {
            assert_eq!(by_name(name).unwrap().gates, size, "{name}");
        }
        let avg: f64 = ALL.iter().map(|p| p.gates as f64).sum::<f64>() / 12.0;
        assert!(
            (avg - 4033.0).abs() < 1.0,
            "Table I average size is 4033, got {avg}"
        );
    }

    #[test]
    fn lookup_misses_gracefully() {
        assert!(by_name("s9999").is_none());
    }

    #[test]
    fn up_to_filters_by_size() {
        let small = up_to(1000);
        assert_eq!(small.len(), 7);
        assert!(small.iter().all(|p| p.gates <= 1000));
    }

    #[test]
    fn every_profile_generates_a_valid_circuit() {
        // Keep the test fast: validate the small ones exhaustively, plus
        // one mid-size circuit; the large ones share the same code path.
        for p in up_to(1000) {
            let n = p.generate(&mut StdRng::seed_from_u64(42));
            assert_eq!(n.gate_count(), p.gates, "{}", p.name);
            assert_eq!(n.dff_count(), p.dffs, "{}", p.name);
            assert_eq!(n.inputs().len(), p.inputs, "{}", p.name);
            assert_eq!(n.outputs().len(), p.outputs, "{}", p.name);
        }
        let p = by_name("s5378a").unwrap();
        let n = p.generate(&mut StdRng::seed_from_u64(42));
        assert_eq!(n.gate_count(), p.gates);
    }
}
