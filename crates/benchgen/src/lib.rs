//! Synthetic benchmark circuits with ISCAS '89 profiles.
//!
//! The paper evaluates on twelve ISCAS '89 benchmarks. The original
//! `.bench` files are distribution-restricted artifacts, so this crate
//! substitutes a **seeded random sequential circuit generator** whose
//! [`Profile`]s match the published structural parameters of each
//! benchmark: combinational gate count (the paper's Table I "size"
//! column), flip-flop count, and primary I/O counts. The selection
//! algorithms and overhead analyses depend only on these graph-structural
//! properties, so the profiles preserve the experiments' behaviour; real
//! ISCAS '89 files can be dropped in through
//! [`bench_format`](sttlock_netlist::bench_format) with no code changes.
//!
//! Every generated circuit is guaranteed to contain deep I/O paths: the
//! flip-flops form a pipeline *backbone* (each flip-flop's D-cone reads
//! the previous flip-flop), so the paper's ≥2-flip-flop path sampling
//! always succeeds.
//!
//! # Example
//!
//! ```
//! use rand::SeedableRng;
//! use sttlock_benchgen::profiles;
//!
//! let p = profiles::by_name("s641").expect("known benchmark");
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let n = p.generate(&mut rng);
//! assert_eq!(n.gate_count(), 287); // the paper's size column
//! assert_eq!(n.dff_count(), 19);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::seq::SliceRandom;
use rand::Rng;

use sttlock_netlist::{GateKind, Netlist, NetlistBuilder};

pub mod profiles;

/// Maximum flip-flop depth of a backbone pipeline chain. Register-rich
/// circuits get many parallel chains instead of one absurdly deep one,
/// matching the bounded sequential depth of the real ISCAS '89 suite.
pub const MAX_CHAIN_DEPTH: usize = 12;

/// Structural profile of a benchmark circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Profile {
    /// Benchmark name (e.g. `"s641"`).
    pub name: &'static str,
    /// Combinational gate count, excluding flip-flops — the paper's
    /// Table I "size" column.
    pub gates: usize,
    /// Flip-flop count.
    pub dffs: usize,
    /// Primary input count.
    pub inputs: usize,
    /// Primary output count.
    pub outputs: usize,
}

impl Profile {
    /// Builds an ad-hoc profile, for sweeps and tests.
    ///
    /// # Panics
    ///
    /// Panics when any of the structural requirements of
    /// [`generate`](Profile::generate) cannot hold (no inputs, no outputs,
    /// or fewer gates than flip-flops need for their backbone).
    pub fn custom(
        name: &'static str,
        gates: usize,
        dffs: usize,
        inputs: usize,
        outputs: usize,
    ) -> Self {
        let p = Profile {
            name,
            gates,
            dffs,
            inputs,
            outputs,
        };
        p.validate();
        p
    }

    fn validate(&self) {
        assert!(self.inputs >= 1, "profile needs at least one primary input");
        assert!(
            self.outputs >= 1,
            "profile needs at least one primary output"
        );
        assert!(
            self.gates >= self.dffs.max(1) + self.outputs.min(self.gates),
            "profile `{}` has too few gates ({}) for {} flip-flops and {} outputs",
            self.name,
            self.gates,
            self.dffs,
            self.outputs
        );
    }

    /// Generates a fresh circuit matching this profile. The same seed
    /// yields the same circuit.
    ///
    /// The generated netlist always validates (acyclic combinational core,
    /// resolved references) and exactly matches the profile's gate,
    /// flip-flop and primary-input counts. The output count matches unless
    /// `outputs > gates`.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Netlist {
        self.validate();
        let mut b = NetlistBuilder::new(self.name);

        let input_names: Vec<String> = (0..self.inputs).map(|i| format!("I{i}")).collect();
        for n in &input_names {
            b.input(n);
        }
        // Flip-flops are declared up front (their D drivers are gates that
        // come later — forward references the builder resolves).
        let ff_names: Vec<String> = (0..self.dffs).map(|i| format!("F{i}")).collect();

        // `pool` = signals a gate may read: inputs, flip-flop outputs and
        // already-generated gates. Recency bias creates logic depth.
        let mut pool: Vec<String> = input_names.clone();
        pool.extend(ff_names.iter().cloned());
        // Signals not yet read by anyone — preferred as fan-ins so the
        // circuit stays connected instead of sprouting dangling cones.
        let mut unread: Vec<String> = pool.clone();

        // Backbone: evenly spaced gate positions serve as flip-flop
        // D-drivers. Flip-flops are organized into pipeline *chains* of
        // bounded depth (real ISCAS '89 sequential depth is small even
        // when the register count is large): within a chain, D-driver i
        // is forced to read the previous flip-flop of the chain, and the
        // first stage reads a primary input. This guarantees ≥2-flip-flop
        // I/O paths without creating thousand-stage pipelines.
        let n_chains = if self.dffs >= 2 {
            self.dffs
                .div_ceil(MAX_CHAIN_DEPTH)
                .min(self.dffs / 2)
                .max(1)
        } else {
            1
        };
        let mut d_driver_of: Vec<Option<usize>> = vec![None; self.gates];
        for ff in 0..self.dffs {
            let pos = ((ff + 1) * self.gates) / (self.dffs + 1);
            d_driver_of[pos.min(self.gates - 1)] = Some(ff);
        }

        let mut ff_d_name: Vec<Option<String>> = vec![None; self.dffs];
        for (g, &d_ff) in d_driver_of.iter().enumerate() {
            let name = format!("N{g}");
            let kind = random_kind(rng);
            let fanin_n = if kind.is_unary() {
                1
            } else {
                random_fanin(rng)
            };

            let mut fanin: Vec<String> = Vec::with_capacity(fanin_n);
            if let Some(ff) = d_ff {
                // Forced backbone input: the previous flip-flop of this
                // chain, or a primary input for a chain's first stage.
                // Flip-flop `ff` belongs to chain `ff % n_chains`; its
                // predecessor is `ff - n_chains`.
                let forced = if ff < n_chains {
                    input_names.choose(rng).expect("inputs nonempty").clone()
                } else {
                    ff_names[ff - n_chains].clone()
                };
                fanin.push(forced);
            }
            while fanin.len() < fanin_n {
                let pick = if !unread.is_empty() && rng.gen_bool(0.35) {
                    let i = rng.gen_range(0..unread.len());
                    unread.swap_remove(i)
                } else if rng.gen_bool(0.5) && pool.len() > 32 {
                    // Recency bias: draw from the newest 32 signals.
                    pool[pool.len() - 32..]
                        .choose(rng)
                        .expect("nonempty")
                        .clone()
                } else {
                    pool.choose(rng).expect("nonempty").clone()
                };
                if !fanin.contains(&pick) {
                    fanin.push(pick);
                }
                // Duplicate picks simply retry; pools are nonempty so this
                // terminates (fanin_n ≤ 4 ≤ distinct signals available).
                if fanin.len() < fanin_n && pool.len() < fanin_n + 1 {
                    break; // degenerate tiny pool: accept fewer inputs
                }
            }
            // Arity guard for multi-input kinds in degenerate cases.
            let kind = if fanin.len() == 1 && !kind.is_unary() {
                GateKind::Not
            } else {
                kind
            };
            {
                let refs: Vec<&str> = fanin.iter().map(String::as_str).collect();
                b.gate(&name, kind, &refs);
            }
            for f in &fanin {
                unread.retain(|u| u != f);
            }
            if let Some(ff) = d_ff {
                ff_d_name[ff] = Some(name.clone());
                // The D pin reads this gate, so it is not dangling.
            } else {
                unread.push(name.clone());
            }
            pool.push(name);
        }

        for (ff, d) in ff_d_name.iter().enumerate() {
            let d = d.as_ref().expect("every flip-flop got a backbone driver");
            b.dff(&ff_names[ff], d);
        }

        // Primary outputs: prefer unread gates (newest first), then fall
        // back to the newest gates overall. The last flip-flop's fan-out
        // cone ends here via the backbone.
        let mut po_candidates: Vec<String> = unread
            .iter()
            .filter(|s| s.starts_with('N'))
            .rev()
            .cloned()
            .collect();
        for g in (0..self.gates).rev() {
            let name = format!("N{g}");
            if !po_candidates.contains(&name) {
                po_candidates.push(name);
            }
            if po_candidates.len() >= self.outputs {
                break;
            }
        }
        for name in po_candidates.into_iter().take(self.outputs) {
            b.output(&name);
        }

        b.finish().expect("generated circuit is structurally valid")
    }
}

/// Gate-kind distribution approximating synthesized ISCAS '89 netlists:
/// NAND/NOR-heavy with a tail of XOR/XNOR and inverters.
fn random_kind<R: Rng + ?Sized>(rng: &mut R) -> GateKind {
    let roll = rng.gen_range(0..100);
    match roll {
        0..=27 => GateKind::Nand,
        28..=45 => GateKind::Nor,
        46..=57 => GateKind::And,
        58..=69 => GateKind::Or,
        70..=84 => GateKind::Not,
        85..=91 => GateKind::Xor,
        92..=95 => GateKind::Xnor,
        _ => GateKind::Buf,
    }
}

/// Fan-in distribution: mostly 2, some 3, few 4 — matching standard-cell
/// mapped netlists.
fn random_fanin<R: Rng + ?Sized>(rng: &mut R) -> usize {
    let roll = rng.gen_range(0..100);
    match roll {
        0..=69 => 2,
        70..=89 => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sttlock_netlist::paths::{sample_io_paths, PathSamplerConfig};

    #[test]
    fn profile_counts_are_exact() {
        let p = Profile::custom("t", 120, 7, 6, 5);
        let mut rng = StdRng::seed_from_u64(3);
        let n = p.generate(&mut rng);
        assert_eq!(n.gate_count(), 120);
        assert_eq!(n.dff_count(), 7);
        assert_eq!(n.inputs().len(), 6);
        assert_eq!(n.outputs().len(), 5);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let p = Profile::custom("t", 80, 4, 4, 3);
        let a = p.generate(&mut StdRng::seed_from_u64(7));
        let b = p.generate(&mut StdRng::seed_from_u64(7));
        let c = p.generate(&mut StdRng::seed_from_u64(8));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn backbone_guarantees_deep_io_paths() {
        let p = Profile::custom("t", 150, 6, 5, 4);
        let mut rng = StdRng::seed_from_u64(11);
        let n = p.generate(&mut rng);
        let cfg = PathSamplerConfig {
            sample_fraction: 0.25,
            min_samples: 16,
            min_ffs: 2,
            attempts_per_seed: 6,
        };
        let paths = sample_io_paths(&n, &cfg, &mut rng);
        assert!(
            !paths.is_empty(),
            "a backboned circuit must expose >=2-FF I/O paths"
        );
        assert!(paths[0].ff_count >= 2);
    }

    #[test]
    fn tiny_profiles_still_generate() {
        let p = Profile::custom("t", 10, 2, 2, 2);
        let n = p.generate(&mut StdRng::seed_from_u64(1));
        assert_eq!(n.gate_count(), 10);
        assert!(n.check_acyclic().is_ok());
    }

    #[test]
    #[should_panic(expected = "too few gates")]
    fn rejects_impossible_profiles() {
        let _ = Profile::custom("t", 2, 5, 1, 1);
    }

    #[test]
    fn most_gates_reach_an_output_or_state() {
        use sttlock_netlist::CircuitView;
        let p = Profile::custom("t", 200, 8, 6, 10);
        let n = p.generate(&mut StdRng::seed_from_u64(5));
        let view = CircuitView::new(&n);
        let fo = view.fanout();
        let outputs = view.output_set();
        let dangling = n
            .iter()
            .filter(|(id, node)| {
                node.is_combinational() && fo[id.index()].is_empty() && !outputs.contains(*id)
            })
            .count();
        // The unread-first fan-in policy keeps dangling cones rare.
        assert!(
            (dangling as f64) < 0.05 * n.gate_count() as f64,
            "{dangling} dangling gates"
        );
    }
}
