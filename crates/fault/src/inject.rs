//! Applying a [`FaultModel`] to a programmed hybrid — and to every
//! subsequent re-program attempt.
//!
//! Injection goes through a [`HybridOverlay`]: a corrupted LUT is a
//! sparse edit over the shared base, and a stuck CMOS gate becomes a
//! constant LUT over the same wiring, so the base netlist is never
//! cloned and all of the base's graph facts stay valid for the faulted
//! variant.
//!
//! Determinism: every node draws from its own FNV-seeded stream (one
//! per fault mechanism), so the set of injected faults depends only on
//! `(model, seed)` — not on iteration order, thread scheduling or how
//! many other nodes exist. Stuck cells are a pure function of
//! `(seed, node)` and therefore persist across re-programming, which is
//! exactly what makes them unrepairable.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sttlock_netlist::{HybridOverlay, Node, NodeId, TruthTable, MAX_LUT_INPUTS};

use crate::model::{FaultKind, FaultModel, InjectedFault};

/// How a bitstream row reaches the device.
///
/// The repair loop writes through this abstraction so tests can use the
/// ideal [`PerfectChannel`] while campaigns write through the same
/// [`FaultInjector`] that corrupted the part in the first place.
pub trait ProgrammingChannel {
    /// Attempts to write `intended` into the LUT at `id`; returns the
    /// table that actually landed in the cells.
    fn write(&mut self, id: NodeId, intended: TruthTable) -> TruthTable;
}

/// The ideal channel: every write lands exactly as intended.
#[derive(Debug, Clone, Copy, Default)]
pub struct PerfectChannel;

impl ProgrammingChannel for PerfectChannel {
    fn write(&mut self, _id: NodeId, intended: TruthTable) -> TruthTable {
        intended
    }
}

/// Salts separating the per-node random streams by fault mechanism.
const SALT_STUCK0: u64 = 1;
const SALT_STUCK1: u64 = 2;
const SALT_RETENTION: u64 = 3;
const SALT_CMOS: u64 = 4;
const SALT_WRITE: u64 = 0x100;

/// Deterministic fault source for one hybrid part.
///
/// One injector models one physical device: [`corrupt`] applies the
/// initial programming + storage faults, and the
/// [`ProgrammingChannel`] impl models every later re-program attempt
/// against the same (persistently stuck) cells.
///
/// [`corrupt`]: FaultInjector::corrupt
#[derive(Debug, Clone)]
pub struct FaultInjector {
    model: FaultModel,
    seed: u64,
    /// Write attempts per LUT so far — each attempt re-rolls the
    /// write-failure dice from a fresh per-(node, attempt) stream.
    writes: BTreeMap<NodeId, u64>,
}

impl FaultInjector {
    /// An injector for `model`, deterministic in `seed`.
    ///
    /// Probabilities are clamped into `[0, 1]` — a sweep that overshoots
    /// degrades to certainty instead of panicking.
    pub fn new(model: FaultModel, seed: u64) -> Self {
        let clamp = |p: f64| p.clamp(0.0, 1.0);
        FaultInjector {
            model: FaultModel {
                write_failure_p: clamp(model.write_failure_p),
                retention_flip_p: clamp(model.retention_flip_p),
                stuck_at_zero_p: clamp(model.stuck_at_zero_p),
                stuck_at_one_p: clamp(model.stuck_at_one_p),
                cmos_stuck_p: clamp(model.cmos_stuck_p),
            },
            seed,
            writes: BTreeMap::new(),
        }
    }

    /// The (clamped) model in force.
    pub fn model(&self) -> &FaultModel {
        &self.model
    }

    /// Corrupts a programmed hybrid in place, through the overlay.
    ///
    /// Every programmed LUT takes one modelled write (write failures)
    /// plus retention flips and permanently stuck rows; every CMOS gate
    /// may come out stuck at a constant (expressed as a constant LUT
    /// over the unchanged fan-in, so the overlay's wiring-preserving
    /// contract holds). Redacted LUTs are left alone — there is nothing
    /// programmed to corrupt.
    ///
    /// Returns the injected faults in arena order.
    pub fn corrupt(&mut self, hybrid: &mut HybridOverlay) -> Vec<InjectedFault> {
        let base = std::sync::Arc::clone(hybrid.base());
        let mut faults = Vec::new();
        for (id, _) in base.iter() {
            // Read each node through the overlay, not the base: a
            // flow-produced hybrid carries its programmed LUTs as
            // overlay edits over a pure-CMOS base, and those are
            // exactly the cells a fault model must corrupt.
            let node = hybrid.node(id).clone();
            match node {
                Node::Lut {
                    config: Some(intended),
                    ..
                } => {
                    self.corrupt_lut(hybrid, id, intended, &mut faults, base.node_name(id));
                }
                Node::Gate { fanin, .. } if fanin.len() <= MAX_LUT_INPUTS => {
                    self.maybe_stick_gate(hybrid, id, fanin.len(), &mut faults, base.node_name(id));
                }
                _ => {}
            }
        }
        faults
    }

    /// One modelled programming attempt followed by storage decay.
    fn corrupt_lut(
        &mut self,
        hybrid: &mut HybridOverlay,
        id: NodeId,
        intended: TruthTable,
        faults: &mut Vec<InjectedFault>,
        name: &str,
    ) {
        let rows = intended.rows();
        let written = self.write_raw(id, intended, Some((faults, name)));
        let retention = self.row_mask(id, SALT_RETENTION, rows, self.model.retention_flip_p);
        push_rows(faults, id, name, retention, |row| {
            FaultKind::RetentionFlip { row }
        });
        let (stuck0, stuck1) = self.stuck_masks(id, rows);
        push_rows(faults, id, name, stuck0, |row| FaultKind::StuckRow {
            row,
            value: false,
        });
        push_rows(faults, id, name, stuck1, |row| FaultKind::StuckRow {
            row,
            value: true,
        });
        let bits = ((written.bits() ^ retention) & !stuck0) | stuck1;
        let stored = TruthTable::new(intended.inputs(), bits);
        if stored != intended {
            hybrid.set_lut_config(id, stored);
        }
    }

    /// Possibly welds a CMOS gate's output to a constant.
    fn maybe_stick_gate(
        &mut self,
        hybrid: &mut HybridOverlay,
        id: NodeId,
        fanin: usize,
        faults: &mut Vec<InjectedFault>,
        name: &str,
    ) {
        if self.model.cmos_stuck_p == 0.0 {
            return;
        }
        let mut rng = self.stream(id, SALT_CMOS);
        if !rng.gen_bool(self.model.cmos_stuck_p) {
            return;
        }
        let value = rng.gen_bool(0.5);
        if hybrid.replace_gate_with_lut(id).is_err() {
            return; // wider than a LUT can express; leave the gate alone
        }
        let bits = if value { u64::MAX } else { 0 };
        hybrid.set_lut_config(id, TruthTable::new(fanin, bits));
        faults.push(InjectedFault {
            node: id,
            name: name.to_owned(),
            kind: FaultKind::CmosStuck { value },
        });
    }

    /// The modelled write: per-attempt stochastic flips plus the
    /// permanently stuck cells. `record` logs the flips as faults (used
    /// by [`corrupt`](FaultInjector::corrupt); channel writes from the
    /// repair loop are not themselves "injected faults").
    fn write_raw(
        &mut self,
        id: NodeId,
        intended: TruthTable,
        record: Option<(&mut Vec<InjectedFault>, &str)>,
    ) -> TruthTable {
        let rows = intended.rows();
        let attempt = self.writes.entry(id).or_insert(0);
        *attempt += 1;
        let salt = SALT_WRITE.wrapping_add(*attempt);
        let flips = self.row_mask(id, salt, rows, self.model.write_failure_p);
        if let Some((faults, name)) = record {
            push_rows(faults, id, name, flips, |row| FaultKind::WriteFailure {
                row,
            });
        }
        let (stuck0, stuck1) = self.stuck_masks(id, rows);
        TruthTable::new(
            intended.inputs(),
            ((intended.bits() ^ flips) & !stuck0) | stuck1,
        )
    }

    /// The permanently stuck rows of `id` — a pure function of
    /// `(seed, node)`, so they survive any number of writes.
    fn stuck_masks(&self, id: NodeId, rows: usize) -> (u64, u64) {
        let stuck0 = self.row_mask(id, SALT_STUCK0, rows, self.model.stuck_at_zero_p);
        let stuck1 = self.row_mask(id, SALT_STUCK1, rows, self.model.stuck_at_one_p) & !stuck0;
        (stuck0, stuck1)
    }

    /// Samples one bit per row from the node's `salt` stream.
    fn row_mask(&self, id: NodeId, salt: u64, rows: usize, p: f64) -> u64 {
        if p == 0.0 {
            return 0;
        }
        let mut rng = self.stream(id, salt);
        let mut mask = 0u64;
        for row in 0..rows {
            if rng.gen_bool(p) {
                mask |= 1 << row;
            }
        }
        mask
    }

    /// The per-(node, salt) random stream: FNV-1a over seed ‖ node ‖
    /// salt, the same mixing scheme as the campaign's `circuit_seed`.
    fn stream(&self, id: NodeId, salt: u64) -> StdRng {
        let mut h = 0xcbf29ce484222325u64;
        let bytes = self
            .seed
            .to_le_bytes()
            .into_iter()
            .chain((id.index() as u64).to_le_bytes())
            .chain(salt.to_le_bytes());
        for b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        StdRng::seed_from_u64(h)
    }
}

impl ProgrammingChannel for FaultInjector {
    fn write(&mut self, id: NodeId, intended: TruthTable) -> TruthTable {
        self.write_raw(id, intended, None)
    }
}

fn push_rows(
    faults: &mut Vec<InjectedFault>,
    id: NodeId,
    name: &str,
    mask: u64,
    kind: impl Fn(usize) -> FaultKind,
) {
    for row in 0..64 {
        if (mask >> row) & 1 == 1 {
            faults.push(InjectedFault {
                node: id,
                name: name.to_owned(),
                kind: kind(row),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use sttlock_netlist::{GateKind, Netlist, NetlistBuilder};

    /// A small programmed hybrid: two LUTs, two plain gates, a register.
    fn hybrid() -> Arc<Netlist> {
        let mut b = NetlistBuilder::new("h");
        b.input("a");
        b.input("c");
        b.gate("g1", GateKind::Nand, &["a", "c"]);
        b.gate("g2", GateKind::Xor, &["g1", "c"]);
        b.gate("g3", GateKind::Or, &["g2", "a"]);
        b.dff("q", "g3");
        b.gate("g4", GateKind::And, &["q", "c"]);
        b.output("g4");
        let mut n = b.finish().unwrap();
        for name in ["g1", "g3"] {
            let id = n.find(name).unwrap();
            n.replace_gate_with_lut(id).unwrap();
        }
        Arc::new(n)
    }

    #[test]
    fn noop_model_injects_nothing_and_writes_perfectly() {
        let base = hybrid();
        let mut overlay = HybridOverlay::new(Arc::clone(&base));
        let mut inj = FaultInjector::new(FaultModel::default(), 7);
        let faults = inj.corrupt(&mut overlay);
        assert!(faults.is_empty());
        assert_eq!(overlay.edit_count(), 0);
        assert_eq!(overlay.materialize(), *base);
        let g1 = base.find("g1").unwrap();
        let t = base.lut_config(g1).unwrap();
        assert_eq!(inj.write(g1, t), t);
    }

    #[test]
    fn luts_held_as_overlay_edits_are_corrupted_too() {
        // The flow never mutates the base: its hybrids are a pure-CMOS
        // base plus gate→LUT overlay edits. Injection must see those
        // LUTs through the overlay, not look for them in the base.
        let mut b = NetlistBuilder::new("cmos");
        b.input("a");
        b.input("c");
        b.gate("g1", GateKind::Nand, &["a", "c"]);
        b.gate("g2", GateKind::Xor, &["g1", "c"]);
        b.output("g2");
        let base = Arc::new(b.finish().unwrap());
        let g1 = base.find("g1").unwrap();
        let mut overlay = HybridOverlay::new(Arc::clone(&base));
        let intended = overlay.replace_gate_with_lut(g1).unwrap();

        let mut inj = FaultInjector::new(FaultModel::write_failures(1.0), 5);
        let faults = inj.corrupt(&mut overlay);
        assert!(
            faults
                .iter()
                .any(|f| f.node == g1 && matches!(f.kind, FaultKind::WriteFailure { .. })),
            "overlay-held LUT must take write failures"
        );
        assert_eq!(
            overlay.lut_config(g1).unwrap().bits(),
            intended.complement().bits()
        );
    }

    #[test]
    fn injection_is_deterministic_in_the_seed() {
        let base = hybrid();
        let model = FaultModel {
            write_failure_p: 0.3,
            retention_flip_p: 0.2,
            stuck_at_zero_p: 0.1,
            stuck_at_one_p: 0.1,
            cmos_stuck_p: 0.2,
        };
        let run = |seed| {
            let mut overlay = HybridOverlay::new(Arc::clone(&base));
            let faults = FaultInjector::new(model, seed).corrupt(&mut overlay);
            (faults, overlay.materialize())
        };
        assert_eq!(run(11), run(11));
        // Different seeds almost surely differ at these probabilities.
        assert_ne!(run(11), run(12));
    }

    #[test]
    fn certain_write_failure_flips_every_row() {
        let base = hybrid();
        let g1 = base.find("g1").unwrap();
        let intended = base.lut_config(g1).unwrap();
        let mut overlay = HybridOverlay::new(Arc::clone(&base));
        let mut inj = FaultInjector::new(FaultModel::write_failures(1.0), 3);
        let faults = inj.corrupt(&mut overlay);
        assert_eq!(
            overlay.lut_config(g1).unwrap().bits(),
            intended.complement().bits(),
            "p=1 write failure complements the stored table"
        );
        assert!(faults
            .iter()
            .any(|f| f.node == g1 && matches!(f.kind, FaultKind::WriteFailure { .. })));
    }

    #[test]
    fn stuck_rows_persist_across_reprogramming() {
        let base = hybrid();
        let g1 = base.find("g1").unwrap();
        let intended = base.lut_config(g1).unwrap();
        let model = FaultModel {
            stuck_at_one_p: 0.5,
            ..FaultModel::default()
        };
        let mut welded_somewhere = false;
        for seed in 0..16 {
            let mut inj = FaultInjector::new(model, seed);
            let first = inj.write(g1, intended);
            let second = inj.write(g1, intended);
            assert_eq!(first, second, "stuck cells are stable across writes");
            welded_somewhere |= first.bits() & !intended.bits() != 0;
        }
        assert!(welded_somewhere, "some seed welds a 0-row to 1 at p=0.5");
    }

    #[test]
    fn write_retries_reroll_the_failure_dice() {
        let base = hybrid();
        let g1 = base.find("g1").unwrap();
        let intended = base.lut_config(g1).unwrap();
        let mut inj = FaultInjector::new(FaultModel::write_failures(0.5), 9);
        // With per-attempt streams, some attempt lands clean.
        let clean = (0..64).any(|_| inj.write(g1, intended) == intended);
        assert!(clean, "independent retries must eventually succeed");
    }

    #[test]
    fn cmos_stuck_becomes_a_constant_lut_over_the_same_wiring() {
        let base = hybrid();
        let model = FaultModel {
            cmos_stuck_p: 1.0,
            ..FaultModel::default()
        };
        let mut overlay = HybridOverlay::new(Arc::clone(&base));
        let faults = FaultInjector::new(model, 2).corrupt(&mut overlay);
        let g2 = base.find("g2").unwrap();
        let fault = faults
            .iter()
            .find(|f| f.node == g2)
            .expect("every gate sticks at p=1");
        let FaultKind::CmosStuck { value } = fault.kind else {
            panic!("gate fault must be a CMOS stuck-at");
        };
        // Same fan-in, constant function.
        assert_eq!(
            overlay.node(g2).fanin(),
            base.node(g2).fanin(),
            "wiring preserved"
        );
        let table = overlay.lut_config(g2).unwrap();
        assert!(table.is_constant());
        assert_eq!(table.eval(0), value);
    }

    #[test]
    fn probabilities_are_clamped_not_panicking() {
        let inj = FaultInjector::new(FaultModel::write_failures(7.5), 1);
        assert_eq!(inj.model().write_failure_p, 1.0);
        let inj = FaultInjector::new(FaultModel::write_failures(-1.0), 1);
        assert_eq!(inj.model().write_failure_p, 0.0);
        assert!(inj.model().is_noop());
    }
}
