//! Deterministic, seedable fault models for hybrid STT-CMOS netlists.
//!
//! The paper's flow programs an STT-LUT bitstream into the fabricated
//! part and assumes the write sticks. Real STT-MRAM does not cooperate:
//! writes fail stochastically, stored rows flip over retention time, and
//! individual cells weld themselves to 0 or 1. This crate provides the
//! device-level half of the robustness story:
//!
//! * [`FaultModel`] — per-row probabilities for write failures,
//!   retention flips and stuck-at-0/1 rows of programmed LUTs, plus a
//!   stuck-at probability for plain CMOS gates.
//! * [`FaultInjector`] — applies a model to a programmed hybrid through
//!   a [`HybridOverlay`], so injection never clones the base netlist,
//!   and doubles as the [`ProgrammingChannel`] the repair loop writes
//!   through (stuck cells persist across re-programming; every write
//!   re-rolls the write-failure dice).
//! * [`PerfectChannel`] — the ideal channel, for baselines and tests.
//!
//! Everything is deterministic given `(model, seed)`: each node draws
//! from its own seeded stream, so injection does not depend on iteration
//! order and a campaign cell reproduces bit-for-bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod inject;
mod model;

pub use inject::{FaultInjector, PerfectChannel, ProgrammingChannel};
pub use model::{FaultKind, FaultModel, InjectedFault};
