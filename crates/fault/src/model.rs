//! Fault-model parameters and the record of what was injected.

use std::fmt;

use sttlock_netlist::NodeId;

/// Per-device fault probabilities.
///
/// All LUT probabilities are *per truth-table row* (one STT cell per
/// row); `cmos_stuck_p` is per combinational gate. The default model is
/// fault-free, which keeps the campaign's no-fault path byte-identical
/// to a run without any fault axis at all.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultModel {
    /// Probability that a written row lands flipped (programming-time
    /// stochastic write failure). Re-rolled on every write, so a
    /// re-program retry can succeed where the first attempt failed.
    pub write_failure_p: f64,
    /// Probability that a stored row has flipped by verify time
    /// (retention loss). Applied once, at injection.
    pub retention_flip_p: f64,
    /// Probability that a row's cell is welded to 0. Persists across
    /// re-programming — the repair loop cannot fix it.
    pub stuck_at_zero_p: f64,
    /// Probability that a row's cell is welded to 1. Also permanent.
    pub stuck_at_one_p: f64,
    /// Probability that a CMOS gate's output is stuck at a constant
    /// (0 or 1 with equal probability).
    pub cmos_stuck_p: f64,
}

impl FaultModel {
    /// A model that injects only write failures — the fault-sweep axis
    /// of the EXPERIMENTS.md recovery table.
    pub fn write_failures(p: f64) -> Self {
        FaultModel {
            write_failure_p: p,
            ..FaultModel::default()
        }
    }

    /// Whether the model can never inject anything.
    pub fn is_noop(&self) -> bool {
        self.write_failure_p == 0.0
            && self.retention_flip_p == 0.0
            && self.stuck_at_zero_p == 0.0
            && self.stuck_at_one_p == 0.0
            && self.cmos_stuck_p == 0.0
    }

    /// Probability that any given truth-table row is faulted, combining
    /// the four independent per-row mechanisms. This is the `p` fed to
    /// `security_under_faults`: the chance a secret row leaks through
    /// the fault channel.
    pub fn row_fault_p(&self) -> f64 {
        let survive = (1.0 - self.write_failure_p.clamp(0.0, 1.0))
            * (1.0 - self.retention_flip_p.clamp(0.0, 1.0))
            * (1.0 - self.stuck_at_zero_p.clamp(0.0, 1.0))
            * (1.0 - self.stuck_at_one_p.clamp(0.0, 1.0));
        1.0 - survive
    }

    /// Stable descriptor for records and cache keys; `none` when the
    /// model is a no-op.
    pub fn descriptor(&self) -> String {
        if self.is_noop() {
            return "none".to_owned();
        }
        let mut parts = Vec::new();
        for (tag, p) in [
            ("wf", self.write_failure_p),
            ("ret", self.retention_flip_p),
            ("sa0", self.stuck_at_zero_p),
            ("sa1", self.stuck_at_one_p),
            ("cmos", self.cmos_stuck_p),
        ] {
            if p != 0.0 {
                parts.push(format!("{tag}={p}"));
            }
        }
        parts.join(",")
    }
}

impl fmt::Display for FaultModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.descriptor())
    }
}

/// One concrete injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Truth-table row `row` flipped during programming.
    WriteFailure {
        /// The affected truth-table row.
        row: usize,
    },
    /// Truth-table row `row` flipped in storage.
    RetentionFlip {
        /// The affected truth-table row.
        row: usize,
    },
    /// Truth-table row `row` is permanently welded to `value`.
    StuckRow {
        /// The affected truth-table row.
        row: usize,
        /// The welded value.
        value: bool,
    },
    /// The gate's output is stuck at `value`.
    CmosStuck {
        /// The constant the output is stuck at.
        value: bool,
    },
}

impl FaultKind {
    /// Whether re-programming can ever clear this fault.
    pub fn is_repairable(&self) -> bool {
        matches!(
            self,
            FaultKind::WriteFailure { .. } | FaultKind::RetentionFlip { .. }
        )
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::WriteFailure { row } => write!(f, "write-failure@row{row}"),
            FaultKind::RetentionFlip { row } => write!(f, "retention-flip@row{row}"),
            FaultKind::StuckRow { row, value } => {
                write!(f, "stuck-at-{}@row{row}", u8::from(*value))
            }
            FaultKind::CmosStuck { value } => write!(f, "cmos-stuck-at-{}", u8::from(*value)),
        }
    }
}

/// A fault pinned to a node of the hybrid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// The afflicted node.
    pub node: NodeId,
    /// The node's name (for reports that outlive the netlist).
    pub name: String,
    /// What happened to it.
    pub kind: FaultKind,
}

impl fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.name, self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_is_noop_with_stable_descriptor() {
        let m = FaultModel::default();
        assert!(m.is_noop());
        assert_eq!(m.descriptor(), "none");
    }

    #[test]
    fn descriptor_lists_only_active_probabilities() {
        let m = FaultModel {
            write_failure_p: 0.01,
            stuck_at_one_p: 0.001,
            ..FaultModel::default()
        };
        assert!(!m.is_noop());
        assert_eq!(m.descriptor(), "wf=0.01,sa1=0.001");
        assert_eq!(FaultModel::write_failures(0.5).descriptor(), "wf=0.5");
    }

    #[test]
    fn row_fault_p_combines_the_independent_mechanisms() {
        assert_eq!(FaultModel::default().row_fault_p(), 0.0);
        assert_eq!(FaultModel::write_failures(0.25).row_fault_p(), 0.25);
        let both = FaultModel {
            write_failure_p: 0.5,
            retention_flip_p: 0.5,
            ..FaultModel::default()
        };
        assert!((both.row_fault_p() - 0.75).abs() < 1e-12);
        assert_eq!(FaultModel::write_failures(9.0).row_fault_p(), 1.0);
    }

    #[test]
    fn repairability_follows_the_device_physics() {
        assert!(FaultKind::WriteFailure { row: 0 }.is_repairable());
        assert!(FaultKind::RetentionFlip { row: 1 }.is_repairable());
        assert!(!FaultKind::StuckRow {
            row: 2,
            value: true
        }
        .is_repairable());
        assert!(!FaultKind::CmosStuck { value: false }.is_repairable());
    }
}
