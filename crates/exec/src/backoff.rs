//! Capped exponential backoff schedules.
//!
//! The retry loops in this stack (the cluster coordinator re-dispatching
//! cells after a worker dies, a worker re-registering after its
//! coordinator restarts) all want the same delay shape: start small,
//! double per consecutive failure, clamp at a ceiling so a long outage
//! never grows the wait unboundedly. [`Backoff`] is that schedule as a
//! value — deterministic (no jitter, so tests can assert the exact
//! delays) and side-effect free; callers pair it with a cancel-aware
//! [`crate::Budget::sleep`] so a shutdown interrupts the wait.

use std::time::Duration;

/// A capped exponential backoff schedule.
///
/// `delay(0)` is the base; each subsequent attempt doubles it until the
/// cap. The schedule itself is stateless — callers track the attempt
/// count, which lets a success reset the count without touching this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
}

impl Backoff {
    /// A schedule starting at `base` and clamped at `cap`.
    pub fn new(base: Duration, cap: Duration) -> Backoff {
        Backoff {
            base,
            cap: cap.max(base),
        }
    }

    /// The delay before retry number `attempt` (0-based): `base << attempt`,
    /// saturating, clamped at the cap.
    pub fn delay(&self, attempt: u32) -> Duration {
        let doubled = self
            .base
            .checked_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
            .unwrap_or(self.cap);
        doubled.min(self.cap)
    }
}

impl Default for Backoff {
    /// 50 ms doubling to a 2 s ceiling — snappy enough for in-process
    /// tests, bounded enough for real outages.
    fn default() -> Backoff {
        Backoff::new(Duration::from_millis(50), Duration::from_secs(2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_schedule_doubles_then_clamps() {
        let b = Backoff::new(Duration::from_millis(100), Duration::from_secs(1));
        assert_eq!(b.delay(0), Duration::from_millis(100));
        assert_eq!(b.delay(1), Duration::from_millis(200));
        assert_eq!(b.delay(2), Duration::from_millis(400));
        assert_eq!(b.delay(3), Duration::from_millis(800));
        assert_eq!(b.delay(4), Duration::from_secs(1), "clamped");
        assert_eq!(b.delay(40), Duration::from_secs(1), "still clamped");
        assert_eq!(b.delay(u32::MAX), Duration::from_secs(1), "no overflow");
    }

    #[test]
    fn a_cap_below_the_base_degrades_to_a_constant_schedule() {
        let b = Backoff::new(Duration::from_secs(1), Duration::from_millis(1));
        assert_eq!(b.delay(0), Duration::from_secs(1));
        assert_eq!(b.delay(9), Duration::from_secs(1));
    }
}
