//! Typed 128-bit content-hash cache keys.
//!
//! The campaign result cache and serve's response cache share one
//! keying scheme: two independent FNV-1a streams (distinct offset
//! bases, one stream rotated per chunk) over a version salt plus the
//! caller's content, rendered as a 32-hex-digit file name. This module
//! owns the scheme; [`KeyBuilder`] is the typed face that replaces
//! hand-rolled `format!("…|v1|…")` descriptor strings — each field is
//! hashed as `name=value` with an explicit `\x1f` separator, so no two
//! field layouts can collide by string concatenation.

use std::fmt;

/// A computed 128-bit cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey(u64, u64);

impl CacheKey {
    /// Hex file-name form of the key (32 digits).
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.0, self.1)
    }
}

/// Hashes one content chunk into an FNV-1a stream.
fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Incremental builder of a [`CacheKey`].
///
/// The raw [`KeyBuilder::chunk`] face feeds bytes verbatim (the
/// campaign's `cell_key` uses it to keep every pre-existing key byte
/// stream — and thus every cache directory — valid). The typed
/// [`KeyBuilder::field`] face is for new key layouts: it frames each
/// value with its name and a separator so fields cannot bleed into one
/// another.
#[derive(Debug, Clone, Copy)]
pub struct KeyBuilder {
    a: u64,
    b: u64,
}

impl KeyBuilder {
    /// Starts a key stream salted with a layout version: bump the
    /// version and every old entry becomes invisible rather than
    /// misparsed.
    pub fn new(version: u32) -> KeyBuilder {
        KeyBuilder {
            a: 0xcbf29ce484222325,
            b: 0x6c62272e07bb0142, // distinct offset basis
        }
        .chunk(format!("v{version}\u{1f}").as_bytes())
    }

    /// Feeds raw bytes into both streams.
    pub fn chunk(mut self, bytes: &[u8]) -> KeyBuilder {
        self.a = fnv1a(self.a, bytes);
        self.b = fnv1a(self.b, bytes).rotate_left(17);
        self
    }

    /// Feeds a named, separator-framed field.
    pub fn field(self, name: &str, value: &dyn fmt::Display) -> KeyBuilder {
        self.chunk(format!("{name}={value}\u{1f}").as_bytes())
    }

    /// Feeds a large text payload (e.g. a whole `.bench` file).
    pub fn text(self, text: &str) -> KeyBuilder {
        self.chunk(text.as_bytes())
    }

    /// Finalises the key.
    pub fn finish(self) -> CacheKey {
        CacheKey(self.a, self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fields_are_framed_against_concatenation() {
        let k1 = KeyBuilder::new(1)
            .field("alg", &"ab")
            .field("seed", &7)
            .finish();
        let k2 = KeyBuilder::new(1)
            .field("alg", &"a")
            .field("seed", &"b7")
            .finish();
        assert_ne!(k1, k2);
        let k3 = KeyBuilder::new(1)
            .field("alg", &"ab")
            .field("seed", &7)
            .finish();
        assert_eq!(k1, k3);
    }

    #[test]
    fn version_salts_the_stream() {
        let k1 = KeyBuilder::new(1).text("same").finish();
        let k2 = KeyBuilder::new(2).text("same").finish();
        assert_ne!(k1, k2);
    }

    #[test]
    fn hex_is_32_digits_and_stable() {
        let k = KeyBuilder::new(1).chunk(b"x").finish();
        assert_eq!(k.hex().len(), 32);
        assert_eq!(k.hex(), KeyBuilder::new(1).chunk(b"x").finish().hex());
    }
}
