//! Hierarchical budgets and cooperative cancellation.
//!
//! A [`Budget`] is a node in a tree. Each node carries:
//!
//! * an optional wall-clock **deadline** — pre-minimised against the
//!   parent's at derivation time, so a child can only ever tighten it;
//! * an optional **step budget** — an abstract work limit (the attack
//!   bills simulated test clocks, the STA layer bills candidate
//!   evaluations). [`Budget::charge`] bills the node *and every
//!   ancestor*, which makes sibling budgets disjoint draws on one
//!   shared parent pool;
//! * a **cancel flag** — checking walks the ancestor chain, so
//!   cancelling any node cancels its whole subtree without bookkeeping.
//!
//! Checks are cooperative and cheap (a few relaxed atomic loads plus
//! one `Instant::now()` when a deadline exists); deep loops call
//! [`Budget::exhausted`] at natural step boundaries exactly like they
//! polled their private flags before. The first failed check per node
//! increments one of the `exec.budget.{cancelled,deadline,steps}`
//! counters so cancellation is visible in `/metrics`.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a [`Budget`] refused further work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetError {
    /// This budget, or an ancestor, was explicitly cancelled.
    Cancelled,
    /// The (inherited-minimum) wall-clock deadline has passed.
    DeadlineExpired,
    /// This budget's, or an ancestor's, step allowance is spent.
    StepsExhausted,
}

impl fmt::Display for BudgetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetError::Cancelled => f.write_str("cancelled"),
            BudgetError::DeadlineExpired => f.write_str("deadline expired"),
            BudgetError::StepsExhausted => f.write_str("step budget exhausted"),
        }
    }
}

impl std::error::Error for BudgetError {}

#[derive(Debug)]
struct Inner {
    parent: Option<Arc<Inner>>,
    cancelled: AtomicBool,
    /// Effective deadline: already the minimum over this node and all
    /// ancestors (maintained at derivation time).
    deadline: Option<Instant>,
    /// `u64::MAX` means unbounded.
    max_steps: u64,
    steps: AtomicU64,
    /// One-shot latch so each node reports its trip reason only once.
    tripped: AtomicBool,
}

impl Inner {
    fn note_trip(&self, err: BudgetError) {
        if !self.tripped.swap(true, Ordering::Relaxed) {
            sttlock_obs::counter(
                match err {
                    BudgetError::Cancelled => "exec.budget.cancelled",
                    BudgetError::DeadlineExpired => "exec.budget.deadline",
                    BudgetError::StepsExhausted => "exec.budget.steps",
                },
                1,
            );
        }
    }
}

/// A deadline + step budget + cancellation cell. Cloning shares the
/// same node; [`Budget::child`]/[`Budget::child_with`] derive a new
/// subordinate node.
#[derive(Debug, Clone)]
pub struct Budget {
    inner: Arc<Inner>,
}

impl Budget {
    fn root(deadline: Option<Instant>, max_steps: Option<u64>) -> Budget {
        Budget {
            inner: Arc::new(Inner {
                parent: None,
                cancelled: AtomicBool::new(false),
                deadline,
                max_steps: max_steps.unwrap_or(u64::MAX),
                steps: AtomicU64::new(0),
                tripped: AtomicBool::new(false),
            }),
        }
    }

    /// A budget with no deadline and no step limit — cancellable only.
    pub fn unbounded() -> Budget {
        Budget::root(None, None)
    }

    /// A root budget from explicit limits. `None` means unbounded on
    /// that axis.
    pub fn new(deadline: Option<Instant>, max_steps: Option<u64>) -> Budget {
        Budget::root(deadline, max_steps)
    }

    /// A root budget that expires at `deadline`.
    pub fn deadline_at(deadline: Instant) -> Budget {
        Budget::root(Some(deadline), None)
    }

    /// A root budget that expires `timeout` from now.
    pub fn with_timeout(timeout: Duration) -> Budget {
        Budget::root(Some(Instant::now() + timeout), None)
    }

    /// Derives a child inheriting this budget's deadline, with its own
    /// (unbounded) step counter. Charges on the child still bill this
    /// node; cancelling this node cancels the child.
    pub fn child(&self) -> Budget {
        self.child_with(None, None)
    }

    /// Derives a child with additional limits of its own. The child's
    /// effective deadline is `min(parent, own)`; its step cap applies
    /// to work charged through *it* (and its descendants) only, while
    /// every charge also bills this node's pool.
    pub fn child_with(&self, deadline: Option<Instant>, max_steps: Option<u64>) -> Budget {
        let deadline = match (self.inner.deadline, deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        Budget {
            inner: Arc::new(Inner {
                parent: Some(Arc::clone(&self.inner)),
                cancelled: AtomicBool::new(false),
                deadline,
                max_steps: max_steps.unwrap_or(u64::MAX),
                steps: AtomicU64::new(0),
                tripped: AtomicBool::new(false),
            }),
        }
    }

    /// Bills `n` steps of work to this node and every ancestor, and to
    /// the global `exec.steps` counter (how a metrics scrape sees deep
    /// work advance — or stop).
    pub fn charge(&self, n: u64) {
        let mut cur: &Inner = &self.inner;
        loop {
            cur.steps.fetch_add(n, Ordering::Relaxed);
            match &cur.parent {
                Some(p) => cur = p,
                None => break,
            }
        }
        sttlock_obs::counter("exec.steps", n);
    }

    /// Steps billed through this node so far (including descendants).
    pub fn steps_spent(&self) -> u64 {
        self.inner.steps.load(Ordering::Relaxed)
    }

    /// The effective deadline (already minimised over ancestors).
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }

    /// Time left until the effective deadline; `None` when unbounded.
    pub fn remaining(&self) -> Option<Duration> {
        self.inner
            .deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Cancels this budget and, transitively, every descendant.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// True when this node or any ancestor has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        let mut cur: &Inner = &self.inner;
        loop {
            if cur.cancelled.load(Ordering::Relaxed) {
                return true;
            }
            match &cur.parent {
                Some(p) => cur = p,
                None => return false,
            }
        }
    }

    /// Full cooperative check: cancellation (whole chain), step caps
    /// (each level against its own counter), then the deadline.
    pub fn check(&self) -> Result<(), BudgetError> {
        let mut cur: &Inner = &self.inner;
        loop {
            if cur.cancelled.load(Ordering::Relaxed) {
                self.inner.note_trip(BudgetError::Cancelled);
                return Err(BudgetError::Cancelled);
            }
            if cur.steps.load(Ordering::Relaxed) >= cur.max_steps {
                self.inner.note_trip(BudgetError::StepsExhausted);
                return Err(BudgetError::StepsExhausted);
            }
            match &cur.parent {
                Some(p) => cur = p,
                None => break,
            }
        }
        if let Some(d) = self.inner.deadline {
            if Instant::now() >= d {
                self.inner.note_trip(BudgetError::DeadlineExpired);
                return Err(BudgetError::DeadlineExpired);
            }
        }
        Ok(())
    }

    /// `check().is_err()` — the polling form deep loops use.
    pub fn exhausted(&self) -> bool {
        self.check().is_err()
    }

    /// A cancel-only handle onto this budget (for owners that stop
    /// work they do not otherwise bound — e.g. a timeout watchdog).
    pub fn token(&self) -> CancelToken {
        CancelToken {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Cancel-aware sleep: naps in short slices, waking early if the
    /// budget trips. Returns `true` when the full duration elapsed,
    /// `false` when interrupted. This is what makes repair backoff
    /// interruptible.
    pub fn sleep(&self, dur: Duration) -> bool {
        const SLICE: Duration = Duration::from_millis(10);
        let wake = Instant::now() + dur;
        loop {
            if self.exhausted() {
                return false;
            }
            let now = Instant::now();
            if now >= wake {
                return true;
            }
            std::thread::sleep((wake - now).min(SLICE));
        }
    }
}

/// A cloneable cancel-only handle over a [`Budget`] node. Everything a
/// long-lived owner needs to stop a subtree — without being able to
/// charge or re-bound it.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A standalone token with no deadline or step semantics (the
    /// serve stop flag, the stdin watcher).
    pub fn new() -> CancelToken {
        Budget::unbounded().token()
    }

    /// Cancels the underlying budget node and all its descendants.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// True when the node or any ancestor has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        let mut cur: &Inner = &self.inner;
        loop {
            if cur.cancelled.load(Ordering::Relaxed) {
                return true;
            }
            match &cur.parent {
                Some(p) => cur = p,
                None => return false,
            }
        }
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_trips_on_its_own() {
        let b = Budget::unbounded();
        b.charge(1 << 40);
        assert_eq!(b.check(), Ok(()));
        assert!(!b.exhausted());
    }

    #[test]
    fn step_budget_trips_at_exactly_the_cap() {
        let b = Budget::new(None, Some(100));
        b.charge(99);
        assert_eq!(b.check(), Ok(()));
        b.charge(1);
        assert_eq!(b.check(), Err(BudgetError::StepsExhausted));
    }

    #[test]
    fn deadline_trips_and_remaining_saturates() {
        let b = Budget::deadline_at(Instant::now() - Duration::from_millis(1));
        assert_eq!(b.check(), Err(BudgetError::DeadlineExpired));
        assert_eq!(b.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn child_deadline_is_min_of_parent_and_own() {
        let far = Instant::now() + Duration::from_secs(3600);
        let near = Instant::now() + Duration::from_secs(60);
        let parent = Budget::deadline_at(near);
        assert_eq!(parent.child_with(Some(far), None).deadline(), Some(near));
        let parent = Budget::deadline_at(far);
        assert_eq!(parent.child_with(Some(near), None).deadline(), Some(near));
        assert_eq!(parent.child().deadline(), Some(far));
        assert_eq!(Budget::unbounded().child().deadline(), None);
    }

    #[test]
    fn cancelling_a_parent_cancels_descendants_not_vice_versa() {
        let root = Budget::unbounded();
        let mid = root.child();
        let leaf = mid.child();
        mid.cancel();
        assert!(!root.is_cancelled());
        assert!(mid.is_cancelled());
        assert!(leaf.is_cancelled());
        assert_eq!(leaf.check(), Err(BudgetError::Cancelled));
        assert_eq!(root.check(), Ok(()));
    }

    #[test]
    fn sibling_charges_pool_on_the_parent() {
        let parent = Budget::new(None, Some(100));
        let a = parent.child();
        let b = parent.child();
        a.charge(60);
        assert_eq!(b.check(), Ok(()), "sibling b has spent nothing itself");
        b.charge(60);
        // Each sibling is fine by its own (unbounded) cap, but the
        // shared parent pool is now overdrawn — both observe it.
        assert_eq!(parent.steps_spent(), 120);
        assert_eq!(a.check(), Err(BudgetError::StepsExhausted));
        assert_eq!(b.check(), Err(BudgetError::StepsExhausted));
    }

    #[test]
    fn child_step_cap_binds_independently_of_a_rich_parent() {
        let parent = Budget::new(None, Some(1_000_000));
        let child = parent.child_with(None, Some(10));
        child.charge(10);
        assert_eq!(child.check(), Err(BudgetError::StepsExhausted));
        assert_eq!(parent.check(), Ok(()));
    }

    #[test]
    fn token_cancel_reaches_the_subtree() {
        let b = Budget::unbounded();
        let t = b.token();
        let leaf = b.child();
        assert!(!t.is_cancelled());
        t.cancel();
        assert!(b.is_cancelled());
        assert!(leaf.is_cancelled());
    }

    #[test]
    fn sleep_completes_when_unbothered_and_breaks_on_cancel() {
        let b = Budget::unbounded();
        assert!(b.sleep(Duration::from_millis(5)));

        let c = b.child();
        let t = c.token();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            t.cancel();
        });
        let t0 = Instant::now();
        assert!(!c.sleep(Duration::from_secs(30)));
        assert!(t0.elapsed() < Duration::from_secs(5));
        h.join().unwrap();
    }
}
