//! Unified execution runtime for the sttlock stack.
//!
//! Before this crate existed, four independent concurrency mechanisms
//! had grown side by side: the attack's private step/wall budget, the
//! campaign runner's `Arc<AtomicBool>` cancel flag, serve's
//! hand-threaded per-request deadline, and the repair loop's
//! uninterruptible backoff sleeps. None of them could see the others,
//! so a blown HTTP deadline returned a 504 while the abandoned
//! selection/attack/STA work kept burning cores.
//!
//! This crate is the single replacement:
//!
//! * [`Budget`] — a hierarchical deadline + step budget + cooperative
//!   cancellation cell. [`Budget::child`] derivation takes
//!   min-of-deadlines semantics, [`Budget::charge`] bills work up the
//!   whole ancestor chain (so sibling budgets draw from one shared
//!   parent pool), and cancelling any node cancels every descendant.
//!   [`CancelToken`] is the cancel-only handle for owners that stop
//!   work without bounding it.
//! * [`Pool`] — a bounded job pool with `catch_unwind` panic isolation
//!   and queue-wait accounting, plus [`scoped_map`], its borrow-friendly
//!   work-stealing sibling for fork/join parallelism over in-scope data.
//! * [`KeyBuilder`]/[`CacheKey`] — the typed 128-bit content-hash key
//!   scheme shared by the campaign result cache and serve's response
//!   cache.
//!
//! Everything is observable: budget trips surface as
//! `exec.budget.{cancelled,deadline,steps}` counters, charged steps as
//! `exec.steps`, and the pool reports `exec.pool.{jobs,panics}` and an
//! `exec.pool.queue_wait` histogram — which is how an operator (and the
//! serve smoke test) can see that deep work actually observed a cancel.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backoff;
mod budget;
mod key;
mod pool;

pub use backoff::Backoff;
pub use budget::{Budget, BudgetError, CancelToken};
pub use key::{CacheKey, KeyBuilder};
pub use pool::{scoped_map, Pool, PoolFull};
