//! Bounded job pool and scoped work-stealing map.
//!
//! [`Pool`] is the long-lived form: a fixed set of worker threads
//! behind a bounded queue, for owners that dispatch `'static` jobs over
//! time (the serve request pool). Admission is non-blocking —
//! [`Pool::try_execute`] reports [`PoolFull`] instead of queueing
//! unboundedly, which is what lets an accept loop answer a canned 429
//! without ever touching a worker. Jobs are `catch_unwind`-isolated, so
//! a panicking job takes out neither its worker nor the pool.
//!
//! [`scoped_map`] is the fork/join form: run one closure over `0..n`
//! item indices on a fixed number of scoped worker threads pulling from
//! a shared work-stealing counter. Because the threads are scoped, the
//! closure may borrow from the caller's stack — this is what the
//! campaign grid and `IncrementalSta::batch_eval` run on. Per-item
//! panics are captured and returned, not propagated mid-scope.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{self, TrySendError};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

/// The pool's queue is full; the job was **not** accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolFull;

impl std::fmt::Display for PoolFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("pool queue is full")
    }
}

impl std::error::Error for PoolFull {}

struct Job {
    run: Box<dyn FnOnce() + Send + 'static>,
    enqueued: Instant,
}

/// A bounded pool of named worker threads with panic isolation and
/// queue-wait accounting (`exec.pool.queue_wait` histogram,
/// `exec.pool.{jobs,panics}` counters).
///
/// Dropping (or [`Pool::shutdown`]ting) the pool closes the queue,
/// drains the jobs already admitted, and joins every worker — a
/// graceful drain by construction.
#[derive(Debug)]
pub struct Pool {
    tx: Option<mpsc::SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl Pool {
    /// Spawns `workers` threads (at least one) behind a queue holding
    /// at most `queue_depth` waiting jobs.
    pub fn new(workers: usize, queue_depth: usize) -> Pool {
        let (tx, rx) = mpsc::sync_channel::<Job>(queue_depth);
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..workers.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("exec-pool-{i}"))
                    .spawn(move || worker_loop(&rx))
                    .expect("spawning a pool worker thread")
            })
            .collect();
        Pool {
            tx: Some(tx),
            workers,
        }
    }

    /// Admits a job without blocking. `Err(PoolFull)` means the queue
    /// is at capacity (or the pool is shutting down) and the job was
    /// dropped — the caller owns the rejection path.
    pub fn try_execute(&self, job: impl FnOnce() + Send + 'static) -> Result<(), PoolFull> {
        let Some(tx) = &self.tx else {
            return Err(PoolFull);
        };
        tx.try_send(Job {
            run: Box::new(job),
            enqueued: Instant::now(),
        })
        .map_err(|e| {
            debug_assert!(matches!(e, TrySendError::Full(_)));
            PoolFull
        })
    }

    /// Closes the queue, drains already-admitted jobs, joins workers.
    pub fn shutdown(mut self) {
        self.drain();
    }

    fn drain(&mut self) {
        drop(self.tx.take());
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.drain();
    }
}

fn worker_loop(rx: &Mutex<mpsc::Receiver<Job>>) {
    loop {
        let job = {
            let guard = rx.lock().unwrap_or_else(PoisonError::into_inner);
            guard.recv()
        };
        let Ok(job) = job else {
            return; // queue closed and drained
        };
        let waited = job.enqueued.elapsed();
        sttlock_obs::observe_us(
            "exec.pool.queue_wait",
            u64::try_from(waited.as_micros()).unwrap_or(u64::MAX),
        );
        if catch_unwind(AssertUnwindSafe(job.run)).is_err() {
            sttlock_obs::counter("exec.pool.panics", 1);
        }
        sttlock_obs::counter("exec.pool.jobs", 1);
    }
}

/// Runs `f(i)` for every `i in 0..n` on up to `workers` scoped threads
/// pulling indices from a shared work-stealing counter, and returns the
/// results in index order.
///
/// Each item runs under `catch_unwind`: a panicking item yields
/// `Err(payload)` in its slot while its worker moves on to the next
/// index. Callers that cannot tolerate a lost item re-raise with
/// `std::panic::resume_unwind`; callers that isolate per-item failures
/// (the campaign grid) map `Err` to a structured record.
pub fn scoped_map<R, F>(
    workers: usize,
    n: usize,
    f: F,
) -> Vec<Result<R, Box<dyn std::any::Any + Send>>>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    type Slot<R> = Mutex<Option<Result<R, Box<dyn std::any::Any + Send>>>>;
    let workers = workers.max(1).min(n.max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Slot<R>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    return;
                }
                let r = catch_unwind(AssertUnwindSafe(|| f(i)));
                if r.is_err() {
                    sttlock_obs::counter("exec.pool.panics", 1);
                }
                *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .expect("every index below n is claimed exactly once")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::time::Duration;

    #[test]
    fn pool_runs_jobs_and_drains_on_shutdown() {
        let pool = Pool::new(3, 64);
        let hits = Arc::new(AtomicU64::new(0));
        for _ in 0..32 {
            let hits = Arc::clone(&hits);
            pool.try_execute(move || {
                hits.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        pool.shutdown(); // joins after draining
        assert_eq!(hits.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn full_queue_is_a_fast_rejection() {
        let pool = Pool::new(1, 1);
        let (release_tx, release_rx) = mpsc::channel::<()>();
        pool.try_execute(move || {
            let _ = release_rx.recv();
        })
        .unwrap();
        // Give the worker a moment to pick up the blocker, then fill
        // the single queue slot.
        std::thread::sleep(Duration::from_millis(50));
        pool.try_execute(|| {}).unwrap();
        assert_eq!(pool.try_execute(|| {}), Err(PoolFull));
        release_tx.send(()).unwrap();
        pool.shutdown();
    }

    #[test]
    fn a_panicking_job_does_not_kill_its_worker() {
        let pool = Pool::new(1, 8);
        pool.try_execute(|| panic!("boom")).unwrap();
        let (tx, rx) = mpsc::channel();
        pool.try_execute(move || tx.send(7).unwrap()).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)), Ok(7));
        pool.shutdown();
    }

    #[test]
    fn scoped_map_covers_every_index_in_order() {
        let out = scoped_map(4, 100, |i| i * i);
        assert_eq!(out.len(), 100);
        for (i, r) in out.into_iter().enumerate() {
            assert_eq!(*r.as_ref().unwrap(), i * i);
        }
    }

    #[test]
    fn scoped_map_borrows_from_the_caller() {
        let data = [1u64, 2, 3, 4, 5];
        let out = scoped_map(2, data.len(), |i| data[i] * 10);
        let sum: u64 = out.into_iter().map(|r| r.unwrap()).sum();
        assert_eq!(sum, 150);
    }

    #[test]
    fn scoped_map_isolates_per_item_panics() {
        let out = scoped_map(3, 10, |i| {
            if i == 4 {
                panic!("item 4 exploded");
            }
            i
        });
        for (i, r) in out.into_iter().enumerate() {
            if i == 4 {
                assert!(r.is_err());
            } else {
                assert_eq!(r.unwrap(), i);
            }
        }
    }

    #[test]
    fn scoped_map_handles_zero_items_and_more_workers_than_items() {
        assert!(scoped_map(8, 0, |i| i).is_empty());
        let out = scoped_map(8, 2, |i| i + 1);
        assert_eq!(
            out.into_iter().map(|r| r.unwrap()).collect::<Vec<_>>(),
            vec![1, 2]
        );
    }
}
