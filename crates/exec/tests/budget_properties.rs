//! Property tests of the hierarchical budget semantics:
//!
//! * a child's effective deadline is `min(parent, own)` all the way up
//!   a randomly shaped chain;
//! * cancelling any node cancels exactly its descendants — ancestors
//!   and cousins stay live;
//! * sibling step budgets are disjoint: each sibling spends only its
//!   own charges, while the parent pool accumulates the exact sum.

use std::time::{Duration, Instant};

use proptest::prelude::*;

use sttlock_exec::{Budget, BudgetError};

/// Builds a root-to-leaf chain from per-level deadline offsets (ms
/// from a common epoch; `None` = no own deadline at that level) and
/// returns the budgets root-first.
fn build_chain(epoch: Instant, offsets: &[Option<u64>]) -> Vec<Budget> {
    let mut chain: Vec<Budget> = Vec::with_capacity(offsets.len());
    for off in offsets {
        let own = off.map(|ms| epoch + Duration::from_millis(ms));
        let next = match chain.last() {
            Some(parent) => parent.child_with(own, None),
            None => Budget::new(own, None),
        };
        chain.push(next);
    }
    chain
}

proptest! {
    #[test]
    fn chain_deadline_is_the_running_minimum(
        raw_offsets in prop::collection::vec(0u64..1_000_000, 1..8),
    ) {
        // The vendored proptest has no Option strategy: values below
        // 10_000 encode "no own deadline at this level".
        let offsets: Vec<Option<u64>> =
            raw_offsets.iter().map(|&v| (v >= 10_000).then_some(v)).collect();
        // A far-future epoch so no deadline actually expires mid-test.
        let epoch = Instant::now() + Duration::from_secs(3600);
        let chain = build_chain(epoch, &offsets);
        let mut min_so_far: Option<u64> = None;
        for (budget, off) in chain.iter().zip(&offsets) {
            min_so_far = match (min_so_far, *off) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            let expected = min_so_far.map(|ms| epoch + Duration::from_millis(ms));
            prop_assert_eq!(budget.deadline(), expected);
        }
    }

    #[test]
    fn cancelling_a_node_cancels_exactly_its_subtree(
        depth in 2usize..7,
        cancel_at in 0usize..7,
        fanout in 1usize..4,
    ) {
        let cancel_at = cancel_at % depth;
        // One spine root→leaf; at every spine level, `fanout` extra
        // leaf children hang off to the side.
        let mut spine = vec![Budget::unbounded()];
        for _ in 1..depth {
            let parent = spine.last().unwrap().clone();
            spine.push(parent.child());
        }
        let side: Vec<(usize, Budget)> = (0..depth)
            .flat_map(|lvl| (0..fanout).map(move |_| lvl))
            .map(|lvl| (lvl, spine[lvl].child()))
            .collect();

        spine[cancel_at].cancel();

        for (lvl, b) in spine.iter().enumerate() {
            prop_assert_eq!(b.is_cancelled(), lvl >= cancel_at);
        }
        for (lvl, b) in &side {
            // A side child of level `lvl` descends from spine[lvl]:
            // cancelled iff its attachment point is at/below the cut.
            prop_assert_eq!(b.is_cancelled(), *lvl >= cancel_at);
            if *lvl >= cancel_at {
                prop_assert_eq!(b.check(), Err(BudgetError::Cancelled));
            } else {
                prop_assert_eq!(b.check(), Ok(()));
            }
        }
    }

    #[test]
    fn sibling_step_budgets_are_disjoint_and_sum_on_the_parent(
        spends in prop::collection::vec(0u64..10_000, 1..6),
        raw_caps in prop::collection::vec(0u64..20_000, 1..6),
    ) {
        // 0 encodes "no cap" (the vendored proptest has no Option
        // strategy).
        let caps: Vec<Option<u64>> =
            raw_caps.iter().map(|&v| (v > 0).then_some(v)).collect();
        let n = spends.len().min(caps.len());
        let parent = Budget::new(None, None);
        let siblings: Vec<Budget> = caps[..n]
            .iter()
            .map(|cap| parent.child_with(None, *cap))
            .collect();
        for (b, spend) in siblings.iter().zip(&spends[..n]) {
            b.charge(*spend);
        }
        let total: u64 = spends[..n].iter().sum();
        // The parent pool accumulates exactly the sum of the siblings.
        prop_assert_eq!(parent.steps_spent(), total);
        for (i, (b, spend)) in siblings.iter().zip(&spends[..n]).enumerate() {
            // Disjointness: a sibling's counter reflects only its own
            // charges, never a sibling's.
            prop_assert_eq!(b.steps_spent(), *spend);
            match caps[i] {
                Some(cap) if *spend >= cap =>
                    prop_assert_eq!(b.check(), Err(BudgetError::StepsExhausted)),
                _ => prop_assert_eq!(b.check(), Ok(())),
            }
        }
    }

    #[test]
    fn charges_through_a_grandchild_bill_every_ancestor(
        spend in 1u64..1000,
        cap in 1u64..1000,
    ) {
        let root = Budget::new(None, Some(cap));
        let leaf = root.child().child();
        leaf.charge(spend);
        prop_assert_eq!(root.steps_spent(), spend);
        prop_assert_eq!(leaf.check().is_err(), spend >= cap);
        prop_assert_eq!(root.check().is_err(), spend >= cap);
    }
}
