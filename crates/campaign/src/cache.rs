//! Content-hash result cache.
//!
//! A cell's cache key hashes everything that determines its outcome:
//!
//! * a format-version salt ([`CACHE_VERSION`]) so stale layouts are
//!   invisible rather than misparsed,
//! * the cell descriptor (circuit label, algorithm, seed, attack kind
//!   *with its limits*),
//! * the generated netlist's `.bench` text — the actual input of the
//!   flow. If the generator, the profile table or the seed scheme
//!   changes, the text changes and every affected cell re-runs; cells
//!   whose circuits are byte-identical keep hitting.
//!
//! Keys are 128-bit [`sttlock_exec::CacheKey`]s (two independent
//! FNV-1a streams) rendered as hex file names — the keying scheme
//! itself lives in the exec runtime and is shared with serve's response
//! cache. Only [`RunStatus::Ok`](crate::RunStatus::Ok) records are
//! stored: failures, panics and timeouts always re-execute, because
//! they are exactly the cells one is trying to fix.

use std::fs;
use std::path::PathBuf;

use sttlock_exec::KeyBuilder;

use crate::json::Json;
use crate::record::RunRecord;

pub use sttlock_exec::CacheKey;

/// Bump when the record layout or keying scheme changes.
pub const CACHE_VERSION: u32 = 1;

/// A directory of cached [`RunRecord`]s keyed by content hash.
#[derive(Debug, Clone)]
pub struct Cache {
    dir: PathBuf,
}

/// Computes the key for one cell from its descriptor and the generated
/// netlist text.
///
/// The raw-chunk feed reproduces the pre-exec byte stream exactly
/// (`v{CACHE_VERSION}\x1f`, descriptor, `\x1f`, bench text), so every
/// cache directory written before the exec refactor stays valid.
pub fn cell_key(descriptor: &str, bench_text: &str) -> CacheKey {
    KeyBuilder::new(CACHE_VERSION)
        .chunk(descriptor.as_bytes())
        .chunk(b"\x1f")
        .chunk(bench_text.as_bytes())
        .finish()
}

impl Cache {
    /// Opens (creating if needed) a cache directory. Returns `None` if
    /// the directory cannot be created — the campaign then runs
    /// uncached rather than failing.
    pub fn open(dir: PathBuf) -> Option<Cache> {
        fs::create_dir_all(&dir).ok()?;
        Some(Cache { dir })
    }

    fn path(&self, key: CacheKey) -> PathBuf {
        self.dir.join(format!("{}.json", key.hex()))
    }

    /// Looks up a raw text entry. Unreadable entries read as misses.
    ///
    /// This is the reusable face of the cache: the serve layer stores
    /// whole response bodies under its own descriptors, sharing the
    /// keying scheme ([`cell_key`]) and directory layout with the
    /// campaign's record cache.
    pub fn lookup_text(&self, key: CacheKey) -> Option<String> {
        fs::read_to_string(self.path(key)).ok()
    }

    /// Stores a raw text entry under `key`. Write failures are
    /// swallowed: the cache is an accelerator, never a correctness
    /// dependency.
    pub fn store_text(&self, key: CacheKey, text: &str) {
        let _ = fs::write(self.path(key), text);
    }

    /// Looks up a cached record. Corrupt or unreadable entries read as
    /// misses.
    pub fn lookup(&self, key: CacheKey) -> Option<RunRecord> {
        let text = self.lookup_text(key)?;
        RunRecord::from_json(&Json::parse(&text).ok()?)
    }

    /// Stores a successful record. Write failures are swallowed: the
    /// cache is an accelerator, never a correctness dependency.
    pub fn store(&self, key: CacheKey, record: &RunRecord) {
        if !record.status.is_ok() {
            return;
        }
        self.store_text(key, &record.to_json().to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RunStatus;

    fn tmp_cache(name: &str) -> Cache {
        let dir = std::env::temp_dir()
            .join("sttlock-campaign-cache-tests")
            .join(format!("{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        Cache::open(dir).unwrap()
    }

    fn ok_record() -> RunRecord {
        RunRecord {
            status: RunStatus::Ok,
            flow: Some(crate::record::FlowMetrics::default()),
            wall_ms: 5,
            ..RunRecord::failure("s27", "independent", 42, "none", RunStatus::Ok)
        }
    }

    #[test]
    fn keys_separate_descriptor_and_content() {
        let k = cell_key("s27|independent|42|none", "INPUT(a)\n");
        assert_eq!(k, cell_key("s27|independent|42|none", "INPUT(a)\n"));
        assert_ne!(k, cell_key("s27|independent|43|none", "INPUT(a)\n"));
        assert_ne!(k, cell_key("s27|independent|42|none", "INPUT(b)\n"));
        // The separator prevents boundary ambiguity.
        assert_ne!(
            cell_key("ab", "c"),
            cell_key("a", "bc"),
            "descriptor/content boundary must be keyed"
        );
        assert_eq!(k.hex().len(), 32);
    }

    #[test]
    fn store_then_lookup_round_trips() {
        let cache = tmp_cache("roundtrip");
        let key = cell_key("d", "t");
        assert_eq!(cache.lookup(key), None);
        let r = ok_record();
        cache.store(key, &r);
        assert_eq!(cache.lookup(key), Some(r));
    }

    #[test]
    fn failures_are_never_cached() {
        let cache = tmp_cache("failures");
        let key = cell_key("d", "t");
        for status in [
            RunStatus::Failed("x".into()),
            RunStatus::Panicked("y".into()),
            RunStatus::TimedOut,
        ] {
            cache.store(key, &RunRecord::failure("c", "a", 1, "none", status));
            assert_eq!(cache.lookup(key), None);
        }
    }

    #[test]
    fn raw_text_entries_round_trip_and_miss_when_absent() {
        let cache = tmp_cache("raw");
        let key = cell_key("serve.harden|v1|independent|7", "INPUT(a)\n");
        assert_eq!(cache.lookup_text(key), None);
        cache.store_text(key, "{\"cached\":false}");
        assert_eq!(cache.lookup_text(key), Some("{\"cached\":false}".into()));
        // Raw entries and record entries share the namespace on
        // purpose — distinct descriptors keep them apart.
        assert_ne!(key, cell_key("other", "INPUT(a)\n"));
    }

    #[test]
    fn corrupt_entries_read_as_misses() {
        let cache = tmp_cache("corrupt");
        let key = cell_key("d", "t");
        fs::write(cache.path(key), "not json{").unwrap();
        assert_eq!(cache.lookup(key), None);
    }
}
