//! Table renderers: turn a campaign's record set back into the paper's
//! Table I / Table II / Figure 3 text, plus an attack-outcome table.
//!
//! The formats are byte-compatible with the historical standalone
//! binaries (`table1`, `table2`, `fig3`), which are now thin wrappers
//! over a campaign spec — EXPERIMENTS.md quotes this output.

use std::time::Duration;

use sttlock_attack::estimate::BigEffort;
use sttlock_core::SelectionAlgorithm;

use crate::record::{FlowMetrics, RunRecord};

/// Patterns per second for the paper's years-of-attack conversion.
const ATTACK_RATE: f64 = 1e9;

/// Per-circuit row: flow metrics per algorithm (Table I column order)
/// plus the circuit size.
struct Row<'a> {
    circuit: &'a str,
    gates: usize,
    by_alg: [Option<FlowMetrics>; 3],
}

/// Groups records into per-circuit rows, preserving first-seen circuit
/// order. The first record per (circuit, algorithm) with flow metrics
/// wins, so multi-seed campaigns tabulate their first seed.
fn rows(records: &[RunRecord]) -> Vec<Row<'_>> {
    let mut out: Vec<Row<'_>> = Vec::new();
    for r in records {
        let Some(flow) = r.flow else { continue };
        let Some(alg_idx) = SelectionAlgorithm::ALL
            .iter()
            .position(|a| a.to_string() == r.algorithm)
        else {
            continue;
        };
        let row = match out.iter_mut().find(|row| row.circuit == r.circuit) {
            Some(row) => row,
            None => {
                out.push(Row {
                    circuit: &r.circuit,
                    gates: r.gates,
                    by_alg: [None; 3],
                });
                out.last_mut().expect("just pushed")
            }
        };
        if row.by_alg[alg_idx].is_none() {
            row.by_alg[alg_idx] = Some(flow);
        }
    }
    out
}

/// Renders Table I — performance / power / area overheads and STT
/// counts per benchmark × selection algorithm.
pub fn render_table1(records: &[RunRecord], seed: u64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Table I — overhead after introducing STT-based LUTs (seed {seed})\n"
    ));
    out.push_str(&format!(
        "{:<9} | {:>6} {:>6} {:>6} | {:>7} {:>7} {:>7} | {:>6} {:>6} {:>6} | {:>5} {:>5} {:>5} | {:>7}\n",
        "Circuit",
        "PerfI", "PerfD", "PerfP",
        "PwrI", "PwrD", "PwrP",
        "AreaI", "AreaD", "AreaP",
        "#I", "#D", "#P",
        "size"
    ));
    out.push_str(&format!("{}\n", "-".repeat(118)));

    let mut sums = [[0.0f64; 3]; 3]; // [metric][algorithm]
    let mut counts = [0.0f64; 3];
    let mut present = [0usize; 3]; // rows contributing to each algorithm
    let mut n_rows = 0usize;

    // A missing cell (errored, timed out, or not part of the grid at
    // all) renders as a blank column and is excluded from its
    // algorithm's average, instead of polluting both with zeros.
    let f2 = |v: Option<f64>, width: usize| match v {
        Some(x) => format!("{x:>width$.2}"),
        None => format!("{:>width$}", ""),
    };
    let fstt = |v: Option<usize>| match v {
        Some(n) => format!("{n:>5}"),
        None => format!("{:>5}", ""),
    };
    let favg1 = |v: Option<f64>| match v {
        Some(x) => format!("{x:>5.1}"),
        None => format!("{:>5}", ""),
    };

    for row in rows(records) {
        let m = |a: usize| row.by_alg[a];
        out.push_str(&format!(
            "{:<9} | {} {} {} | {} {} {} | {} {} {} | {} {} {} | {:>7}\n",
            row.circuit,
            f2(m(0).map(|m| m.perf_pct), 6),
            f2(m(1).map(|m| m.perf_pct), 6),
            f2(m(2).map(|m| m.perf_pct), 6),
            f2(m(0).map(|m| m.power_pct), 7),
            f2(m(1).map(|m| m.power_pct), 7),
            f2(m(2).map(|m| m.power_pct), 7),
            f2(m(0).map(|m| m.area_pct), 6),
            f2(m(1).map(|m| m.area_pct), 6),
            f2(m(2).map(|m| m.area_pct), 6),
            fstt(m(0).map(|m| m.stt_count)),
            fstt(m(1).map(|m| m.stt_count)),
            fstt(m(2).map(|m| m.stt_count)),
            row.gates,
        ));
        for a in 0..3 {
            if let Some(m) = row.by_alg[a] {
                sums[0][a] += m.perf_pct;
                sums[1][a] += m.power_pct;
                sums[2][a] += m.area_pct;
                counts[a] += m.stt_count as f64;
                present[a] += 1;
            }
        }
        n_rows += 1;
    }

    if n_rows > 0 {
        let n = |a: usize| (present[a] > 0).then(|| present[a] as f64);
        out.push_str(&format!("{}\n", "-".repeat(118)));
        out.push_str(&format!(
            "{:<9} | {} {} {} | {} {} {} | {} {} {} | {} {} {} |\n",
            "Average",
            f2(n(0).map(|n| sums[0][0] / n), 6),
            f2(n(1).map(|n| sums[0][1] / n), 6),
            f2(n(2).map(|n| sums[0][2] / n), 6),
            f2(n(0).map(|n| sums[1][0] / n), 7),
            f2(n(1).map(|n| sums[1][1] / n), 7),
            f2(n(2).map(|n| sums[1][2] / n), 7),
            f2(n(0).map(|n| sums[2][0] / n), 6),
            f2(n(1).map(|n| sums[2][1] / n), 6),
            f2(n(2).map(|n| sums[2][2] / n), 6),
            favg1(n(0).map(|n| counts[0] / n)),
            favg1(n(1).map(|n| counts[1] / n)),
            favg1(n(2).map(|n| counts[2] / n)),
        ));
        out.push('\n');
        out.push_str("Paper (Table I) averages for comparison:\n");
        out.push_str("  perf: 2.69 / 28.40 / 2.36 %   power: 6.12 / 24.96 / 7.23 %   area: 1.47 / 6.45 / 2.84 %   #STT: 5.0 / 60.7 / 48.7\n");
        out.push_str("Expected shape: dependent worst on performance/power; overheads shrink as circuits grow.\n");
    }
    out
}

fn fmt_mmss(d: Duration) -> String {
    let total = d.as_secs_f64();
    let minutes = (total / 60.0).floor() as u64;
    let seconds = total - (minutes as f64) * 60.0;
    format!("{minutes:02}:{seconds:04.1}")
}

/// Renders Table II — selection CPU time per benchmark × algorithm.
pub fn render_table2(records: &[RunRecord], seed: u64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Table II — CPU time (MM:SS.s) for gate selection (seed {seed})\n"
    ));
    out.push_str(&format!(
        "{:<9} | {:>12} | {:>12} | {:>12}\n",
        "Circuit", "Independent", "Dependent", "Parametric"
    ));
    out.push_str(&format!("{}\n", "-".repeat(54)));

    for row in rows(records) {
        let cells: Vec<String> = row
            .by_alg
            .iter()
            .map(|f| match f {
                // Journals can be hand-edited or torn mid-float; a
                // negative, NaN or absurd selection time must render a
                // placeholder, not panic `Duration::from_secs_f64`.
                Some(m) if m.selection_ms.is_finite() && (0.0..=1e15).contains(&m.selection_ms) => {
                    fmt_mmss(Duration::from_secs_f64(m.selection_ms / 1e3))
                }
                Some(_) => "(invalid)".to_owned(),
                None => "(failed)".to_owned(),
            })
            .collect();
        out.push_str(&format!(
            "{:<9} | {:>12} | {:>12} | {:>12}\n",
            row.circuit, cells[0], cells[1], cells[2]
        ));
    }
    out.push('\n');
    out.push_str("Paper: all selections finish under ~1:31, s38584 parametric in 00:44.0.\n");
    out
}

/// Renders Figure 3 — required test clocks per benchmark × algorithm,
/// with the paper's years-at-10⁹-patterns/s conversion for the
/// parametric column.
pub fn render_fig3(records: &[RunRecord], seed: u64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Figure 3 — required test clocks to resolve the missing gates (seed {seed})\n"
    ));
    out.push_str(&format!(
        "{:<9} | {:>12} | {:>12} | {:>12} | {:>14}\n",
        "Circuit", "N_indep", "N_dep", "N_bf (para)", "para years@1e9/s"
    ));
    out.push_str(&format!("{}\n", "-".repeat(72)));

    for row in rows(records) {
        // Each algorithm column shows the estimate that algorithm
        // optimizes for, from that algorithm's own run.
        let cell = |i: usize, pick: fn(&FlowMetrics) -> f64| -> String {
            match &row.by_alg[i] {
                Some(m) => BigEffort::from_log10(pick(m)).to_string(),
                None => "(failed)".to_owned(),
            }
        };
        let n_indep = cell(0, |m| m.n_indep_log10);
        let n_dep = cell(1, |m| m.n_dep_log10);
        let n_bf = cell(2, |m| m.n_bf_log10);
        let para_years = match &row.by_alg[2] {
            Some(m) => {
                let years = BigEffort::from_log10(m.n_bf_log10).years_at(ATTACK_RATE);
                if years > 1e9 {
                    format!("{years:.2e}")
                } else {
                    format!("{years:.1}")
                }
            }
            None => "-".to_owned(),
        };
        out.push_str(&format!(
            "{:<9} | {:>12} | {:>12} | {:>12} | {:>14}\n",
            row.circuit, n_indep, n_dep, n_bf, para_years
        ));
    }
    out.push('\n');
    out.push_str("Paper reference point: s38584 parametric-aware needs ~6.07E+219 test clocks\n");
    out.push_str("(> 1000 years at 1e9 patterns/s even for the small circuits).\n");
    out
}

/// Renders the attack-outcome table: one line per executed cell
/// (including failures — campaign rows never vanish silently).
pub fn render_attacks(records: &[RunRecord]) -> String {
    let mut out = String::new();
    out.push_str("Attack outcomes — one row per campaign cell\n");
    out.push_str(&format!(
        "{:<14} | {:<11} | {:>4} | {:>6} | {:>9} | {:>5} | {:>12} | {:>9} | {:>8}\n",
        "Circuit",
        "Algorithm",
        "Seed",
        "Attack",
        "Status",
        "Broke",
        "DIPs/Clocks",
        "Conflicts",
        "Time"
    ));
    out.push_str(&format!("{}\n", "-".repeat(96)));
    for r in records {
        let (broke, effort, conflicts) = match &r.attack_metrics {
            Some(m) => (
                if m.broke { "yes" } else { "no" },
                if m.test_clocks > 0 {
                    m.test_clocks
                } else {
                    m.dips
                }
                .to_string(),
                m.conflicts.to_string(),
            ),
            None => ("-", "-".to_owned(), "-".to_owned()),
        };
        out.push_str(&format!(
            "{:<14} | {:<11} | {:>4} | {:>6} | {:>9} | {:>5} | {:>12} | {:>9} | {:>7.1}s\n",
            r.circuit,
            short_alg(&r.algorithm),
            r.seed,
            r.attack,
            r.status.tag(),
            broke,
            effort,
            conflicts,
            r.wall_ms as f64 / 1e3,
        ));
    }
    out
}

/// Renders the fault-sweep recovery table: one row per (circuit, fault
/// model) group, aggregating repair verdicts across seeds and
/// algorithms. Fault-free cells are skipped — this table is about the
/// robustness axis only.
pub fn render_faults(records: &[RunRecord]) -> String {
    struct Group<'a> {
        circuit: &'a str,
        fault: &'a str,
        cells: usize,
        recovered: usize,
        degraded: usize,
        retries: u64,
        writes: u64,
        injected: u64,
    }
    let mut groups: Vec<Group<'_>> = Vec::new();
    for r in records {
        let Some(m) = &r.repair else { continue };
        let group = match groups
            .iter_mut()
            .find(|g| g.circuit == r.circuit && g.fault == r.fault)
        {
            Some(g) => g,
            None => {
                groups.push(Group {
                    circuit: &r.circuit,
                    fault: &r.fault,
                    cells: 0,
                    recovered: 0,
                    degraded: 0,
                    retries: 0,
                    writes: 0,
                    injected: 0,
                });
                groups.last_mut().expect("just pushed")
            }
        };
        group.cells += 1;
        group.recovered += usize::from(m.verdict == "recovered");
        group.degraded += usize::from(m.verdict == "degraded");
        group.retries += m.retries;
        group.writes += m.reprogram_attempts;
        group.injected += m.faults_injected;
    }

    let mut out = String::new();
    out.push_str("Fault sweep — verify-and-repair outcomes per circuit × fault model\n");
    out.push_str(&format!(
        "{:<14} | {:<18} | {:>5} | {:>6} | {:>9} | {:>8} | {:>8} | {:>7} | {:>7}\n",
        "Circuit",
        "Fault model",
        "Cells",
        "Recov",
        "Recov %",
        "Degraded",
        "Unrecov",
        "Retries",
        "Writes"
    ));
    out.push_str(&format!("{}\n", "-".repeat(104)));
    for g in &groups {
        let unrecoverable = g.cells - g.recovered - g.degraded;
        out.push_str(&format!(
            "{:<14} | {:<18} | {:>5} | {:>6} | {:>8.1}% | {:>8} | {:>8} | {:>7.2} | {:>7.2}\n",
            g.circuit,
            g.fault,
            g.cells,
            g.recovered,
            100.0 * g.recovered as f64 / g.cells as f64,
            g.degraded,
            unrecoverable,
            g.retries as f64 / g.cells as f64,
            g.writes as f64 / g.cells as f64,
        ));
    }
    if groups.is_empty() {
        out.push_str("(no fault-injected cells in this record set)\n");
    } else {
        out.push_str(
            "\nRetries/Writes are per-cell means; a recovered row within the retry\n\
             budget means the self-healing loop restored the intended bitstream.\n",
        );
    }
    out
}

fn short_alg(display_name: &str) -> &str {
    for alg in SelectionAlgorithm::ALL {
        if alg.to_string() == display_name {
            return match alg {
                SelectionAlgorithm::Independent => "independent",
                SelectionAlgorithm::Dependent => "dependent",
                SelectionAlgorithm::ParametricAware => "parametric",
            };
        }
    }
    display_name
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{AttackMetrics, RunStatus};

    fn record(circuit: &str, alg: SelectionAlgorithm, stt: usize) -> RunRecord {
        RunRecord {
            circuit: circuit.into(),
            gates: 100,
            algorithm: alg.to_string(),
            seed: 42,
            attack: "none".into(),
            config: "default".into(),
            status: RunStatus::Ok,
            flow: Some(FlowMetrics {
                perf_pct: 1.5,
                power_pct: 2.5,
                leakage_pct: -0.25,
                area_pct: 0.75,
                stt_count: stt,
                selection_ms: 1500.0,
                n_indep_log10: 3.0,
                n_dep_log10: 40.0,
                n_bf_log10: 219.783,
            }),
            attack_metrics: None,
            fault: "none".into(),
            repair: None,
            wall_ms: 2100,
            cached: false,
        }
    }

    fn grid() -> Vec<RunRecord> {
        let mut v = Vec::new();
        for circuit in ["s27", "s298"] {
            for alg in SelectionAlgorithm::ALL {
                v.push(record(circuit, alg, 5));
            }
        }
        v
    }

    #[test]
    fn table1_has_rows_averages_and_the_paper_footer() {
        let text = render_table1(&grid(), 42);
        assert!(text.starts_with("Table I — overhead"));
        assert!(text.contains("(seed 42)"));
        assert!(text.contains("s27       |   1.50   1.50   1.50"));
        assert!(text.contains("Average   |"));
        assert!(text.contains("Paper (Table I) averages"));
    }

    #[test]
    fn table2_formats_selection_time_as_mmss() {
        let text = render_table2(&grid(), 42);
        assert!(text.contains("00:01.5"), "{text}");
        assert!(text.contains("Paper: all selections finish"));
    }

    #[test]
    fn fig3_shows_scientific_efforts_and_years() {
        let text = render_fig3(&grid(), 42);
        assert!(text.contains("6.07E+219"), "{text}");
        // 10^219.783 clocks at 1e9/s is astronomically many years.
        assert!(text.contains("e203"), "{text}");
        assert!(text.contains("Paper reference point"));
    }

    #[test]
    fn missing_algorithms_render_as_failed_not_garbage() {
        // Only the independent run survived.
        let records = vec![record("s27", SelectionAlgorithm::Independent, 5)];
        let t2 = render_table2(&records, 1);
        assert!(t2.contains("(failed)"), "{t2}");
        let f3 = render_fig3(&records, 1);
        assert!(f3.contains("(failed)"), "{f3}");
    }

    #[test]
    fn attack_table_lists_failures_and_metrics() {
        let mut ok = record("s27", SelectionAlgorithm::Independent, 5);
        ok.attack = "sat".into();
        ok.attack_metrics = Some(AttackMetrics {
            broke: true,
            dips: 12,
            conflicts: 345,
            ..AttackMetrics::default()
        });
        let dead = RunRecord::failure(
            "inject-panic",
            "independent",
            1,
            "none",
            RunStatus::Panicked("injected panic cell".into()),
        );
        let text = render_attacks(&[ok, dead]);
        assert!(text.contains("yes"), "{text}");
        assert!(text.contains("345"), "{text}");
        assert!(text.contains("panicked"), "{text}");
    }

    #[test]
    fn fault_table_aggregates_recovery_rates_per_group() {
        use crate::record::RepairMetrics;
        let repaired = |verdict: &str, retries: u64| RepairMetrics {
            verdict: verdict.into(),
            faults_injected: 2,
            vectors_run: 576,
            retries,
            reprogram_attempts: retries * 2,
            initial_mismatches: 1,
            residual_mismatches: u64::from(verdict != "recovered"),
            repaired_luts: 1,
            failed_luts: 0,
            n_bf_faulted_log10: 12.0,
        };
        let mut a = record("s27", SelectionAlgorithm::Independent, 5);
        a.fault = "wf=0.01".into();
        a.repair = Some(repaired("recovered", 1));
        let mut b = a.clone();
        b.seed = 43;
        b.repair = Some(repaired("unrecoverable", 5));
        let text = render_faults(&[a, b, record("s27", SelectionAlgorithm::Independent, 5)]);
        assert!(text.contains("wf=0.01"), "{text}");
        assert!(text.contains("50.0%"), "{text}");
        assert!(!text.contains("none"), "fault-free cells are skipped");

        let empty = render_faults(&[record("s27", SelectionAlgorithm::Independent, 5)]);
        assert!(empty.contains("no fault-injected cells"), "{empty}");
    }

    #[test]
    fn first_seed_wins_for_multi_seed_grids() {
        let mut second = record("s27", SelectionAlgorithm::Independent, 9);
        second.seed = 43;
        let records = vec![record("s27", SelectionAlgorithm::Independent, 5), second];
        let text = render_table1(&records, 42);
        assert!(text.contains("    5"), "first seed's count renders: {text}");
        assert!(!text.contains("    9"), "later seeds are ignored: {text}");
    }

    #[test]
    fn table1_blanks_missing_cells_and_averages_only_present_ones() {
        // s27 has all three algorithms; s298's dependent cell failed
        // (status row only, no flow metrics). Pre-fix, the missing cell
        // rendered default zeros and dragged the dependent averages to
        // half their true value.
        let mut records = grid();
        let dependent = SelectionAlgorithm::Dependent.to_string();
        records.retain(|r| !(r.circuit == "s298" && r.algorithm == dependent));
        records.push(RunRecord::failure(
            "s298",
            &dependent,
            42,
            "none",
            RunStatus::Failed("flow failed: injected".into()),
        ));
        let text = render_table1(&records, 42);
        assert!(
            !text.contains("0.00"),
            "missing cells must be blank, not zero: {text}"
        );
        // Every present cell carries identical metrics, so each average
        // must equal the cell value even with s298's dependent column
        // absent (pre-fix the dependent perf average read 0.75).
        assert!(text.contains("Average   |   1.50   1.50   1.50"), "{text}");
    }

    #[test]
    fn table1_with_zero_present_cells_for_an_algorithm_stays_blank() {
        // A single-algorithm grid: the other two columns have no cells
        // anywhere, so their averages must be blank, not 0/0 artifacts.
        let records = vec![
            record("s27", SelectionAlgorithm::Independent, 5),
            record("s298", SelectionAlgorithm::Independent, 7),
        ];
        let text = render_table1(&records, 1);
        assert!(!text.contains("NaN"), "{text}");
        assert!(!text.contains("0.00"), "{text}");
        assert!(text.contains("Average   |   1.50  "), "{text}");
    }

    #[test]
    fn table2_renders_placeholders_for_corrupt_selection_times() {
        // Negative, NaN or absurd selection times replay verbatim from
        // hand-edited resume journals; pre-fix each of these panicked
        // inside Duration::from_secs_f64.
        let mut neg = record("s27", SelectionAlgorithm::Independent, 5);
        neg.flow.as_mut().unwrap().selection_ms = -1500.0;
        let mut nan = record("s298", SelectionAlgorithm::Dependent, 5);
        nan.flow.as_mut().unwrap().selection_ms = f64::NAN;
        let mut huge = record("s344", SelectionAlgorithm::ParametricAware, 5);
        huge.flow.as_mut().unwrap().selection_ms = 1e300;
        let text = render_table2(&[neg, nan, huge], 1);
        assert_eq!(text.matches("(invalid)").count(), 3, "{text}");
        assert!(text.contains("(failed)"), "absent cells keep their tag");
    }
}
