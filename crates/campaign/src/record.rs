//! Per-run result records and their JSONL encoding.

use crate::json::Json;

/// How a campaign cell ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunStatus {
    /// The cell completed and produced metrics.
    Ok,
    /// A flow or attack step returned a typed error.
    Failed(String),
    /// The cell panicked; the payload is the panic message. The panic
    /// was contained by the runner — sibling cells kept going.
    Panicked(String),
    /// The cell exceeded the per-run wall-clock budget.
    TimedOut,
}

impl RunStatus {
    /// Stable status tag used in the JSONL output.
    pub fn tag(&self) -> &'static str {
        match self {
            RunStatus::Ok => "ok",
            RunStatus::Failed(_) => "failed",
            RunStatus::Panicked(_) => "panicked",
            RunStatus::TimedOut => "timed_out",
        }
    }

    /// Whether the cell produced usable metrics.
    pub fn is_ok(&self) -> bool {
        matches!(self, RunStatus::Ok)
    }
}

/// Flow metrics of one successful run — the Table I / Table II /
/// Figure 3 columns for one (circuit, algorithm, seed) cell.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FlowMetrics {
    /// Relative clock-period degradation, percent.
    pub perf_pct: f64,
    /// Relative total-power overhead, percent.
    pub power_pct: f64,
    /// Relative leakage change, percent.
    pub leakage_pct: f64,
    /// Relative area overhead, percent.
    pub area_pct: f64,
    /// STT LUTs inserted.
    pub stt_count: usize,
    /// Selection CPU time, milliseconds (Table II).
    pub selection_ms: f64,
    /// `log10` of the independent-selection effort estimate.
    pub n_indep_log10: f64,
    /// `log10` of the dependent-selection effort estimate.
    pub n_dep_log10: f64,
    /// `log10` of the brute-force effort estimate.
    pub n_bf_log10: f64,
}

/// Attack metrics of one successful attack run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AttackMetrics {
    /// Whether the attack fully recovered the configuration.
    pub broke: bool,
    /// DIPs (SAT attacks) — distinguishing patterns/sequences used.
    pub dips: u64,
    /// Oracle test clocks (sensitization attack).
    pub test_clocks: u64,
    /// SAT justification queries (sensitization attack).
    pub sat_queries: u64,
    /// Solver conflicts.
    pub conflicts: u64,
    /// Solver decisions.
    pub decisions: u64,
    /// Solver propagations.
    pub propagations: u64,
    /// Solver restarts.
    pub restarts: u64,
    /// Learnt clauses.
    pub learnt_clauses: u64,
    /// Unroll bound (sequential attack; 0 otherwise).
    pub frames: u64,
}

/// Verify-and-repair metrics of one fault-injected run — the recovery
/// table's columns for one (circuit, algorithm, seed, fault) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairMetrics {
    /// Repair verdict tag (`recovered`, `degraded`, `unrecoverable`).
    pub verdict: String,
    /// Faults the injector actually placed in the device.
    pub faults_injected: u64,
    /// Individual test vectors evaluated by the repair loop.
    pub vectors_run: u64,
    /// Re-programming rounds executed.
    pub retries: u64,
    /// Individual LUT writes issued through the programming channel.
    pub reprogram_attempts: u64,
    /// Mismatching observation points before any repair.
    pub initial_mismatches: u64,
    /// Mismatching observation points left when the loop ended.
    pub residual_mismatches: u64,
    /// LUTs implicated at some point and clean at the end.
    pub repaired_luts: u64,
    /// LUTs still implicated when the loop gave up.
    pub failed_luts: u64,
    /// `log10` of the brute-force effort estimate under this fault
    /// model (key bits leak through faulted rows, Section VI).
    pub n_bf_faulted_log10: f64,
}

/// One executed campaign cell: descriptor, outcome, metrics, timing.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Circuit name (profile name or custom/injected label).
    pub circuit: String,
    /// Combinational gate count of the generated circuit (0 when the
    /// cell failed before generation finished).
    pub gates: usize,
    /// Selection algorithm (display name, e.g. `independent`).
    pub algorithm: String,
    /// User-facing seed of the cell.
    pub seed: u64,
    /// Attack descriptor (`none`, `sens`, `sat`, `seq`).
    pub attack: String,
    /// Selection-override descriptor (`default` unless an ablation
    /// sweep changed the tunables).
    pub config: String,
    /// Outcome.
    pub status: RunStatus,
    /// Flow metrics, present when the flow step succeeded.
    pub flow: Option<FlowMetrics>,
    /// Attack metrics, present when an attack ran and succeeded.
    pub attack_metrics: Option<AttackMetrics>,
    /// Fault-model descriptor (`none` for fault-free cells).
    pub fault: String,
    /// Verify-and-repair metrics, present when a fault model ran.
    pub repair: Option<RepairMetrics>,
    /// Wall-clock time of the cell, milliseconds.
    pub wall_ms: u64,
    /// Whether the record was served from the result cache.
    pub cached: bool,
}

impl RunRecord {
    /// A failure record for a cell that produced no metrics.
    pub fn failure(
        circuit: &str,
        algorithm: &str,
        seed: u64,
        attack: &str,
        status: RunStatus,
    ) -> RunRecord {
        RunRecord {
            circuit: circuit.to_owned(),
            gates: 0,
            algorithm: algorithm.to_owned(),
            seed,
            attack: attack.to_owned(),
            config: "default".to_owned(),
            status,
            flow: None,
            attack_metrics: None,
            fault: "none".to_owned(),
            repair: None,
            wall_ms: 0,
            cached: false,
        }
    }

    /// Serializes the record as one JSONL line (no trailing newline).
    ///
    /// The `fault` and `repair` keys appear only on fault-injected
    /// cells, so fault-free campaign output stays byte-identical to the
    /// engine before the fault axis existed — the acceptance bar for
    /// the `p = 0` sweep.
    pub fn to_json(&self) -> Json {
        let error = match &self.status {
            RunStatus::Failed(m) | RunStatus::Panicked(m) => Json::Str(m.clone()),
            _ => Json::Null,
        };
        let mut pairs = vec![
            ("circuit", Json::from(self.circuit.as_str())),
            ("gates", Json::from(self.gates)),
            ("algorithm", Json::from(self.algorithm.as_str())),
            ("seed", Json::from(self.seed)),
            ("attack", Json::from(self.attack.as_str())),
            ("config", Json::from(self.config.as_str())),
            ("status", Json::from(self.status.tag())),
            ("error", error),
            ("flow", self.flow.map_or(Json::Null, |m| flow_to_json(&m))),
            (
                "attack_metrics",
                self.attack_metrics
                    .map_or(Json::Null, |m| attack_to_json(&m)),
            ),
        ];
        if self.fault != "none" || self.repair.is_some() {
            pairs.push(("fault", Json::from(self.fault.as_str())));
            pairs.push((
                "repair",
                self.repair.as_ref().map_or(Json::Null, repair_to_json),
            ));
        }
        pairs.push(("wall_ms", Json::from(self.wall_ms)));
        pairs.push(("cached", Json::from(self.cached)));
        Json::obj(pairs)
    }

    /// Decodes a record from its JSON form.
    pub fn from_json(v: &Json) -> Option<RunRecord> {
        let status = match v.get("status")?.as_str()? {
            "ok" => RunStatus::Ok,
            "failed" => RunStatus::Failed(
                v.get("error")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_owned(),
            ),
            "panicked" => RunStatus::Panicked(
                v.get("error")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_owned(),
            ),
            "timed_out" => RunStatus::TimedOut,
            _ => return None,
        };
        Some(RunRecord {
            circuit: v.get("circuit")?.as_str()?.to_owned(),
            gates: v.get("gates")?.as_u64()? as usize,
            algorithm: v.get("algorithm")?.as_str()?.to_owned(),
            seed: v.get("seed")?.as_u64()?,
            attack: v.get("attack")?.as_str()?.to_owned(),
            config: v.get("config")?.as_str()?.to_owned(),
            status,
            flow: v.get("flow").and_then(flow_from_json),
            attack_metrics: v.get("attack_metrics").and_then(attack_from_json),
            fault: v
                .get("fault")
                .and_then(Json::as_str)
                .unwrap_or("none")
                .to_owned(),
            repair: v.get("repair").and_then(repair_from_json),
            wall_ms: v.get("wall_ms")?.as_u64()?,
            cached: v.get("cached")?.as_bool()?,
        })
    }
}

fn flow_to_json(m: &FlowMetrics) -> Json {
    Json::obj([
        ("perf_pct", Json::from(m.perf_pct)),
        ("power_pct", Json::from(m.power_pct)),
        ("leakage_pct", Json::from(m.leakage_pct)),
        ("area_pct", Json::from(m.area_pct)),
        ("stt_count", Json::from(m.stt_count)),
        ("selection_ms", Json::from(m.selection_ms)),
        ("n_indep_log10", Json::from(m.n_indep_log10)),
        ("n_dep_log10", Json::from(m.n_dep_log10)),
        ("n_bf_log10", Json::from(m.n_bf_log10)),
    ])
}

fn flow_from_json(v: &Json) -> Option<FlowMetrics> {
    Some(FlowMetrics {
        perf_pct: v.get("perf_pct")?.as_f64()?,
        power_pct: v.get("power_pct")?.as_f64()?,
        leakage_pct: v.get("leakage_pct")?.as_f64()?,
        area_pct: v.get("area_pct")?.as_f64()?,
        stt_count: v.get("stt_count")?.as_u64()? as usize,
        selection_ms: v.get("selection_ms")?.as_f64()?,
        n_indep_log10: v.get("n_indep_log10")?.as_f64()?,
        n_dep_log10: v.get("n_dep_log10")?.as_f64()?,
        n_bf_log10: v.get("n_bf_log10")?.as_f64()?,
    })
}

fn attack_to_json(m: &AttackMetrics) -> Json {
    Json::obj([
        ("broke", Json::from(m.broke)),
        ("dips", Json::from(m.dips)),
        ("test_clocks", Json::from(m.test_clocks)),
        ("sat_queries", Json::from(m.sat_queries)),
        ("conflicts", Json::from(m.conflicts)),
        ("decisions", Json::from(m.decisions)),
        ("propagations", Json::from(m.propagations)),
        ("restarts", Json::from(m.restarts)),
        ("learnt_clauses", Json::from(m.learnt_clauses)),
        ("frames", Json::from(m.frames)),
    ])
}

fn repair_to_json(m: &RepairMetrics) -> Json {
    Json::obj([
        ("verdict", Json::from(m.verdict.as_str())),
        ("faults_injected", Json::from(m.faults_injected)),
        ("vectors_run", Json::from(m.vectors_run)),
        ("retries", Json::from(m.retries)),
        ("reprogram_attempts", Json::from(m.reprogram_attempts)),
        ("initial_mismatches", Json::from(m.initial_mismatches)),
        ("residual_mismatches", Json::from(m.residual_mismatches)),
        ("repaired_luts", Json::from(m.repaired_luts)),
        ("failed_luts", Json::from(m.failed_luts)),
        ("n_bf_faulted_log10", Json::from(m.n_bf_faulted_log10)),
    ])
}

fn repair_from_json(v: &Json) -> Option<RepairMetrics> {
    Some(RepairMetrics {
        verdict: v.get("verdict")?.as_str()?.to_owned(),
        faults_injected: v.get("faults_injected")?.as_u64()?,
        vectors_run: v.get("vectors_run")?.as_u64()?,
        retries: v.get("retries")?.as_u64()?,
        reprogram_attempts: v.get("reprogram_attempts")?.as_u64()?,
        initial_mismatches: v.get("initial_mismatches")?.as_u64()?,
        residual_mismatches: v.get("residual_mismatches")?.as_u64()?,
        repaired_luts: v.get("repaired_luts")?.as_u64()?,
        failed_luts: v.get("failed_luts")?.as_u64()?,
        n_bf_faulted_log10: v.get("n_bf_faulted_log10")?.as_f64()?,
    })
}

fn attack_from_json(v: &Json) -> Option<AttackMetrics> {
    Some(AttackMetrics {
        broke: v.get("broke")?.as_bool()?,
        dips: v.get("dips")?.as_u64()?,
        test_clocks: v.get("test_clocks")?.as_u64()?,
        sat_queries: v.get("sat_queries")?.as_u64()?,
        conflicts: v.get("conflicts")?.as_u64()?,
        decisions: v.get("decisions")?.as_u64()?,
        propagations: v.get("propagations")?.as_u64()?,
        restarts: v.get("restarts")?.as_u64()?,
        learnt_clauses: v.get("learnt_clauses")?.as_u64()?,
        frames: v.get("frames")?.as_u64()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunRecord {
        RunRecord {
            circuit: "s27".into(),
            gates: 10,
            algorithm: "independent".into(),
            seed: 42,
            attack: "sat".into(),
            config: "default".into(),
            status: RunStatus::Ok,
            flow: Some(FlowMetrics {
                perf_pct: 1.25,
                power_pct: 4.5,
                leakage_pct: -0.5,
                area_pct: 2.0,
                stt_count: 5,
                selection_ms: 12.5,
                n_indep_log10: 3.0,
                n_dep_log10: 40.0,
                n_bf_log10: 219.5,
            }),
            attack_metrics: Some(AttackMetrics {
                broke: true,
                dips: 7,
                conflicts: 100,
                decisions: 50,
                propagations: 2000,
                restarts: 1,
                learnt_clauses: 80,
                ..AttackMetrics::default()
            }),
            fault: "none".into(),
            repair: None,
            wall_ms: 321,
            cached: false,
        }
    }

    #[test]
    fn records_round_trip_through_json() {
        let r = sample();
        let text = r.to_json().to_string();
        let back = RunRecord::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn failure_records_round_trip_with_messages() {
        for status in [
            RunStatus::Failed("flow failed: selection produced no replaceable gate".into()),
            RunStatus::Panicked("injected panic".into()),
            RunStatus::TimedOut,
        ] {
            let r = RunRecord::failure("boom", "independent", 1, "none", status.clone());
            let text = r.to_json().to_string();
            let back = RunRecord::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back.status, status);
            assert_eq!(back.flow, None);
        }
    }

    #[test]
    fn jsonl_lines_are_single_line_and_tagged() {
        let r = sample();
        let line = r.to_json().to_string();
        assert!(!line.contains('\n'));
        assert!(line.contains("\"status\":\"ok\""));
        assert!(line.contains("\"cached\":false"));
    }

    #[test]
    fn fault_free_records_omit_the_fault_keys_entirely() {
        let line = sample().to_json().to_string();
        assert!(
            !line.contains("\"fault\":") && !line.contains("\"repair\":"),
            "p=0 records must be byte-identical to the pre-fault format: {line}"
        );
    }

    #[test]
    fn faulted_records_round_trip_with_repair_metrics() {
        let mut r = sample();
        r.fault = "wf=0.01".into();
        r.repair = Some(RepairMetrics {
            verdict: "recovered".into(),
            faults_injected: 3,
            vectors_run: 1024,
            retries: 1,
            reprogram_attempts: 2,
            initial_mismatches: 4,
            residual_mismatches: 0,
            repaired_luts: 2,
            failed_luts: 0,
            n_bf_faulted_log10: 17.25,
        });
        let text = r.to_json().to_string();
        assert!(text.contains("\"fault\":\"wf=0.01\""));
        assert!(text.contains("\"verdict\":\"recovered\""));
        let back = RunRecord::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, r);
    }
}
