//! Wire serialization for campaign cells.
//!
//! The cluster coordinator ships individual grid cells to workers over
//! HTTP; this module gives [`Cell`] (and every type it embeds) a JSON
//! round-trip so a work unit can cross a process boundary and execute
//! remotely exactly as it would have locally. Encoding is lossless by
//! construction: every field is carried verbatim (`f64` probabilities
//! ride on the shortest-round-trip `Display` the [`Json`] writer uses),
//! so the decoded cell produces the same cache keys, journal keys and
//! records as the original.

use sttlock_core::SelectionAlgorithm;
use sttlock_fault::FaultModel;

use crate::json::Json;
use crate::{AttackKind, Cell, CircuitSpec, SelectionOverrides};

impl Cell {
    /// Serializes the cell for dispatch.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("circuit", circuit_to_json(&self.circuit)),
            ("algorithm", Json::from(self.algorithm.to_string().as_str())),
            ("seed", Json::from(self.seed)),
            ("attack", attack_to_json(&self.attack)),
            ("fault", fault_to_json(&self.fault)),
        ];
        if let Some(g) = self.overrides.independent_gates {
            pairs.push(("indep_gates", Json::from(g)));
        }
        if let Some(p) = self.overrides.parametric_paths {
            pairs.push(("paths", Json::from(p)));
        }
        Json::obj(pairs)
    }

    /// Decodes a dispatched cell; `None` on any missing or malformed
    /// field (the receiver treats that as protocol skew).
    pub fn from_json(v: &Json) -> Option<Cell> {
        Some(Cell {
            circuit: circuit_from_json(v.get("circuit")?)?,
            algorithm: v
                .get("algorithm")?
                .as_str()?
                .parse::<SelectionAlgorithm>()
                .ok()?,
            seed: v.get("seed")?.as_u64()?,
            attack: attack_from_json(v.get("attack")?)?,
            overrides: SelectionOverrides {
                independent_gates: v
                    .get("indep_gates")
                    .and_then(Json::as_u64)
                    .map(|g| g as usize),
                parametric_paths: v.get("paths").and_then(Json::as_u64).map(|p| p as usize),
            },
            fault: fault_from_json(v.get("fault")?)?,
        })
    }
}

fn circuit_to_json(circuit: &CircuitSpec) -> Json {
    match circuit {
        CircuitSpec::Profile(name) => Json::obj([
            ("kind", Json::from("profile")),
            ("name", Json::from(name.as_str())),
        ]),
        CircuitSpec::Custom {
            name,
            gates,
            dffs,
            inputs,
            outputs,
        } => Json::obj([
            ("kind", Json::from("custom")),
            ("name", Json::from(name.as_str())),
            ("gates", Json::from(*gates)),
            ("dffs", Json::from(*dffs)),
            ("inputs", Json::from(*inputs)),
            ("outputs", Json::from(*outputs)),
        ]),
        CircuitSpec::InjectPanic => Json::obj([("kind", Json::from("inject-panic"))]),
        CircuitSpec::InjectTimeout => Json::obj([("kind", Json::from("inject-timeout"))]),
        CircuitSpec::InjectPoison => Json::obj([("kind", Json::from("inject-poison"))]),
    }
}

fn circuit_from_json(v: &Json) -> Option<CircuitSpec> {
    match v.get("kind")?.as_str()? {
        "profile" => Some(CircuitSpec::Profile(v.get("name")?.as_str()?.to_owned())),
        "custom" => Some(CircuitSpec::Custom {
            name: v.get("name")?.as_str()?.to_owned(),
            gates: v.get("gates")?.as_u64()? as usize,
            dffs: v.get("dffs")?.as_u64()? as usize,
            inputs: v.get("inputs")?.as_u64()? as usize,
            outputs: v.get("outputs")?.as_u64()? as usize,
        }),
        "inject-panic" => Some(CircuitSpec::InjectPanic),
        "inject-timeout" => Some(CircuitSpec::InjectTimeout),
        "inject-poison" => Some(CircuitSpec::InjectPoison),
        _ => None,
    }
}

fn attack_to_json(attack: &AttackKind) -> Json {
    match attack {
        AttackKind::None => Json::obj([("tag", Json::from("none"))]),
        AttackKind::Sensitization => Json::obj([("tag", Json::from("sens"))]),
        AttackKind::Sat { max_dips } => Json::obj([
            ("tag", Json::from("sat")),
            ("max_dips", Json::from(*max_dips)),
        ]),
        AttackKind::SequentialSat { frames, max_dips } => Json::obj([
            ("tag", Json::from("seq")),
            ("frames", Json::from(*frames)),
            ("max_dips", Json::from(*max_dips)),
        ]),
    }
}

fn attack_from_json(v: &Json) -> Option<AttackKind> {
    match v.get("tag")?.as_str()? {
        "none" => Some(AttackKind::None),
        "sens" => Some(AttackKind::Sensitization),
        "sat" => Some(AttackKind::Sat {
            max_dips: v.get("max_dips")?.as_u64()? as usize,
        }),
        "seq" => Some(AttackKind::SequentialSat {
            frames: v.get("frames")?.as_u64()? as usize,
            max_dips: v.get("max_dips")?.as_u64()? as usize,
        }),
        _ => None,
    }
}

fn fault_to_json(fault: &FaultModel) -> Json {
    Json::obj([
        ("wf", Json::from(fault.write_failure_p)),
        ("rf", Json::from(fault.retention_flip_p)),
        ("s0", Json::from(fault.stuck_at_zero_p)),
        ("s1", Json::from(fault.stuck_at_one_p)),
        ("cs", Json::from(fault.cmos_stuck_p)),
    ])
}

fn fault_from_json(v: &Json) -> Option<FaultModel> {
    Some(FaultModel {
        write_failure_p: v.get("wf")?.as_f64()?,
        retention_flip_p: v.get("rf")?.as_f64()?,
        stuck_at_zero_p: v.get("s0")?.as_f64()?,
        stuck_at_one_p: v.get("s1")?.as_f64()?,
        cmos_stuck_p: v.get("cs")?.as_f64()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{runner::cell_journal_key, CampaignSpec};

    fn round_trip(cell: &Cell) -> Cell {
        let text = cell.to_json().to_string();
        let parsed = Json::parse(&text).expect("wire output parses");
        Cell::from_json(&parsed).expect("wire output decodes")
    }

    #[test]
    fn every_grid_cell_shape_round_trips_losslessly() {
        let spec = CampaignSpec {
            circuits: vec![
                CircuitSpec::Profile("s27".into()),
                CircuitSpec::Custom {
                    name: "tiny".into(),
                    gates: 60,
                    dffs: 4,
                    inputs: 6,
                    outputs: 4,
                },
                CircuitSpec::InjectPanic,
                CircuitSpec::InjectTimeout,
                CircuitSpec::InjectPoison,
            ],
            algorithms: SelectionAlgorithm::ALL.to_vec(),
            seeds: vec![0, 42, u64::MAX >> 12],
            attacks: vec![
                AttackKind::None,
                AttackKind::Sensitization,
                AttackKind::Sat { max_dips: 0 },
                AttackKind::SequentialSat {
                    frames: 4,
                    max_dips: 100,
                },
            ],
            overrides: vec![
                SelectionOverrides::default(),
                SelectionOverrides {
                    independent_gates: Some(7),
                    parametric_paths: Some(3),
                },
            ],
            faults: vec![
                FaultModel::default(),
                FaultModel::write_failures(0.05),
                FaultModel {
                    write_failure_p: 0.001,
                    retention_flip_p: 0.125,
                    stuck_at_zero_p: 0.25,
                    stuck_at_one_p: 0.0625,
                    cmos_stuck_p: 1e-9,
                },
            ],
            ..CampaignSpec::default()
        };
        let cells = spec.cells();
        assert!(cells.len() > 100, "the sweep must cover a real grid");
        for cell in &cells {
            let decoded = round_trip(cell);
            assert_eq!(&decoded, cell);
            // Identity is preserved where it matters downstream: the
            // journal/dispatch key and the cache descriptor inputs.
            assert_eq!(cell_journal_key(&decoded), cell_journal_key(cell));
        }
    }

    #[test]
    fn truncated_or_foreign_payloads_decode_to_none_not_panics() {
        let cell = Cell {
            circuit: CircuitSpec::Profile("s27".into()),
            algorithm: SelectionAlgorithm::Independent,
            seed: 1,
            attack: AttackKind::Sat { max_dips: 5 },
            overrides: SelectionOverrides::default(),
            fault: FaultModel::default(),
        };
        let Json::Obj(full) = cell.to_json() else {
            panic!("cells encode as objects");
        };
        for key in full.keys() {
            let mut broken = full.clone();
            broken.remove(key.as_str());
            assert!(
                Cell::from_json(&Json::Obj(broken)).is_none(),
                "dropping `{key}` must fail the decode"
            );
        }
        assert!(Cell::from_json(&Json::Null).is_none());
        assert!(
            Cell::from_json(&Json::parse("{\"circuit\":{\"kind\":\"warp\"}}").unwrap()).is_none()
        );
    }
}
