//! Parallel experiment-campaign engine with fault isolation.
//!
//! The reproduction binaries (`table1`, `table2`, `fig3`) and the attack
//! examples all share the same loop: for each benchmark circuit × each
//! selection algorithm × a seed, run the flow (and optionally an
//! attack), then tabulate. This crate centralizes that loop as a
//! declarative *campaign*:
//!
//! * [`CampaignSpec`] describes the run grid — circuits × algorithms ×
//!   seeds × attacks — plus the execution budget (worker count, per-run
//!   timeout, cache directory).
//! * [`execute`](runner::execute) runs the grid with work-stealing
//!   parallelism over OS threads (`std::thread::scope`, the same
//!   pattern as `IncrementalSta::batch_eval`), isolating each cell so a
//!   panicking or runaway run becomes a recorded failure row instead of
//!   aborting the whole campaign.
//! * [`RunRecord`] is the structured per-cell result, serialized as one
//!   JSONL line (selection metrics, `N_indep`/`N_dep`/`N_bf`, DIP
//!   counts, solver stats, timings).
//! * [`render`] turns a record set back into the paper's Table I /
//!   Table II / Figure 3 text — one campaign invocation reproduces all
//!   three artifacts.
//! * [`cache::Cache`] keys results by a content hash of the cell
//!   descriptor *and the generated netlist text*, so re-running an
//!   unchanged grid only re-executes changed cells.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod journal;
pub mod json;
pub mod record;
pub mod render;
pub mod runner;
pub mod wire;

use std::path::PathBuf;
use std::time::Duration;

use sttlock_core::SelectionAlgorithm;
use sttlock_fault::FaultModel;

pub use journal::{Journal, JournalEntry, OpenedJournal, JOURNAL_SCHEMA_VERSION};
pub use record::{AttackMetrics, FlowMetrics, RepairMetrics, RunRecord, RunStatus};
pub use runner::{cell_journal_key, execute, CampaignResult, CellExecutor};

/// One circuit of the grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CircuitSpec {
    /// A named ISCAS '89 profile (`s27` … `s38584`).
    Profile(String),
    /// An ad-hoc profile, for smoke grids and sweeps.
    Custom {
        /// Label used in records and for the per-circuit seed stream.
        name: String,
        /// Combinational gate count.
        gates: usize,
        /// Flip-flop count.
        dffs: usize,
        /// Primary input count.
        inputs: usize,
        /// Primary output count.
        outputs: usize,
    },
    /// A synthetic cell that panics mid-run — exercises the runner's
    /// fault isolation (the panic must surface as a failed record, not
    /// a process abort).
    InjectPanic,
    /// A synthetic cell that never finishes — exercises the per-run
    /// timeout.
    InjectTimeout,
    /// A synthetic cell that panics *while holding the shared
    /// generation-pool lock* — exercises poisoned-mutex recovery (the
    /// poison must not sink sibling cells).
    InjectPoison,
}

impl CircuitSpec {
    /// The label recorded for this circuit.
    pub fn name(&self) -> &str {
        match self {
            CircuitSpec::Profile(name) => name,
            CircuitSpec::Custom { name, .. } => name,
            CircuitSpec::InjectPanic => "inject-panic",
            CircuitSpec::InjectTimeout => "inject-timeout",
            CircuitSpec::InjectPoison => "inject-poison",
        }
    }

    /// Whether this is one of the synthetic fault-injection cells.
    pub fn is_injected(&self) -> bool {
        matches!(
            self,
            CircuitSpec::InjectPanic | CircuitSpec::InjectTimeout | CircuitSpec::InjectPoison
        )
    }
}

/// Which attack (if any) runs after the flow in a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackKind {
    /// Flow only: overheads, selection time, security estimates.
    None,
    /// The sensitization attack (paper Section V).
    Sensitization,
    /// The full-scan oracle-guided SAT attack.
    Sat {
        /// DIP-iteration limit (0 = unlimited).
        max_dips: usize,
    },
    /// The no-scan sequential SAT attack.
    SequentialSat {
        /// Unroll bound in clock cycles.
        frames: usize,
        /// DIP-iteration limit (0 = unlimited).
        max_dips: usize,
    },
}

impl AttackKind {
    /// Stable short tag used in records and cache keys.
    pub fn tag(&self) -> &'static str {
        match self {
            AttackKind::None => "none",
            AttackKind::Sensitization => "sens",
            AttackKind::Sat { .. } => "sat",
            AttackKind::SequentialSat { .. } => "seq",
        }
    }

    /// Full descriptor, including limits, for cache keying.
    pub fn descriptor(&self) -> String {
        match self {
            AttackKind::None => "none".into(),
            AttackKind::Sensitization => "sens".into(),
            AttackKind::Sat { max_dips } => format!("sat(max_dips={max_dips})"),
            AttackKind::SequentialSat { frames, max_dips } => {
                format!("seq(frames={frames},max_dips={max_dips})")
            }
        }
    }
}

/// Optional overrides of the flow's selection tunables — the
/// ablation-sweep axis. `None` fields keep the paper defaults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SelectionOverrides {
    /// LUT budget for independent selection.
    pub independent_gates: Option<usize>,
    /// Targeted-path count for parametric-aware selection.
    pub parametric_paths: Option<usize>,
}

impl SelectionOverrides {
    /// Stable descriptor for records and cache keys.
    pub fn descriptor(&self) -> String {
        match (self.independent_gates, self.parametric_paths) {
            (None, None) => "default".into(),
            (Some(g), None) => format!("indep_gates={g}"),
            (None, Some(p)) => format!("paths={p}"),
            (Some(g), Some(p)) => format!("indep_gates={g},paths={p}"),
        }
    }
}

/// The declarative run grid plus its execution budget.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Circuits, in presentation order.
    pub circuits: Vec<CircuitSpec>,
    /// Selection algorithms per circuit.
    pub algorithms: Vec<SelectionAlgorithm>,
    /// Seeds per (circuit, algorithm).
    pub seeds: Vec<u64>,
    /// Attacks per (circuit, algorithm, seed).
    pub attacks: Vec<AttackKind>,
    /// Selection-tunable overrides per cell (the ablation axis).
    pub overrides: Vec<SelectionOverrides>,
    /// Fault models per cell (the robustness axis). The default single
    /// no-op model adds no grid cells beyond the fault-free run and
    /// leaves every record byte-identical to a campaign without the
    /// axis.
    pub faults: Vec<FaultModel>,
    /// Per-run wall-clock budget.
    pub timeout: Duration,
    /// Worker threads (0 = available parallelism).
    pub jobs: usize,
    /// Result-cache directory (`None` disables caching).
    pub cache_dir: Option<PathBuf>,
    /// Append every freshly executed record to this JSONL journal as it
    /// completes (`None` disables journaling). Lines are flushed per
    /// record, so a killed campaign leaves a readable journal behind.
    pub journal: Option<PathBuf>,
    /// Replay the journal before executing: cells whose last journal
    /// entry is `ok` are served from the journal verbatim; failed,
    /// panicked, and timed-out cells re-execute.
    pub resume: bool,
}

impl Default for CampaignSpec {
    fn default() -> Self {
        CampaignSpec {
            circuits: Vec::new(),
            algorithms: SelectionAlgorithm::ALL.to_vec(),
            seeds: vec![42],
            attacks: vec![AttackKind::None],
            overrides: vec![SelectionOverrides::default()],
            faults: vec![FaultModel::default()],
            timeout: Duration::from_secs(600),
            jobs: 0,
            cache_dir: None,
            journal: None,
            resume: false,
        }
    }
}

/// One cell of the enumerated grid.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// The circuit to generate.
    pub circuit: CircuitSpec,
    /// The selection algorithm.
    pub algorithm: SelectionAlgorithm,
    /// The user-facing seed.
    pub seed: u64,
    /// The attack to run after the flow.
    pub attack: AttackKind,
    /// Selection-tunable overrides for this cell.
    pub overrides: SelectionOverrides,
    /// The fault model injected into this cell's programmed part.
    pub fault: FaultModel,
}

impl CampaignSpec {
    /// Enumerates the grid in deterministic order: circuits outermost
    /// (presentation order), then overrides, algorithms, seeds, attacks,
    /// faults innermost.
    ///
    /// Fault-injection circuits are *not* crossed with the full grid —
    /// each contributes exactly one cell (first algorithm, first seed,
    /// no attack, no device faults): one row per injected fault is
    /// enough to prove isolation, and crossing them would only multiply
    /// noise rows.
    pub fn cells(&self) -> Vec<Cell> {
        let default_overrides = [SelectionOverrides::default()];
        let overrides: &[SelectionOverrides] = if self.overrides.is_empty() {
            &default_overrides
        } else {
            &self.overrides
        };
        let default_faults = [FaultModel::default()];
        let faults: &[FaultModel] = if self.faults.is_empty() {
            &default_faults
        } else {
            &self.faults
        };
        let mut out = Vec::new();
        for circuit in &self.circuits {
            if circuit.is_injected() {
                out.push(Cell {
                    circuit: circuit.clone(),
                    algorithm: *self
                        .algorithms
                        .first()
                        .unwrap_or(&SelectionAlgorithm::Independent),
                    seed: self.seeds.first().copied().unwrap_or(42),
                    attack: AttackKind::None,
                    overrides: overrides[0],
                    fault: FaultModel::default(),
                });
                continue;
            }
            for &cell_overrides in overrides {
                for &algorithm in &self.algorithms {
                    for &seed in &self.seeds {
                        for &attack in &self.attacks {
                            for &fault in faults {
                                out.push(Cell {
                                    circuit: circuit.clone(),
                                    algorithm,
                                    seed,
                                    attack,
                                    overrides: cell_overrides,
                                    fault,
                                });
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// Derives the circuit-generation seed for one benchmark from the
/// user-facing campaign seed.
///
/// This is the FNV-1a stream-splitting scheme the reproduction harness
/// has always used (`sttlock-bench`), hoisted here so the campaign
/// engine and the thin table binaries generate byte-identical circuits:
/// the EXPERIMENTS.md numbers depend on it.
pub fn circuit_seed(seed: u64, circuit_name: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in circuit_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    seed ^ h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_enumeration_is_a_full_cross_product() {
        let spec = CampaignSpec {
            circuits: vec![
                CircuitSpec::Profile("s27".into()),
                CircuitSpec::Profile("s298".into()),
            ],
            algorithms: SelectionAlgorithm::ALL.to_vec(),
            seeds: vec![1, 2],
            attacks: vec![AttackKind::None, AttackKind::Sat { max_dips: 100 }],
            ..CampaignSpec::default()
        };
        let cells = spec.cells();
        assert_eq!(cells.len(), 2 * 3 * 2 * 2);
        // Circuits are outermost: presentation order is preserved.
        assert!(cells[..12].iter().all(|c| c.circuit.name() == "s27"));
        assert!(cells[12..].iter().all(|c| c.circuit.name() == "s298"));
    }

    #[test]
    fn injected_circuits_contribute_one_cell_each() {
        let spec = CampaignSpec {
            circuits: vec![
                CircuitSpec::InjectPanic,
                CircuitSpec::Profile("s27".into()),
                CircuitSpec::InjectTimeout,
            ],
            seeds: vec![1, 2],
            ..CampaignSpec::default()
        };
        let cells = spec.cells();
        // 1 + 3*2 + 1
        assert_eq!(cells.len(), 8);
        assert_eq!(cells[0].circuit, CircuitSpec::InjectPanic);
        assert_eq!(cells[0].attack, AttackKind::None);
        assert_eq!(cells[7].circuit, CircuitSpec::InjectTimeout);
    }

    #[test]
    fn circuit_seed_matches_the_harness_scheme() {
        // Distinct per circuit, stable across calls, seed folds in by xor.
        assert_ne!(circuit_seed(42, "s641"), circuit_seed(42, "s820"));
        assert_eq!(circuit_seed(7, "s27"), circuit_seed(7, "s27"));
        assert_eq!(
            circuit_seed(0, "s27") ^ circuit_seed(5, "s27"),
            5,
            "the seed xors into the name hash"
        );
    }

    #[test]
    fn the_override_axis_multiplies_the_grid() {
        let spec = CampaignSpec {
            circuits: vec![CircuitSpec::Profile("s27".into())],
            algorithms: vec![SelectionAlgorithm::Independent],
            overrides: vec![
                SelectionOverrides {
                    independent_gates: Some(1),
                    ..SelectionOverrides::default()
                },
                SelectionOverrides {
                    independent_gates: Some(2),
                    ..SelectionOverrides::default()
                },
            ],
            ..CampaignSpec::default()
        };
        let cells = spec.cells();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].overrides.descriptor(), "indep_gates=1");
        assert_eq!(cells[1].overrides.descriptor(), "indep_gates=2");
        assert_eq!(SelectionOverrides::default().descriptor(), "default");
        assert_eq!(
            SelectionOverrides {
                independent_gates: Some(3),
                parametric_paths: Some(4),
            }
            .descriptor(),
            "indep_gates=3,paths=4"
        );
    }

    #[test]
    fn the_fault_axis_multiplies_the_grid_but_not_injected_cells() {
        let spec = CampaignSpec {
            circuits: vec![CircuitSpec::Profile("s27".into()), CircuitSpec::InjectPanic],
            algorithms: vec![SelectionAlgorithm::Independent],
            faults: vec![FaultModel::default(), FaultModel::write_failures(0.05)],
            ..CampaignSpec::default()
        };
        let cells = spec.cells();
        // s27 × 2 fault models + one injected cell.
        assert_eq!(cells.len(), 3);
        assert!(cells[0].fault.is_noop());
        assert_eq!(cells[1].fault.descriptor(), "wf=0.05");
        assert!(cells[2].fault.is_noop(), "injected cells stay fault-free");
    }

    #[test]
    fn attack_descriptors_pin_their_limits() {
        assert_eq!(
            AttackKind::Sat { max_dips: 9 }.descriptor(),
            "sat(max_dips=9)"
        );
        assert_eq!(
            AttackKind::SequentialSat {
                frames: 4,
                max_dips: 0
            }
            .descriptor(),
            "seq(frames=4,max_dips=0)"
        );
        assert_eq!(AttackKind::Sensitization.tag(), "sens");
    }
}
