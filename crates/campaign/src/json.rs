//! Minimal JSON support for the campaign's JSONL run logs and the
//! on-disk result cache.
//!
//! The build environment is fully offline, so `serde_json` is not an
//! option; this module hand-rolls the tiny subset the campaign needs —
//! a value tree, a writer and a recursive-descent parser. Numbers are
//! carried as `f64` (every quantity the campaign logs fits in the 53-bit
//! mantissa) and non-finite values are rejected on write rather than
//! silently emitting invalid JSON.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are sorted (BTreeMap) so serialized records are
    /// byte-stable across runs — a property the cache tests rely on.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object member lookup (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload truncated to `u64`, if this is a number.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().map(|n| n as u64)
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Parses one JSON document, requiring it to span the whole input.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError {
                pos: p.pos,
                message: "trailing garbage after document".into(),
            });
        }
        Ok(v)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                // Rust's f64 Display never emits exponent notation and
                // always round-trips; NaN/inf would not be valid JSON.
                debug_assert!(n.is_finite(), "non-finite number in JSON output");
                if n.is_finite() {
                    write!(f, "{n}")
                } else {
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// A parse failure with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub pos: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            pos: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("bad number `{text}`")))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the whole run up to the next quote or
                    // escape in one slice. Validating per character made
                    // this quadratic (`from_utf8` over the entire tail
                    // for every byte), which dominated large payloads
                    // like serve's bench-carrying request bodies.
                    let start = self.pos;
                    while !matches!(self.peek(), None | Some(b'"' | b'\\')) {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-3.5", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.to_string(), text);
        }
    }

    #[test]
    fn nested_values_round_trip() {
        let v = Json::obj([
            ("name", Json::from("s27")),
            ("seed", Json::from(42u64)),
            ("ok", Json::from(true)),
            ("tags", Json::Arr(vec![Json::from("a"), Json::Null])),
        ]);
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
        // Keys are sorted: byte-stable output.
        assert_eq!(
            text,
            r#"{"name":"s27","ok":true,"seed":42,"tags":["a",null]}"#
        );
    }

    #[test]
    fn strings_escape_and_unescape() {
        let v = Json::Str("line\nquote\" tab\t back\\ unit\u{1}".into());
        let text = v.to_string();
        assert!(text.contains("\\n") && text.contains("\\u0001"));
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn errors_carry_positions() {
        let e = Json::parse("{\"a\": }").unwrap_err();
        assert_eq!(e.pos, 6);
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("12 34")
            .unwrap_err()
            .message
            .contains("trailing"));
    }

    #[test]
    fn accessors_select_the_right_variants() {
        let v = Json::parse(r#"{"n": 4.5, "s": "x", "b": false}"#).unwrap();
        assert_eq!(v.get("n").and_then(Json::as_f64), Some(4.5));
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(4));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Null.get("x"), None);
    }
}
