//! Grid execution: work-stealing parallelism with per-cell fault
//! isolation.
//!
//! The worker pool is [`sttlock_exec::scoped_map`]: scoped OS threads
//! pulling cell indices from a shared atomic counter, each index
//! wrapped in `catch_unwind` (rayon is not available offline). Each
//! cell additionally runs on its own *detached* thread so the worker
//! can abandon it on timeout:
//!
//! * a panic inside the cell is contained by `catch_unwind` and becomes
//!   a [`RunStatus::Panicked`] record (the stock panic hook still
//!   prints the backtrace to stderr — the campaign does not install a
//!   global hook, which would race with concurrent tests); a panic that
//!   poisons a shared lock (journal, generation pool) is recovered from
//!   the `PoisonError` — the protected data is a file handle or an
//!   insert-only map, both valid after an unwind — and counted as
//!   `campaign.poison_recovered`;
//! * a cell that exceeds the budget becomes [`RunStatus::TimedOut`];
//!   the runner abandons its detached thread but cancels the cell's
//!   [`Budget`], checked between stages (and inside every timing-oracle
//!   and repair loop), so the thread winds down promptly instead of
//!   burning CPU until process exit. Live abandoned threads are visible
//!   as the `campaign.abandoned_cells` gauge.
//!
//! The per-cell budget carries **no deadline** — only the runner's
//! timeout watchdog decides when a cell is late, so the timed-out
//! record is always the runner's [`RunStatus::TimedOut`] row and never
//! races a cell-side budget error at the boundary.

use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use sttlock_attack::estimate;
use sttlock_attack::sat_attack::{self, SatAttackConfig, SequentialAttackConfig};
use sttlock_attack::sensitization::{self, SensitizationConfig};
use sttlock_benchgen::{profiles, Profile};
use sttlock_core::{verify_and_repair_budgeted, Flow, FlowError, FlowOutcome, RepairConfig};
use sttlock_exec::Budget;
use sttlock_fault::FaultInjector;
use sttlock_netlist::{bench_format, Netlist};
use sttlock_techlib::Library;

use crate::cache::{cell_key, Cache};
use crate::journal::{self, Journal, JournalEntry, JOURNAL_SCHEMA_VERSION};
use crate::record::{AttackMetrics, FlowMetrics, RepairMetrics, RunRecord, RunStatus};
use crate::{circuit_seed, AttackKind, CampaignSpec, Cell, CircuitSpec};

/// Shared generation pool: one immutable netlist per (circuit, seed),
/// built once and handed to every grid cell that needs it. The grid
/// crosses circuits×seeds with algorithms×attacks, so without the pool
/// each circuit is regenerated for every algorithm/attack combination.
/// Only successful generations are cached — the fault-injection specs
/// panic/hang inside the isolation boundary before reaching the pool.
type GenPool = Arc<Mutex<HashMap<(String, u64), Arc<Netlist>>>>;

/// Locks a campaign mutex, recovering the guard when a panicking cell
/// poisoned it. Every campaign mutex protects data that stays valid
/// across an unwind (an append-only file handle, `Option` result slots,
/// an insert-only pool), so recovery is always sound; each recovery is
/// counted as `campaign.poison_recovered`.
fn recover_lock<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
    lock.lock().unwrap_or_else(|poisoned| {
        sttlock_obs::counter("campaign.poison_recovered", 1);
        poisoned.into_inner()
    })
}

/// Everything a finished campaign reports.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignResult {
    /// One record per grid cell, in grid order.
    pub records: Vec<RunRecord>,
    /// Wall-clock time of the whole campaign.
    pub wall: Duration,
    /// What opening the journal recovered (`None` when the campaign
    /// ran without a journal or the journal failed to open). A torn
    /// tail from a crashed predecessor shows up here as dropped bytes.
    pub journal_recovery: Option<sttlock_store::RecoveryReport>,
}

impl CampaignResult {
    /// Number of records served from the cache.
    pub fn cache_hits(&self) -> usize {
        self.records.iter().filter(|r| r.cached).count()
    }

    /// Number of records that completed with metrics.
    pub fn ok_count(&self) -> usize {
        self.records.iter().filter(|r| r.status.is_ok()).count()
    }

    /// The records serialized as JSONL (one record per line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.to_json().to_string());
            out.push('\n');
        }
        out
    }
}

/// Executes the campaign grid.
///
/// Failures never propagate out: every cell ends as a [`RunRecord`],
/// and record order matches [`CampaignSpec::cells`] regardless of which
/// worker finished first.
///
/// With [`CampaignSpec::journal`] set, every freshly executed record is
/// appended (and flushed) to the journal the moment it completes; with
/// [`CampaignSpec::resume`] additionally set, cells whose latest journal
/// entry is `ok` are replayed from the journal verbatim instead of
/// re-executing — crash recovery costs only the cells that were in
/// flight or had failed when the previous campaign died.
pub fn execute(spec: &CampaignSpec) -> CampaignResult {
    let start = Instant::now();
    let cells = spec.cells();
    let cache = spec
        .cache_dir
        .as_ref()
        .and_then(|dir| Cache::open(dir.clone()));

    // Open the journal through the store: the framed log heals any
    // torn or corrupt tail (a crash mid-append costs exactly the torn
    // record) and hands back every intact entry for replay.
    let mut replay: HashMap<String, JournalEntry> = HashMap::new();
    let mut journal_recovery = None;
    let journal: Option<Mutex<Journal>> = match &spec.journal {
        Some(path) => match Journal::open(path) {
            Ok(opened) => {
                journal_recovery = Some(opened.recovery.clone());
                if spec.resume {
                    replay = journal::replay_map(opened.entries);
                }
                Some(Mutex::new(opened.journal))
            }
            Err(_) => {
                // Match the seed behavior for an unopenable journal
                // path: run the campaign, skip journaling.
                sttlock_obs::counter("campaign.journal_open_failed", 1);
                None
            }
        },
        None => None,
    };

    let workers = if spec.jobs > 0 {
        spec.jobs
    } else {
        thread::available_parallelism().map_or(1, |n| n.get())
    }
    .min(cells.len().max(1));

    let pool: GenPool = Arc::new(Mutex::new(HashMap::new()));

    let root = sttlock_obs::span!(
        "campaign.execute",
        cells = cells.len() as u64,
        workers = workers as u64
    );
    let ctx = sttlock_obs::current_context();

    // The exec runtime's work-stealing map: workers pull cell indices
    // from a shared counter, each index is isolated by `catch_unwind`,
    // and results come back in grid order. The cell body has its own
    // isolation boundary (`run_cell_isolated`); the map's per-index
    // guard covers the worker's bookkeeping — span close, journal
    // append — where a panic (e.g. a collector sink throwing on span
    // close) must cost at most this one slot, not unwind the scope.
    let outcomes = sttlock_exec::scoped_map(workers, cells.len(), |i| {
        let _adopted = sttlock_obs::adopt(ctx);
        let cell = &cells[i];
        let mut cell_span = sttlock_obs::span!(
            "campaign.cell",
            circuit = cell.circuit.name(),
            algorithm = cell.algorithm.to_string(),
            seed = cell.seed,
            queue_us = start.elapsed().as_micros() as u64,
        );
        let record = match replay.get(&cell_journal_key(cell)) {
            Some(entry)
                if entry.schema == JOURNAL_SCHEMA_VERSION
                    && entry.record.status.is_ok()
                    && entry.record.flow.is_some() =>
            {
                cell_span.record("replayed", true);
                entry.record.clone()
            }
            hit => {
                let r = match hit {
                    // An ok entry that must not be replayed: either it
                    // was recorded under a different journal schema
                    // (its CRC is fine — the *format* is what skewed),
                    // or it is missing the flow metrics every consumer
                    // of ok rows expects (an older format or a hand
                    // edit). Replaying would feed stale or `None` data
                    // downstream; degrade to a structured per-cell
                    // failure instead.
                    Some(entry) if entry.record.status.is_ok() => {
                        sttlock_obs::counter("campaign.skewed_replays", 1);
                        let message = if entry.schema != JOURNAL_SCHEMA_VERSION {
                            format!(
                                "journal entry is version-skewed: recorded under journal \
                                 schema v{} but this build writes v{}; re-run this cell \
                                 without --resume",
                                entry.schema, JOURNAL_SCHEMA_VERSION
                            )
                        } else {
                            "journal entry is version-skewed: ok status without flow \
                             metrics; re-run this cell without --resume"
                                .to_owned()
                        };
                        let mut r = RunRecord::failure(
                            cell.circuit.name(),
                            &cell.algorithm.to_string(),
                            cell.seed,
                            cell.attack.tag(),
                            RunStatus::Failed(message),
                        );
                        r.config = cell.overrides.descriptor();
                        if !cell.fault.is_noop() {
                            r.fault = cell.fault.descriptor();
                        }
                        r
                    }
                    _ => run_cell_isolated(cell, spec.timeout, cache.as_ref(), &pool),
                };
                if let Some(journal) = &journal {
                    let _ = recover_lock(journal).append(&r);
                }
                r
            }
        };
        cell_span.record("status", record.status.tag());
        record
    });
    drop(root);

    let slots = outcomes
        .into_iter()
        .map(|slot| match slot {
            Ok(record) => Some(record),
            Err(_) => {
                sttlock_obs::counter("campaign.worker_panic", 1);
                None
            }
        })
        .collect();
    CampaignResult {
        records: finalize_records(&cells, slots),
        wall: start.elapsed(),
        journal_recovery,
    }
}

/// Pairs each grid cell with its result slot. A worker that died
/// between claiming a cell and filling its slot (the cell body is
/// isolated, but the worker's own bookkeeping can still unwind) leaves
/// a `None`; that becomes a structured failure record instead of an
/// abort, so the grid invariant — one record per cell, in grid order —
/// holds unconditionally. Each synthesized record is counted as
/// `campaign.lost_records`.
fn finalize_records(cells: &[Cell], slots: Vec<Option<RunRecord>>) -> Vec<RunRecord> {
    cells
        .iter()
        .zip(slots)
        .map(|(cell, slot)| {
            slot.unwrap_or_else(|| {
                sttlock_obs::counter("campaign.lost_records", 1);
                let mut r = RunRecord::failure(
                    cell.circuit.name(),
                    &cell.algorithm.to_string(),
                    cell.seed,
                    cell.attack.tag(),
                    RunStatus::Failed("worker thread died before recording this cell".to_owned()),
                );
                r.config = cell.overrides.descriptor();
                if !cell.fault.is_noop() {
                    r.fault = cell.fault.descriptor();
                }
                r
            })
        })
        .collect()
}

/// An execute-one entry point for external schedulers (the cluster
/// worker): the same isolation, caching and generation-pool reuse as a
/// full [`execute`] run, held open across independent dispatches so
/// repeated cells hit the same reuse paths a local campaign would.
pub struct CellExecutor {
    cache: Option<Cache>,
    pool: GenPool,
}

impl CellExecutor {
    /// Opens the executor, warm-loading the persistent result cache
    /// when a directory is given (`None`, or an unopenable directory,
    /// disables caching exactly like [`CampaignSpec::cache_dir`]).
    pub fn new(cache_dir: Option<std::path::PathBuf>) -> CellExecutor {
        CellExecutor {
            cache: cache_dir.and_then(Cache::open),
            pool: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// Runs one cell under the same fault-isolation contract as a grid
    /// run: the result is always a record — panics, hangs and failures
    /// become their structured statuses, never an unwind.
    pub fn run(&self, cell: &Cell, timeout: Duration) -> RunRecord {
        run_cell_isolated(cell, timeout, self.cache.as_ref(), &self.pool)
    }
}

/// Runs one cell on a detached thread with a wall-clock budget.
///
/// On timeout the thread is abandoned, not killed: the runner cancels
/// the cell's [`Budget`], which the cell checks between stages and
/// inside every timing-oracle, repair and attack loop, so the thread
/// winds down at the next check. The `campaign.abandoned_cells` gauge
/// is incremented *before* the budget is cancelled and decremented by
/// the cell thread once it observes the cancellation, so the gauge
/// never goes negative and drains to zero when every abandoned thread
/// has exited.
fn run_cell_isolated(
    cell: &Cell,
    timeout: Duration,
    cache: Option<&Cache>,
    pool: &GenPool,
) -> RunRecord {
    let start = Instant::now();
    let (tx, rx) = mpsc::channel();
    // Deliberately cancel-only (no deadline): the runner's watchdog
    // below is the sole judge of lateness, so the recorded status can
    // never race between its TimedOut row and a cell-side budget error.
    let budget = Budget::unbounded();
    let owned_cell = cell.clone();
    let owned_cache = cache.cloned();
    let owned_pool = Arc::clone(pool);
    let owned_budget = budget.clone();
    let ctx = sttlock_obs::current_context();
    thread::spawn(move || {
        let _adopted = sttlock_obs::adopt(ctx);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            run_cell(
                &owned_cell,
                owned_cache.as_ref(),
                &owned_pool,
                &owned_budget,
            )
        }));
        // The receiver may have given up (timeout); that is fine.
        let _ = tx.send(result);
        if owned_budget.is_cancelled() {
            sttlock_obs::gauge("campaign.abandoned_cells", -1);
        }
    });
    match rx.recv_timeout(timeout) {
        Ok(Ok(record)) => record,
        Ok(Err(payload)) => {
            sttlock_obs::counter("campaign.panic", 1);
            let mut r = RunRecord::failure(
                cell.circuit.name(),
                &cell.algorithm.to_string(),
                cell.seed,
                cell.attack.tag(),
                RunStatus::Panicked(panic_message(payload)),
            );
            r.config = cell.overrides.descriptor();
            r.wall_ms = start.elapsed().as_millis() as u64;
            r
        }
        Err(_) => {
            sttlock_obs::counter("campaign.timeout", 1);
            sttlock_obs::gauge("campaign.abandoned_cells", 1);
            budget.cancel();
            let mut r = RunRecord::failure(
                cell.circuit.name(),
                &cell.algorithm.to_string(),
                cell.seed,
                cell.attack.tag(),
                RunStatus::TimedOut,
            );
            r.config = cell.overrides.descriptor();
            r.wall_ms = timeout.as_millis() as u64;
            r
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// The cell's identity under [`journal::journal_key`] — the key the
/// resume journal, and the cluster's dispatch journal, index cells by.
pub fn cell_journal_key(cell: &Cell) -> String {
    journal::journal_key(
        cell.circuit.name(),
        &cell.algorithm.to_string(),
        cell.seed,
        cell.attack.tag(),
        &cell.overrides.descriptor(),
        &cell.fault.descriptor(),
    )
}

/// Generates the circuit for a cell (the fault-injection cells fault
/// here, inside the isolation boundary), serving repeats of the same
/// (circuit, seed) pair from the shared pool.
///
/// The pool key includes the full spec debug form, not just the name:
/// two `Custom` specs sharing a name but differing in shape must not
/// collide. The lock is never held across generation, so concurrent
/// first-generations of the same pair may race — generation is
/// deterministic per (spec, seed), making the duplicate work harmless.
fn generate(
    circuit: &CircuitSpec,
    seed: u64,
    pool: &GenPool,
    budget: &Budget,
) -> Result<Arc<Netlist>, String> {
    let key = (format!("{circuit:?}"), seed);
    if let Some(hit) = recover_lock(pool).get(&key) {
        return Ok(Arc::clone(hit));
    }
    let profile = match circuit {
        CircuitSpec::Profile(name) => {
            profiles::by_name(name).ok_or_else(|| format!("unknown benchmark profile `{name}`"))?
        }
        CircuitSpec::Custom {
            gates,
            dffs,
            inputs,
            outputs,
            ..
        } => Profile::custom("custom", *gates, *dffs, *inputs, *outputs),
        CircuitSpec::InjectPanic => panic!("injected panic cell"),
        CircuitSpec::InjectTimeout => {
            // Never finishes on its own; once the runner abandons this
            // thread and cancels its budget, the cancel-aware sleep
            // returns within ~10 ms instead of dozing for an hour.
            while budget.sleep(Duration::from_secs(3600)) {}
            return Err("cancelled after timeout".to_owned());
        }
        CircuitSpec::InjectPoison => {
            // Poison the pool lock the way a real generation bug would:
            // panic while holding the guard. The cell's `catch_unwind`
            // contains the panic; siblings must recover the lock.
            let _guard = recover_lock(pool);
            panic!("injected poison cell");
        }
    };
    let mut rng = StdRng::seed_from_u64(circuit_seed(seed, circuit.name()));
    let netlist = Arc::new(profile.generate(&mut rng));
    recover_lock(pool).insert(key, Arc::clone(&netlist));
    Ok(netlist)
}

/// Runs one cell to completion: generate → cache probe → flow → attack.
///
/// `budget` is the runner's cancel-only abandon budget; it is threaded
/// into every stage (flow selection, repair rounds, attack oracle
/// queries all check it) so an abandoned cell stops mid-stage. The
/// early-return record of a cancelled cell is discarded — the runner
/// already recorded the timeout row.
fn run_cell(cell: &Cell, cache: Option<&Cache>, pool: &GenPool, budget: &Budget) -> RunRecord {
    let start = Instant::now();
    let algorithm = cell.algorithm.to_string();
    let fail = |status| {
        let mut r = RunRecord::failure(
            cell.circuit.name(),
            &algorithm,
            cell.seed,
            cell.attack.tag(),
            status,
        );
        r.config = cell.overrides.descriptor();
        r.wall_ms = start.elapsed().as_millis() as u64;
        r
    };

    let netlist = {
        let _s = sttlock_obs::span!("cell.generate");
        match generate(&cell.circuit, cell.seed, pool, budget) {
            Ok(n) => n,
            Err(message) => return fail(RunStatus::Failed(message)),
        }
    };
    if budget.is_cancelled() {
        return fail(RunStatus::TimedOut);
    }

    // The key covers the cell descriptor and the generated circuit text,
    // so a generator change invalidates exactly the affected cells. The
    // fault component joins only when the model can inject something:
    // a no-op model must hit the same cache entries as a campaign with
    // no fault axis at all.
    let mut descriptor = format!(
        "{}|{}|{}|{}|{}",
        cell.circuit.name(),
        algorithm,
        cell.seed,
        cell.attack.descriptor(),
        cell.overrides.descriptor()
    );
    if !cell.fault.is_noop() {
        descriptor.push('|');
        descriptor.push_str(&cell.fault.descriptor());
    }
    let key = cell_key(&descriptor, &bench_format::write(&netlist));
    if let Some(cache) = cache {
        if let Some(mut hit) = cache.lookup(key) {
            sttlock_obs::counter("campaign.cache_hit", 1);
            hit.cached = true;
            return hit;
        }
        sttlock_obs::counter("campaign.cache_miss", 1);
    }

    let mut flow = Flow::new(Library::predictive_90nm());
    if let Some(gates) = cell.overrides.independent_gates {
        flow.selection.independent_gates = gates;
    }
    if let Some(paths) = cell.overrides.parametric_paths {
        flow.selection.parametric_paths = Some(paths);
    }
    let outcome = {
        let _s = sttlock_obs::span!("cell.flow");
        match flow.run_budgeted(&netlist, cell.algorithm, cell.seed, budget) {
            Ok(o) => o,
            // A budget trip mid-flow is the runner's abandonment, not a
            // flow defect; the record is discarded either way, but keep
            // the status honest.
            Err(FlowError::Budget(_)) => return fail(RunStatus::TimedOut),
            Err(e) => return fail(RunStatus::Failed(format!("flow failed: {e}"))),
        }
    };
    if budget.is_cancelled() {
        return fail(RunStatus::TimedOut);
    }
    let report = &outcome.report;
    let flow_metrics = FlowMetrics {
        perf_pct: report.performance_degradation_pct,
        power_pct: report.power_overhead_pct,
        leakage_pct: report.leakage_overhead_pct,
        area_pct: report.area_overhead_pct,
        stt_count: report.stt_count,
        selection_ms: report.selection_time.as_secs_f64() * 1e3,
        n_indep_log10: report.security.n_indep.log10(),
        n_dep_log10: report.security.n_dep.log10(),
        n_bf_log10: report.security.n_bf.log10(),
    };

    // The robustness leg: corrupt a clone of the programmed part, then
    // run the self-healing verify-and-repair loop against the golden
    // netlist, with the (still faulty) injector as the programming
    // channel. The pristine hybrid stays untouched for the attack leg.
    let repair = if cell.fault.is_noop() {
        None
    } else {
        let _s = sttlock_obs::span!("cell.repair");
        match run_fault(cell, &netlist, &outcome, budget) {
            Ok(m) => Some(m),
            Err(message) => {
                let mut r = fail(RunStatus::Failed(message));
                r.flow = Some(flow_metrics);
                r.gates = netlist.gate_count();
                r.fault = cell.fault.descriptor();
                return r;
            }
        }
    };
    if budget.is_cancelled() {
        return fail(RunStatus::TimedOut);
    }

    let attack_span = sttlock_obs::span!("cell.attack", kind = cell.attack.tag());
    let attack_metrics = match run_attack(cell, &outcome.hybrid, budget) {
        Ok(m) => m,
        Err(message) => {
            let mut r = fail(RunStatus::Failed(message));
            // The flow part succeeded; keep its metrics on the failure
            // row so a broken attack does not erase the overhead data.
            r.flow = Some(flow_metrics);
            r.gates = netlist.gate_count();
            r.fault = cell.fault.descriptor();
            r.repair = repair;
            return r;
        }
    };
    drop(attack_span);

    let record = RunRecord {
        circuit: cell.circuit.name().to_owned(),
        gates: netlist.gate_count(),
        algorithm,
        seed: cell.seed,
        attack: cell.attack.tag().to_owned(),
        config: cell.overrides.descriptor(),
        status: RunStatus::Ok,
        flow: Some(flow_metrics),
        attack_metrics,
        fault: cell.fault.descriptor(),
        repair,
        wall_ms: start.elapsed().as_millis() as u64,
        cached: false,
    };
    if let Some(cache) = cache {
        cache.store(key, &record);
    }
    record
}

/// Runs the cell's fault model: clones the programmed device, corrupts
/// it with a deterministic [`FaultInjector`], and drives the
/// verify-and-repair loop with that same injector as the programming
/// channel (so re-programming retries can themselves fail, and stuck
/// rows stay stuck). The fault seed derives from the circuit-generation
/// stream so every (circuit, seed, model) cell is reproducible in
/// isolation.
fn run_fault(
    cell: &Cell,
    golden: &Netlist,
    outcome: &FlowOutcome,
    budget: &Budget,
) -> Result<RepairMetrics, String> {
    let mut device = outcome.overlay.clone();
    let fault_seed = circuit_seed(cell.seed, cell.circuit.name()) ^ 0xFA17_5EED;
    let mut injector = FaultInjector::new(cell.fault, fault_seed);
    let injected = injector.corrupt(&mut device);
    let report = verify_and_repair_budgeted(
        golden,
        &mut device,
        &outcome.bitstream,
        &mut injector,
        &RepairConfig::default(),
        fault_seed,
        budget,
    )
    .map_err(|e| format!("repair failed: {e}"))?;
    let faulted = estimate::security_under_faults(&outcome.hybrid, cell.fault.row_fault_p());
    Ok(RepairMetrics {
        verdict: report.verdict.tag().to_owned(),
        faults_injected: injected.len() as u64,
        vectors_run: report.vectors_run,
        retries: report.retries,
        reprogram_attempts: report.reprogram_attempts,
        initial_mismatches: report.initial_mismatches as u64,
        residual_mismatches: report.residual_mismatches as u64,
        repaired_luts: report.repaired_luts.len() as u64,
        failed_luts: report.failed_luts.len() as u64,
        n_bf_faulted_log10: faulted.n_bf.log10(),
    })
}

/// Runs the cell's attack against the (foundry view, programmed part)
/// pair produced by the flow.
fn run_attack(
    cell: &Cell,
    hybrid: &Netlist,
    budget: &Budget,
) -> Result<Option<AttackMetrics>, String> {
    let err = |e: sttlock_attack::AttackError| format!("attack failed: {e}");
    match cell.attack {
        AttackKind::None => Ok(None),
        AttackKind::Sensitization => {
            let foundry = hybrid.redact().0;
            let mut rng = StdRng::seed_from_u64(cell.seed ^ 0xA77A_C4ED);
            let out = sensitization::run_with_budget(
                &foundry,
                hybrid,
                &SensitizationConfig::default(),
                budget,
                &mut rng,
            )
            .map_err(err)?;
            Ok(Some(AttackMetrics {
                broke: out.is_full_break(),
                test_clocks: out.test_clocks,
                sat_queries: out.sat_queries,
                ..AttackMetrics::default()
            }))
        }
        AttackKind::Sat { max_dips } => {
            let foundry = hybrid.redact().0;
            let out =
                sat_attack::run(&foundry, hybrid, &SatAttackConfig { max_dips }).map_err(err)?;
            let s = out.solver_stats;
            Ok(Some(AttackMetrics {
                broke: out.succeeded(),
                dips: out.dips as u64,
                conflicts: s.conflicts,
                decisions: s.decisions,
                propagations: s.propagations,
                restarts: s.restarts,
                learnt_clauses: s.learnt_clauses,
                ..AttackMetrics::default()
            }))
        }
        AttackKind::SequentialSat { frames, max_dips } => {
            let foundry = hybrid.redact().0;
            let cfg = SequentialAttackConfig { frames, max_dips };
            let out = sat_attack::run_sequential(&foundry, hybrid, &cfg).map_err(err)?;
            let s = out.solver_stats;
            Ok(Some(AttackMetrics {
                broke: out.bitstream.is_some(),
                dips: out.dips as u64,
                frames: out.frames as u64,
                conflicts: s.conflicts,
                decisions: s.decisions,
                propagations: s.propagations,
                restarts: s.restarts,
                learnt_clauses: s.learnt_clauses,
                ..AttackMetrics::default()
            }))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(name: &str) -> CircuitSpec {
        CircuitSpec::Custom {
            name: name.to_owned(),
            gates: 60,
            dffs: 4,
            inputs: 6,
            outputs: 4,
        }
    }

    fn quick_spec(circuits: Vec<CircuitSpec>) -> CampaignSpec {
        CampaignSpec {
            circuits,
            algorithms: vec![sttlock_core::SelectionAlgorithm::Independent],
            seeds: vec![3],
            ..CampaignSpec::default()
        }
    }

    #[test]
    fn a_small_grid_completes_with_metrics_in_order() {
        let spec = CampaignSpec {
            circuits: vec![small("tiny-a"), small("tiny-b")],
            algorithms: sttlock_core::SelectionAlgorithm::ALL.to_vec(),
            seeds: vec![3],
            jobs: 2,
            ..CampaignSpec::default()
        };
        let result = execute(&spec);
        assert_eq!(result.records.len(), 6);
        assert_eq!(result.ok_count(), 6);
        // Order matches the grid, not completion order.
        assert!(result.records[..3].iter().all(|r| r.circuit == "tiny-a"));
        for r in &result.records {
            let flow = r.flow.expect("ok cells carry flow metrics");
            assert!(flow.stt_count > 0);
            assert!(flow.n_bf_log10 > 0.0);
            assert_eq!(r.gates, 60);
        }
    }

    #[test]
    fn injected_panic_is_a_recorded_failure_not_an_abort() {
        let spec = quick_spec(vec![CircuitSpec::InjectPanic, small("survivor")]);
        let result = execute(&spec);
        assert_eq!(result.records.len(), 2);
        assert_eq!(
            result.records[0].status,
            RunStatus::Panicked("injected panic cell".into())
        );
        assert!(result.records[1].status.is_ok(), "siblings keep going");
    }

    /// Serializes tests that install an obs collector: the registry is
    /// process-global.
    fn obs_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn injected_timeout_is_recorded_and_the_abandoned_thread_drains() {
        let _guard = obs_lock();
        let collector = sttlock_obs::TraceCollector::new();
        sttlock_obs::install(collector.clone());
        let spec = CampaignSpec {
            timeout: Duration::from_millis(100),
            ..quick_spec(vec![CircuitSpec::InjectTimeout, small("survivor")])
        };
        let t0 = Instant::now();
        let result = execute(&spec);
        assert_eq!(result.records[0].status, RunStatus::TimedOut);
        assert!(result.records[1].status.is_ok());
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "the campaign must not wait for the runaway cell"
        );
        assert_eq!(collector.counter_value("campaign.timeout"), 1);
        // The abandoned thread observes the cancel flag and winds down:
        // the live-abandoned gauge must drain back to zero (on the seed
        // code the thread slept for an hour and the gauge never moved).
        let deadline = Instant::now() + Duration::from_secs(10);
        while collector.gauge_value("campaign.abandoned_cells") != 0 {
            assert!(
                Instant::now() < deadline,
                "abandoned cell thread never wound down"
            );
            thread::sleep(Duration::from_millis(10));
        }
        sttlock_obs::uninstall();
    }

    #[test]
    fn a_cell_poisoning_the_pool_lock_does_not_sink_sibling_cells() {
        let _guard = obs_lock();
        let collector = sttlock_obs::TraceCollector::new();
        sttlock_obs::install(collector.clone());
        // jobs: 1 runs the grid in order: the poisoning cell panics while
        // holding the generation-pool lock before any sibling touches it.
        let spec = CampaignSpec {
            jobs: 1,
            ..quick_spec(vec![
                CircuitSpec::InjectPoison,
                small("poison-survivor-a"),
                small("poison-survivor-b"),
            ])
        };
        let result = execute(&spec);
        sttlock_obs::uninstall();
        assert_eq!(
            result.records[0].status,
            RunStatus::Panicked("injected poison cell".into())
        );
        assert!(
            result.records[1].status.is_ok() && result.records[2].status.is_ok(),
            "siblings must recover the poisoned lock, not abort: {:?}",
            &result.records[1..]
        );
        assert!(collector.counter_value("campaign.poison_recovered") >= 1);
    }

    /// Reads every intact journal entry without healing the file.
    fn read_entries(path: &std::path::Path) -> Vec<JournalEntry> {
        sttlock_store::read_all::<JournalEntry>(path).unwrap().0
    }

    /// Rewrites the journal to exactly `entries`, framed.
    fn write_entries(path: &std::path::Path, entries: &[JournalEntry]) {
        use sttlock_store::Record as _;
        let mut bytes = Vec::new();
        for e in entries {
            bytes.extend_from_slice(&sttlock_store::frame::encode(&e.encode()));
        }
        std::fs::write(path, bytes).unwrap();
    }

    #[test]
    fn resume_reruns_exactly_the_cell_with_a_torn_journal_record() {
        use sttlock_store::Record as _;
        let dir = std::env::temp_dir()
            .join("sttlock-campaign-runner-tests")
            .join(format!("{}-torn", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let journal = dir.join("journal.jsonl");
        let spec = CampaignSpec {
            journal: Some(journal.clone()),
            jobs: 1,
            ..quick_spec(vec![small("torn-a"), small("torn-b"), small("torn-c")])
        };
        let first = execute(&spec);
        assert_eq!(first.ok_count(), 3);
        assert_eq!(first.journal_recovery.unwrap().records, 0, "fresh journal");
        let mut entries = read_entries(&journal);
        assert_eq!(entries.len(), 3);

        // Simulate a crash mid-append: stamp the intact records with a
        // sentinel wall time, then cut the final record's frame in half.
        let mut bytes = Vec::new();
        let torn = entries.pop().unwrap();
        for e in &mut entries {
            e.record.wall_ms = 999_999;
            bytes.extend_from_slice(&sttlock_store::frame::encode(&e.encode()));
        }
        let torn_frame = sttlock_store::frame::encode(&torn.encode());
        bytes.extend_from_slice(&torn_frame[..torn_frame.len() / 2]);
        std::fs::write(&journal, &bytes).unwrap();

        let resumed = execute(&CampaignSpec {
            resume: true,
            ..spec.clone()
        });
        assert_eq!(resumed.records.len(), 3);
        assert_eq!(resumed.records[0].wall_ms, 999_999, "intact record replays");
        assert_eq!(resumed.records[1].wall_ms, 999_999, "intact record replays");
        assert!(resumed.records[2].status.is_ok());
        assert_ne!(
            resumed.records[2].wall_ms, 999_999,
            "the torn cell re-executes"
        );
        // The recovery is structured, not silent: the resume reports
        // the dropped tail bytes.
        let recovery = resumed.journal_recovery.unwrap();
        assert_eq!(recovery.records, 2);
        assert!(recovery.dropped_bytes > 0);

        // The journal healed: the torn frame was truncated away and
        // exactly one fresh record was appended, so a second resume
        // replays all three cells verbatim and appends nothing.
        assert_eq!(read_entries(&journal).len(), 3);
        let second = execute(&CampaignSpec {
            resume: true,
            ..spec
        });
        assert!(second.records.iter().all(|r| r.status.is_ok()));
        assert!(second.journal_recovery.unwrap().is_clean());
        assert_eq!(
            read_entries(&journal).len(),
            3,
            "a fully replayed resume appends nothing"
        );
    }

    #[test]
    fn a_worker_dying_after_the_cell_still_yields_a_full_record_set() {
        let _guard = obs_lock();
        // A collector whose span-close sink panics for one specific
        // cell: the close fires between the cell producing its record
        // and the worker filling the result slot, so on the pre-fix
        // code the slot stayed empty and collection aborted the whole
        // campaign with "every cell produces a record".
        struct Bomb;
        impl sttlock_obs::Collector for Bomb {
            fn span_close(&self, span: &sttlock_obs::SpanData) {
                if span.name == "campaign.cell"
                    && span.fields.iter().any(|(k, v)| {
                        *k == "circuit"
                            && matches!(v, sttlock_obs::FieldValue::Str(s) if s == "bombed")
                    })
                {
                    panic!("collector bomb");
                }
            }
            fn counter_add(&self, _: &'static str, _: u64) {}
            fn gauge_add(&self, _: &'static str, _: i64) {}
            fn observe_us(&self, _: &'static str, _: u64) {}
        }
        sttlock_obs::install(Arc::new(Bomb));
        let spec = CampaignSpec {
            jobs: 1,
            ..quick_spec(vec![small("bombed"), small("bomb-survivor")])
        };
        let result = execute(&spec);
        sttlock_obs::uninstall();
        assert_eq!(result.records.len(), 2, "one record per cell, no abort");
        assert_eq!(result.records[0].circuit, "bombed");
        assert!(
            matches!(&result.records[0].status, RunStatus::Failed(m) if m.contains("worker")),
            "lost slots synthesize a structured failure: {:?}",
            result.records[0].status
        );
        assert!(
            result.records[1].status.is_ok(),
            "the worker keeps draining cells after the panic: {:?}",
            result.records[1].status
        );
    }

    #[test]
    fn empty_slots_synthesize_failure_records_in_grid_order() {
        let spec = quick_spec(vec![small("kept"), small("lost")]);
        let cells = spec.cells();
        let kept = RunRecord::failure("kept", "independent", 3, "none", RunStatus::Ok);
        let records = finalize_records(&cells, vec![Some(kept.clone()), None]);
        assert_eq!(records.len(), 2);
        assert_eq!(records[0], kept);
        assert_eq!(records[1].circuit, "lost");
        assert_eq!(records[1].seed, 3);
        assert!(matches!(&records[1].status, RunStatus::Failed(m) if m.contains("worker")));
    }

    #[test]
    fn resume_with_a_corrupt_journal_selection_time_renders_a_placeholder() {
        let dir = std::env::temp_dir()
            .join("sttlock-campaign-runner-tests")
            .join(format!("{}-corrupt-render", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let journal = dir.join("journal.jsonl");
        let spec = CampaignSpec {
            journal: Some(journal.clone()),
            jobs: 1,
            ..quick_spec(vec![small("corrupt-t2")])
        };
        let first = execute(&spec);
        assert_eq!(first.ok_count(), 1);

        // Hand-corrupt the journaled record the way a bad edit or torn
        // float does: a negative selection time. Resume replays `ok`
        // records verbatim, so the corrupt value reaches the renderer —
        // which pre-fix panicked inside `Duration::from_secs_f64`.
        let mut entries = read_entries(&journal);
        entries[0].record.flow.as_mut().unwrap().selection_ms = -250.0;
        write_entries(&journal, &entries);

        let resumed = execute(&CampaignSpec {
            resume: true,
            ..spec
        });
        assert_eq!(resumed.records[0].flow.unwrap().selection_ms, -250.0);
        let table = crate::render::render_table2(&resumed.records, 3);
        assert!(table.contains("(invalid)"), "{table}");
    }

    #[test]
    fn unknown_profiles_fail_without_poisoning_the_grid() {
        let spec = quick_spec(vec![CircuitSpec::Profile("s999999".into()), small("ok")]);
        let result = execute(&spec);
        assert!(matches!(&result.records[0].status, RunStatus::Failed(m) if m.contains("s999999")));
        assert!(result.records[1].status.is_ok());
    }

    #[test]
    fn rerunning_an_unchanged_grid_hits_the_cache() {
        let dir = std::env::temp_dir()
            .join("sttlock-campaign-runner-tests")
            .join(format!("{}-rerun", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = CampaignSpec {
            cache_dir: Some(dir.clone()),
            ..quick_spec(vec![small("cached-a"), small("cached-b")])
        };
        let first = execute(&spec);
        assert_eq!(first.cache_hits(), 0);
        assert_eq!(first.ok_count(), 2);

        let second = execute(&spec);
        assert_eq!(second.cache_hits(), 2, "unchanged cells must hit");
        // Cached records carry the same metrics as the original run.
        assert_eq!(second.records[0].flow, first.records[0].flow);

        // Changing the seed changes the generated circuit => full miss.
        let changed = CampaignSpec {
            seeds: vec![4],
            ..spec
        };
        assert_eq!(execute(&changed).cache_hits(), 0);
    }

    #[test]
    fn attacks_break_the_small_circuit_and_log_solver_stats() {
        let spec = CampaignSpec {
            attacks: vec![
                AttackKind::Sat { max_dips: 10_000 },
                AttackKind::SequentialSat {
                    frames: 3,
                    max_dips: 10_000,
                },
                AttackKind::Sensitization,
            ],
            ..quick_spec(vec![small("attacked")])
        };
        let result = execute(&spec);
        assert_eq!(result.ok_count(), 3);
        let sat = result.records[0].attack_metrics.unwrap();
        assert!(sat.broke, "full-scan SAT attack breaks 5 independent LUTs");
        assert!(sat.decisions > 0);
        let seq = result.records[1].attack_metrics.unwrap();
        assert_eq!(seq.frames, 3);
        let sens = result.records[2].attack_metrics.unwrap();
        assert!(sens.test_clocks > 0);
    }

    #[test]
    fn fault_cells_run_the_repair_loop_and_record_metrics() {
        let spec = CampaignSpec {
            faults: vec![sttlock_fault::FaultModel::write_failures(0.05)],
            ..quick_spec(vec![small("faulted")])
        };
        let result = execute(&spec);
        assert_eq!(result.ok_count(), 1);
        let r = &result.records[0];
        assert_eq!(r.fault, "wf=0.05");
        let m = r.repair.as_ref().expect("fault cells carry repair metrics");
        assert_eq!(m.verdict, "recovered", "write failures are repairable");
        assert!(
            m.faults_injected > 0,
            "wf=0.05 must corrupt at least one row of this hybrid"
        );
        assert!(m.vectors_run > 0);
        let flow = r.flow.expect("flow metrics still present");
        assert!(
            m.n_bf_faulted_log10 <= flow.n_bf_log10,
            "faults can only leak key bits, never add them"
        );
    }

    #[test]
    fn a_p0_fault_sweep_is_byte_identical_to_the_fault_free_path() {
        let fault_free = CampaignSpec {
            jobs: 1,
            ..quick_spec(vec![small("p0")])
        };
        let p0_sweep = CampaignSpec {
            faults: vec![sttlock_fault::FaultModel::write_failures(0.0)],
            ..fault_free.clone()
        };
        let zeroed = |spec: &CampaignSpec| {
            let mut result = execute(spec);
            for r in &mut result.records {
                // Blank the two wall-clock measurements; everything else
                // must match bit for bit.
                r.wall_ms = 0;
                if let Some(flow) = &mut r.flow {
                    flow.selection_ms = 0.0;
                }
            }
            result.to_jsonl()
        };
        assert_eq!(zeroed(&fault_free), zeroed(&p0_sweep));
        let line = zeroed(&p0_sweep);
        assert!(
            !line.contains("\"fault\":"),
            "no fault keys may leak into p=0 records: {line}"
        );
    }

    #[test]
    fn resume_replays_ok_cells_and_reruns_failures() {
        let dir = std::env::temp_dir()
            .join("sttlock-campaign-runner-tests")
            .join(format!("{}-resume", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let journal = dir.join("journal.jsonl");
        let spec = CampaignSpec {
            journal: Some(journal.clone()),
            ..quick_spec(vec![
                small("resume-a"),
                CircuitSpec::Profile("s999999".into()),
                small("resume-b"),
            ])
        };
        let first = execute(&spec);
        assert_eq!(first.ok_count(), 2);
        let mut entries = read_entries(&journal);
        assert_eq!(entries.len(), 3, "one entry per executed cell");

        // Stamp the journaled ok records with a sentinel wall time; a
        // resumed campaign must serve them verbatim from the journal.
        for e in &mut entries {
            if e.record.status.is_ok() {
                e.record.wall_ms = 999_999;
            }
        }
        write_entries(&journal, &entries);

        let resumed = execute(&CampaignSpec {
            resume: true,
            ..spec
        });
        assert_eq!(resumed.records.len(), 3);
        assert_eq!(resumed.records[0].wall_ms, 999_999, "replayed, not re-run");
        assert_eq!(resumed.records[2].wall_ms, 999_999, "replayed, not re-run");
        assert!(
            matches!(&resumed.records[1].status, RunStatus::Failed(m) if m.contains("s999999")),
            "the failed cell re-executes"
        );
        // Only the re-executed cell appended to the journal.
        assert_eq!(read_entries(&journal).len(), 4);
    }

    #[test]
    fn version_skewed_ok_journal_entries_degrade_to_structured_failures() {
        let _guard = obs_lock();
        let dir = std::env::temp_dir()
            .join("sttlock-campaign-runner-tests")
            .join(format!("{}-skewed", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let journal = dir.join("journal.jsonl");
        let spec = CampaignSpec {
            journal: Some(journal.clone()),
            jobs: 1,
            ..quick_spec(vec![small("skew-a"), small("skew-b")])
        };
        let first = execute(&spec);
        assert_eq!(first.ok_count(), 2);

        // Strip the flow metrics from one ok record the way an older
        // journal format would lack them: the status stays ok but the
        // payload no longer matches what consumers of ok rows expect.
        let mut entries = read_entries(&journal);
        entries[0].record.flow = None;
        write_entries(&journal, &entries);

        let collector = sttlock_obs::TraceCollector::new();
        sttlock_obs::install(collector.clone());
        let resumed = execute(&CampaignSpec {
            resume: true,
            ..spec
        });
        sttlock_obs::uninstall();
        assert!(
            matches!(&resumed.records[0].status, RunStatus::Failed(m) if m.contains("version-skewed")),
            "the skewed entry must degrade, not replay: {:?}",
            resumed.records[0].status
        );
        assert!(
            resumed.records[1].status.is_ok(),
            "the intact entry still replays"
        );
        assert_eq!(collector.counter_value("campaign.skewed_replays"), 1);
    }

    #[test]
    fn schema_skewed_entries_degrade_to_structured_failures() {
        let _guard = obs_lock();
        let dir = std::env::temp_dir()
            .join("sttlock-campaign-runner-tests")
            .join(format!("{}-schema-skew", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let journal = dir.join("journal.jsonl");
        let spec = CampaignSpec {
            journal: Some(journal.clone()),
            jobs: 1,
            ..quick_spec(vec![small("schema-a"), small("schema-b")])
        };
        assert_eq!(execute(&spec).ok_count(), 2);

        // Re-stamp one entry with a foreign schema version. Its CRC is
        // valid — the framing accepts it — but the recorded schema no
        // longer matches what this build writes, so `--resume` must
        // reject it as a structured failure, not replay it.
        let mut entries = read_entries(&journal);
        entries[0].schema = JOURNAL_SCHEMA_VERSION + 1;
        write_entries(&journal, &entries);

        let collector = sttlock_obs::TraceCollector::new();
        sttlock_obs::install(collector.clone());
        let resumed = execute(&CampaignSpec {
            resume: true,
            ..spec
        });
        sttlock_obs::uninstall();
        assert!(
            matches!(
                &resumed.records[0].status,
                RunStatus::Failed(m) if m.contains("version-skewed") && m.contains("schema")
            ),
            "{:?}",
            resumed.records[0].status
        );
        assert!(resumed.records[1].status.is_ok(), "intact entry replays");
        assert_eq!(collector.counter_value("campaign.skewed_replays"), 1);
    }

    #[test]
    fn a_legacy_jsonl_journal_migrates_and_resumes_as_skew_failures() {
        let dir = std::env::temp_dir()
            .join("sttlock-campaign-runner-tests")
            .join(format!("{}-legacy", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let journal = dir.join("journal.jsonl");
        let spec = CampaignSpec {
            journal: Some(journal.clone()),
            jobs: 1,
            ..quick_spec(vec![small("legacy-a")])
        };
        assert_eq!(execute(&spec).ok_count(), 1);

        // Rewrite the journal the way PR-6-era code stored it: bare
        // JSONL, no framing. Opening it must migrate in place, and the
        // migrated entries (schema 0) must refuse to replay.
        let entries = read_entries(&journal);
        let mut legacy = String::new();
        for e in &entries {
            legacy.push_str(&format!("{}\n", e.record.to_json()));
        }
        std::fs::write(&journal, &legacy).unwrap();

        let resumed = execute(&CampaignSpec {
            resume: true,
            ..spec
        });
        assert!(
            matches!(
                &resumed.records[0].status,
                RunStatus::Failed(m) if m.contains("schema v0")
            ),
            "{:?}",
            resumed.records[0].status
        );
        // The file is framed again, and the re-executed failure row was
        // appended after the migrated one.
        let after = read_entries(&journal);
        assert_eq!(after.len(), 2);
        assert_eq!(after[0].schema, 0);
        assert_eq!(after[1].schema, JOURNAL_SCHEMA_VERSION);
    }

    #[test]
    fn parallel_and_serial_grids_emit_byte_identical_jsonl() {
        // Differential check for the exec-pool worker loop: the same
        // grid on one worker and on four must produce byte-identical
        // records (modulo wall-clock fields) in identical order.
        let grid = |jobs: usize| CampaignSpec {
            jobs,
            algorithms: sttlock_core::SelectionAlgorithm::ALL.to_vec(),
            attacks: vec![AttackKind::None, AttackKind::Sensitization],
            faults: vec![
                sttlock_fault::FaultModel::default(),
                sttlock_fault::FaultModel::write_failures(0.05),
            ],
            ..quick_spec(vec![small("diff-a"), small("diff-b")])
        };
        let zeroed = |spec: &CampaignSpec| {
            let mut result = execute(spec);
            for r in &mut result.records {
                r.wall_ms = 0;
                if let Some(flow) = &mut r.flow {
                    flow.selection_ms = 0.0;
                }
            }
            result.to_jsonl()
        };
        let serial = zeroed(&grid(1));
        let parallel = zeroed(&grid(4));
        assert_eq!(serial, parallel);
        assert_eq!(serial.lines().count(), 24);
    }

    #[test]
    fn jsonl_output_has_one_valid_line_per_cell() {
        let spec = quick_spec(vec![CircuitSpec::InjectPanic, small("lines")]);
        let result = execute(&spec);
        let jsonl = result.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let v = crate::json::Json::parse(line).unwrap();
            assert!(RunRecord::from_json(&v).is_some(), "{line}");
        }
    }
}
