//! The campaign resume journal: [`RunRecord`]s wrapped in a
//! schema-versioned envelope, stored on the framed, checksummed
//! [`sttlock_store::RecordLog`].
//!
//! Each payload is JSON — `{"schema":N,"record":{...}}` — inside the
//! store's CRC-checked frame, so a crash mid-append costs exactly the
//! torn record (healed by the store at the next open), a flipped bit
//! fails CRC instead of replaying garbage, and a schema bump is
//! visible per-entry rather than guessed from field shapes.
//!
//! Journals written before the store existed were bare JSONL. Opening
//! one migrates it in place: each parseable line becomes a schema-0
//! entry (schema 0 ≠ [`JOURNAL_SCHEMA_VERSION`], so `--resume` rejects
//! those rows as structured version-skew failures instead of trusting
//! pre-framing data), and the rewrite itself is atomic.

use std::collections::HashMap;
use std::io;
use std::path::Path;

use sttlock_store::{FsyncPolicy, OpenedLog, Record, RecordLog, RecoveryReport};

use crate::json::Json;
use crate::record::RunRecord;

/// Current journal schema. Bump when [`RunRecord`]'s JSON shape
/// changes incompatibly; entries recorded under any other version are
/// rejected on `--resume` as per-cell failures rather than replayed.
pub const JOURNAL_SCHEMA_VERSION: u32 = 1;

/// Legacy bare-JSONL journals migrate as this schema.
pub const LEGACY_SCHEMA_VERSION: u32 = 0;

/// One journal entry: a run record plus the schema it was written
/// under. Entries whose payload is valid JSON but not a decodable
/// record are dropped by the store's `undecodable` path.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry {
    /// The schema version recorded with the entry.
    pub schema: u32,
    /// The journaled record.
    pub record: RunRecord,
}

impl Record for JournalEntry {
    fn encode(&self) -> Vec<u8> {
        Json::obj([
            ("schema", Json::from(u64::from(self.schema))),
            ("record", self.record.to_json()),
        ])
        .to_string()
        .into_bytes()
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        let text = std::str::from_utf8(bytes).ok()?;
        let v = Json::parse(text).ok()?;
        let schema = v.get("schema")?.as_u64()? as u32;
        let record = RunRecord::from_json(v.get("record")?)?;
        Some(JournalEntry { schema, record })
    }
}

/// An open journal positioned for appends.
pub struct Journal {
    log: RecordLog<JournalEntry>,
}

/// The result of opening a journal: the appendable journal, the
/// entries already in it, and what recovery found.
pub struct OpenedJournal {
    /// The journal, ready for [`Journal::append`].
    pub journal: Journal,
    /// Recovered entries, in append order.
    pub entries: Vec<JournalEntry>,
    /// The store's recovery report (tail heals, undecodable counts).
    pub recovery: RecoveryReport,
    /// Whether a legacy bare-JSONL journal was migrated in place.
    pub migrated_legacy: bool,
}

impl Journal {
    /// Opens (creating if absent) the journal at `path`, healing any
    /// torn tail and migrating a legacy JSONL file in place.
    ///
    /// Fsync policy is [`FsyncPolicy::Always`]: a journal row exists to
    /// survive `kill -9`, so every append is durable before the worker
    /// moves on.
    pub fn open(path: &Path) -> io::Result<OpenedJournal> {
        let migrated_legacy = migrate_legacy(path)?;
        let OpenedLog {
            log,
            records,
            recovery,
        } = RecordLog::open(path, FsyncPolicy::Always)?;
        Ok(OpenedJournal {
            journal: Journal { log },
            entries: records,
            recovery,
            migrated_legacy,
        })
    }

    /// Appends one record under the current schema and fsyncs.
    pub fn append(&mut self, record: &RunRecord) -> io::Result<()> {
        self.log.append(&JournalEntry {
            schema: JOURNAL_SCHEMA_VERSION,
            record: record.clone(),
        })
    }
}

/// The identity of a cell inside the resume journal, built only from
/// fields a [`RunRecord`] also carries so an entry can be matched back
/// to its grid cell. The attack component is the short tag: two
/// attacks differing only in their limits share an identity, so grids
/// that sweep attack limits should use separate journals.
pub fn journal_key(
    circuit: &str,
    algorithm: &str,
    seed: u64,
    attack: &str,
    config: &str,
    fault: &str,
) -> String {
    format!("{circuit}|{algorithm}|{seed}|{attack}|{config}|{fault}")
}

/// Collapses journal entries to the *last* entry per cell identity —
/// a resumed campaign appends fresh results after the stale ones, so
/// re-resuming from the same journal sees the newest outcome.
pub fn replay_map(entries: Vec<JournalEntry>) -> HashMap<String, JournalEntry> {
    let mut out = HashMap::new();
    for entry in entries {
        let r = &entry.record;
        let key = journal_key(
            &r.circuit,
            &r.algorithm,
            r.seed,
            &r.attack,
            &r.config,
            &r.fault,
        );
        out.insert(key, entry);
    }
    out
}

/// Detects and migrates a pre-store bare-JSONL journal: every
/// parseable line becomes a [`LEGACY_SCHEMA_VERSION`] entry and the
/// file is rewritten framed, atomically. Returns whether a migration
/// happened. A framed journal (or an absent/empty file) is left
/// untouched; the sniff is exact because no framed log starts with a
/// `{` byte ([`sttlock_store::FRAME_VERSION`] is `0xA5`).
fn migrate_legacy(path: &Path) -> io::Result<bool> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(false),
        Err(e) => return Err(e),
    };
    if bytes.first() != Some(&b'{') {
        return Ok(false);
    }
    let text = String::from_utf8_lossy(&bytes);
    let mut framed = Vec::new();
    let mut migrated = 0u64;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        // Unparseable lines (the torn tail of a crashed legacy run)
        // are dropped, exactly as the legacy loader skipped them.
        if let Some(record) = Json::parse(line)
            .ok()
            .and_then(|v| RunRecord::from_json(&v))
        {
            let entry = JournalEntry {
                schema: LEGACY_SCHEMA_VERSION,
                record,
            };
            framed.extend_from_slice(&sttlock_store::frame::encode(&entry.encode()));
            migrated += 1;
        }
    }
    sttlock_store::write_atomic(path, &framed)?;
    sttlock_obs::counter("campaign.journal_migrated", migrated);
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RunStatus;
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("sttlock-campaign-journal-tests")
            .join(format!("{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("journal.jsonl")
    }

    fn record(circuit: &str, status: RunStatus) -> RunRecord {
        RunRecord::failure(circuit, "independent", 3, "none", status)
    }

    #[test]
    fn append_and_reopen_round_trips_entries() {
        let path = scratch("roundtrip");
        {
            let mut opened = Journal::open(&path).unwrap();
            assert!(opened.entries.is_empty());
            opened.journal.append(&record("a", RunStatus::Ok)).unwrap();
            opened
                .journal
                .append(&record("b", RunStatus::TimedOut))
                .unwrap();
        }
        let opened = Journal::open(&path).unwrap();
        assert_eq!(opened.entries.len(), 2);
        assert!(opened
            .entries
            .iter()
            .all(|e| e.schema == JOURNAL_SCHEMA_VERSION));
        assert_eq!(opened.entries[0].record.circuit, "a");
        assert_eq!(opened.entries[1].record.status, RunStatus::TimedOut);
        assert!(opened.recovery.is_clean());
        assert!(!opened.migrated_legacy);
    }

    #[test]
    fn a_legacy_jsonl_journal_migrates_to_schema_zero_entries() {
        let path = scratch("legacy");
        let mut text = String::new();
        text.push_str(&format!("{}\n", record("old-a", RunStatus::Ok).to_json()));
        text.push_str(&format!("{}\n", record("old-b", RunStatus::Ok).to_json()));
        text.push_str("{\"torn\":tr"); // a torn legacy tail
        std::fs::write(&path, &text).unwrap();

        let opened = Journal::open(&path).unwrap();
        assert!(opened.migrated_legacy);
        assert_eq!(opened.entries.len(), 2);
        assert!(opened
            .entries
            .iter()
            .all(|e| e.schema == LEGACY_SCHEMA_VERSION));
        drop(opened);

        // The migration is one-shot: a reopen sees a framed journal.
        let again = Journal::open(&path).unwrap();
        assert!(!again.migrated_legacy);
        assert_eq!(again.entries.len(), 2);
    }

    #[test]
    fn replay_map_keeps_the_last_entry_per_cell() {
        let early = JournalEntry {
            schema: JOURNAL_SCHEMA_VERSION,
            record: record("same", RunStatus::TimedOut),
        };
        let late = JournalEntry {
            schema: JOURNAL_SCHEMA_VERSION,
            record: record("same", RunStatus::Ok),
        };
        let map = replay_map(vec![early, late.clone()]);
        assert_eq!(map.len(), 1);
        assert_eq!(map.values().next().unwrap().record.status, RunStatus::Ok);
        let _ = late;
    }

    #[test]
    fn a_torn_framed_tail_heals_on_open() {
        let path = scratch("torn");
        {
            let mut opened = Journal::open(&path).unwrap();
            opened
                .journal
                .append(&record("kept", RunStatus::Ok))
                .unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let torn = sttlock_store::frame::encode(
            &JournalEntry {
                schema: JOURNAL_SCHEMA_VERSION,
                record: record("lost", RunStatus::Ok),
            }
            .encode(),
        );
        bytes.extend_from_slice(&torn[..torn.len() / 2]);
        std::fs::write(&path, &bytes).unwrap();

        let opened = Journal::open(&path).unwrap();
        assert_eq!(opened.entries.len(), 1);
        assert_eq!(opened.entries[0].record.circuit, "kept");
        assert!(opened.recovery.dropped_bytes > 0);
    }
}
