//! Crash matrix over the deterministic chaos harness: for every named
//! kill-point and a sweep of death positions, a writer dies mid-run,
//! the "restarted process" recovers, resumes from the recovered
//! prefix, and the final log is byte-identical to an uninterrupted
//! run. This is the store-level statement of the `--resume` guarantee
//! the campaign runner builds on.

use std::path::PathBuf;
use std::sync::Arc;

use sttlock_store::{frame, read_all, ChaosConfig, ChaosFs, FsyncPolicy, KillPoint, RecordLog};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("sttlock-store-chaos-matrix")
        .join(format!("{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("journal")
}

fn records() -> Vec<String> {
    (0..6)
        .map(|i| format!("cell-{i}:status=ok:wall=0"))
        .collect()
}

/// The log an uninterrupted writer produces.
fn uninterrupted(name: &str) -> Vec<u8> {
    let path = scratch(name);
    let mut opened = RecordLog::<String>::open(&path, FsyncPolicy::Always).unwrap();
    for r in records() {
        opened.log.append(&r).unwrap();
    }
    std::fs::read(&path).unwrap()
}

#[test]
fn every_kill_point_and_position_resumes_byte_identical() {
    let want = uninterrupted("baseline");
    for point in [KillPoint::MidRecord, KillPoint::PreSync] {
        for nth in 1..=6u64 {
            let name = format!("{}-{nth}", point.name());
            let path = scratch(&name);
            let chaos = ChaosFs::new(ChaosConfig {
                seed: 0xC0FFEE ^ nth,
                torn_write_every: 0,
                fail_sync_every: 0,
                kill_at: Some((point, nth)),
            });

            // First life: write until the kill-point fires.
            let mut done = Vec::new();
            {
                let mut opened = RecordLog::<String>::open_with(
                    Arc::new(chaos.clone()),
                    &path,
                    FsyncPolicy::Always,
                )
                .unwrap();
                for r in records() {
                    match opened.log.append(&r) {
                        Ok(()) => done.push(r),
                        Err(_) => break,
                    }
                }
            }
            assert!(chaos.is_dead(), "{name}: kill-point should have fired");
            assert!(done.len() < 6, "{name}: writer should die before finishing");

            // Second life: recover, then resume the remaining records.
            let opened = RecordLog::<String>::open(&path, FsyncPolicy::Always).unwrap();
            let recovered = opened.records.clone();
            // Recovery never invents or corrupts: what survives is a
            // prefix of what the first life wrote... plus possibly the
            // record whose death hit after its bytes were complete
            // (pre-sync kill: written but unacknowledged).
            let all = records();
            assert!(
                recovered.len() >= done.len() && recovered.len() <= done.len() + 1,
                "{name}: recovered {} of {} acknowledged",
                recovered.len(),
                done.len()
            );
            assert_eq!(&recovered[..], &all[..recovered.len()], "{name}");

            let mut log = opened.log;
            for r in &all[recovered.len()..] {
                log.append(r).unwrap();
            }
            drop(log);

            let got = std::fs::read(&path).unwrap();
            assert_eq!(got, want, "{name}: resumed log differs from uninterrupted");
        }
    }
}

#[test]
fn pre_rename_kill_preserves_the_old_snapshot() {
    let path = scratch("pre-rename");
    // Seed the destination with a valid two-record log.
    {
        let mut opened = RecordLog::<String>::open(&path, FsyncPolicy::Always).unwrap();
        opened.log.append(&"old-1".to_owned()).unwrap();
        opened.log.append(&"old-2".to_owned()).unwrap();
    }
    let before = std::fs::read(&path).unwrap();

    let chaos = ChaosFs::new(ChaosConfig {
        seed: 9,
        torn_write_every: 0,
        fail_sync_every: 0,
        kill_at: Some((KillPoint::PreRename, 1)),
    });
    let mut opened =
        RecordLog::<String>::open_with(Arc::new(chaos.clone()), &path, FsyncPolicy::Always)
            .unwrap();
    let err = opened.log.compact(&["new-only".to_owned()]).unwrap_err();
    assert!(err.to_string().contains("death"), "{err}");
    assert!(chaos.is_dead());
    drop(opened);

    // The destination still holds the complete old content.
    assert_eq!(std::fs::read(&path).unwrap(), before);
    let (records, report) = read_all::<String>(&path).unwrap();
    assert_eq!(records, vec!["old-1", "old-2"]);
    assert_eq!(report.dropped_bytes, 0);
}

#[test]
fn sustained_torn_writes_and_failed_fsyncs_never_corrupt_the_prefix() {
    let path = scratch("sustained");
    let chaos = ChaosFs::new(ChaosConfig {
        seed: 2024,
        torn_write_every: 3,
        fail_sync_every: 4,
        kill_at: None,
    });
    let mut opened =
        RecordLog::<String>::open_with(Arc::new(chaos), &path, FsyncPolicy::Always).unwrap();
    let mut acked = Vec::new();
    for i in 0..40 {
        let r = format!("record-{i}");
        if opened.log.append(&r).is_ok() {
            acked.push(r);
        }
        // After every attempt — success, tear, or failed fsync — the
        // on-disk bytes are a clean frame sequence.
        let bytes = std::fs::read(&path).unwrap();
        let scan = frame::scan(&bytes);
        assert_eq!(scan.corruption, None, "after record-{i}");
    }
    assert!(!acked.is_empty());
    drop(opened);

    let reopened = RecordLog::<String>::open(&path, FsyncPolicy::Always).unwrap();
    assert!(reopened.recovery.is_clean());
    // Every acknowledged record is present, in order. Un-acked ones
    // may also appear (a record whose bytes landed but whose fsync
    // failed is valid on disk, just never confirmed durable) — the
    // store may under-promise, never lie.
    assert!(
        is_subsequence(&acked, &reopened.records),
        "acked {acked:?} not a subsequence of recovered {:?}",
        reopened.records
    );
    let attempted: Vec<String> = (0..40).map(|i| format!("record-{i}")).collect();
    assert!(is_subsequence(&reopened.records, &attempted));
}

/// Whether `needle` appears in `haystack` in order (not necessarily
/// contiguously).
fn is_subsequence(needle: &[String], haystack: &[String]) -> bool {
    let mut it = haystack.iter();
    needle.iter().all(|n| it.any(|h| h == n))
}
