//! Byte-mangle fuzz over the store reader, mirroring `http_fuzz.rs`:
//! build a valid framed log, corrupt it with arbitrary byte edits,
//! and require that scanning/opening never panics and never yields a
//! payload whose CRC does not match its header — the two invariants
//! every `--resume` sits on.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;

use sttlock_store::{frame, FsyncPolicy, RecordLog};

fn framed_log(payloads: &[Vec<u8>]) -> Vec<u8> {
    let mut out = Vec::new();
    for p in payloads {
        out.extend_from_slice(&frame::encode(p));
    }
    out
}

/// Byte-level replace/insert/delete/truncate edits.
fn mangle(bytes: &[u8], edits: &[(usize, u8, u8)]) -> Vec<u8> {
    let mut out = bytes.to_vec();
    for &(pos, byte, op) in edits {
        if out.is_empty() {
            break;
        }
        let at = pos % out.len();
        match op % 4 {
            0 => out[at] = byte,
            1 => out.insert(at, byte),
            2 => {
                out.remove(at);
            }
            _ => out.truncate(at),
        }
    }
    out
}

/// Each scanned payload must satisfy the frame invariant: whatever the
/// mangle did, a yielded record's bytes re-encode to a frame whose CRC
/// matches — i.e. the scanner never hands back bytes it cannot vouch
/// for. (Scan recomputes the CRC to accept, so this is a tautology
/// only if scan is correct — which is exactly what we are fuzzing.)
fn assert_scan_invariants(bytes: &[u8]) {
    let scan = frame::scan(bytes);
    assert!(scan.valid_len <= bytes.len());
    let mut reencoded = Vec::new();
    for payload in &scan.payloads {
        assert!(payload.len() <= frame::MAX_RECORD_LEN);
        reencoded.extend_from_slice(&frame::encode(payload));
    }
    // The valid prefix is literally the re-encoding of the payloads.
    assert_eq!(&bytes[..scan.valid_len], &reencoded[..]);
    if scan.corruption.is_none() {
        assert_eq!(scan.valid_len, bytes.len());
    }
}

static FUZZ_SEQ: AtomicU64 = AtomicU64::new(0);

fn scratch_path() -> PathBuf {
    let dir = std::env::temp_dir()
        .join("sttlock-store-fuzz")
        .join(std::process::id().to_string());
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("log-{}", FUZZ_SEQ.fetch_add(1, Ordering::Relaxed)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Arbitrary corruption of a valid log never panics the scanner
    /// and never yields a record that fails CRC.
    #[test]
    fn mangled_logs_scan_without_panics_or_bad_records(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..40), 0..6),
        edits in prop::collection::vec((any::<usize>(), any::<u8>(), any::<u8>()), 1..12),
    ) {
        let bad = mangle(&framed_log(&payloads), &edits);
        assert_scan_invariants(&bad);
    }

    /// Pure garbage (no valid substrate) follows the same rule.
    #[test]
    fn arbitrary_bytes_scan_safely(bytes in prop::collection::vec(any::<u8>(), 0..600)) {
        assert_scan_invariants(&bytes);
    }

    /// Recovery after ANY prefix truncation yields exactly a prefix of
    /// the original record sequence, and opening the healed log is
    /// idempotent (a second open reports clean and the same records).
    #[test]
    fn any_prefix_truncation_recovers_a_record_prefix(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..40), 1..6),
        cut_seed in any::<usize>(),
    ) {
        let full = framed_log(&payloads);
        let cut = cut_seed % (full.len() + 1);
        let path = scratch_path();
        std::fs::write(&path, &full[..cut]).unwrap();

        let opened = RecordLog::<Vec<u8>>::open(&path, FsyncPolicy::Never).unwrap();
        let n = opened.records.len();
        prop_assert!(n <= payloads.len());
        prop_assert_eq!(&opened.records[..], &payloads[..n]);
        prop_assert_eq!(opened.recovery.kept_bytes + opened.recovery.dropped_bytes, cut);
        drop(opened);

        // Idempotence: the heal truncated the tail, so a second open
        // sees a clean log with the same records.
        let again = RecordLog::<Vec<u8>>::open(&path, FsyncPolicy::Never).unwrap();
        prop_assert!(again.recovery.is_clean());
        prop_assert_eq!(again.records.len(), n);
        std::fs::remove_file(&path).ok();
    }

    /// Appending after recovery from a mangled log produces a log that
    /// re-opens to recovered-prefix + new record — resume semantics at
    /// the byte level.
    #[test]
    fn append_after_mangled_recovery_is_clean(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..40), 1..5),
        edits in prop::collection::vec((any::<usize>(), any::<u8>(), any::<u8>()), 1..8),
    ) {
        let bad = mangle(&framed_log(&payloads), &edits);
        let path = scratch_path();
        std::fs::write(&path, &bad).unwrap();

        let mut opened = RecordLog::<Vec<u8>>::open(&path, FsyncPolicy::Never).unwrap();
        let recovered = opened.records.clone();
        let appended = b"appended-after-recovery".to_vec();
        opened.log.append(&appended).unwrap();
        drop(opened);

        let again = RecordLog::<Vec<u8>>::open(&path, FsyncPolicy::Never).unwrap();
        prop_assert!(again.recovery.is_clean());
        let mut want = recovered;
        want.push(appended);
        prop_assert_eq!(again.records, want);
        std::fs::remove_file(&path).ok();
    }
}
