//! Deterministic chaos-IO: a [`Fs`] implementation that injects
//! short writes, torn writes at arbitrary byte offsets, failed fsyncs
//! and simulated process deaths on a seeded schedule.
//!
//! Everything is driven by an FNV-1a stream over the seed, so a given
//! `ChaosConfig` replays the exact same fault sequence every run —
//! a failing chaos test is reproducible from its seed alone. The
//! simulated death latches: once the configured kill-point is crossed,
//! *every* subsequent operation fails, which is how a dead process
//! looks to the bytes it already put on disk.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::fs::{Fs, KillPoint, LogFile, StdFs};

/// Fault schedule for a [`ChaosFs`].
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seed for the deterministic fault stream.
    pub seed: u64,
    /// Tear every nth append at a seeded byte offset (0 disables).
    /// A torn append writes a strict prefix of the bytes, then fails.
    pub torn_write_every: u32,
    /// Fail every nth fsync (0 disables). The bytes stay written —
    /// only durability is denied — matching a full disk or a dying
    /// device better than losing the write outright.
    pub fail_sync_every: u32,
    /// Simulate death at the nth crossing (1-based) of a kill-point.
    /// After death, every operation returns `ErrorKind::Other`.
    pub kill_at: Option<(KillPoint, u64)>,
}

impl ChaosConfig {
    /// A schedule that injects nothing — useful as a baseline in
    /// differential tests.
    pub fn quiet(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            torn_write_every: 0,
            fail_sync_every: 0,
            kill_at: None,
        }
    }
}

#[derive(Debug)]
struct ChaosState {
    stream: u64,
    draws: u64,
    appends: u64,
    syncs: u64,
    checkpoint_hits: u64,
    dead: bool,
}

/// A deterministic fault-injecting filesystem wrapping [`StdFs`].
/// Cloneable via `Arc`; all clones share one fault schedule, the way
/// every file handle in one process shares one fate.
#[derive(Debug, Clone)]
pub struct ChaosFs {
    config: ChaosConfig,
    state: Arc<Mutex<ChaosState>>,
}

impl ChaosFs {
    /// Builds a chaos filesystem from a fault schedule.
    pub fn new(config: ChaosConfig) -> ChaosFs {
        let state = ChaosState {
            stream: config.seed ^ 0xcbf2_9ce4_8422_2325,
            draws: 0,
            appends: 0,
            syncs: 0,
            checkpoint_hits: 0,
            dead: false,
        };
        ChaosFs {
            config,
            state: Arc::new(Mutex::new(state)),
        }
    }

    /// Whether the simulated process has died (a kill-point fired).
    pub fn is_dead(&self) -> bool {
        self.state.lock().unwrap().dead
    }

    /// Clears the death latch — the test's stand-in for restarting
    /// the process over the same on-disk bytes.
    pub fn revive(&self) {
        self.state.lock().unwrap().dead = false;
    }

    fn dead_err() -> io::Error {
        io::Error::other("chaos: simulated process death")
    }

    fn guard(&self) -> io::Result<()> {
        if self.state.lock().unwrap().dead {
            Err(Self::dead_err())
        } else {
            Ok(())
        }
    }

    /// Draws the next value from the FNV-1a stream: fold the draw
    /// index into the seeded state byte by byte. Folding a counter
    /// (rather than the state's own bytes) keeps nearby seeds from
    /// collapsing onto the same stream.
    fn draw(state: &mut ChaosState) -> u64 {
        state.draws += 1;
        for b in state.draws.to_le_bytes() {
            state.stream = (state.stream ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
        state.stream
    }
}

struct ChaosLogFile {
    inner: Box<dyn LogFile>,
    fs: ChaosFs,
    path: PathBuf,
}

impl LogFile for ChaosLogFile {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.fs.guard()?;
        let torn_prefix = {
            let mut state = self.fs.state.lock().unwrap();
            state.appends += 1;
            let every = self.fs.config.torn_write_every;
            if every != 0 && state.appends.is_multiple_of(u64::from(every)) && !bytes.is_empty() {
                // A strict prefix: at least 0, at most len-1 bytes land.
                Some((ChaosFs::draw(&mut state) % bytes.len() as u64) as usize)
            } else {
                None
            }
        };
        match torn_prefix {
            Some(cut) => {
                self.inner.append(&bytes[..cut])?;
                // The torn bytes are on disk; durability of the tear is
                // the worst case for recovery, so force it visible.
                let _ = self.inner.sync();
                Err(io::Error::other(format!(
                    "chaos: torn write at byte {cut} of {} (path {})",
                    bytes.len(),
                    self.path.display()
                )))
            }
            None => self.inner.append(bytes),
        }
    }

    fn sync(&mut self) -> io::Result<()> {
        self.fs.guard()?;
        let fail = {
            let mut state = self.fs.state.lock().unwrap();
            state.syncs += 1;
            let every = self.fs.config.fail_sync_every;
            every != 0 && state.syncs.is_multiple_of(u64::from(every))
        };
        if fail {
            return Err(io::Error::other("chaos: fsync failed"));
        }
        self.inner.sync()
    }
}

impl Fs for ChaosFs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.guard()?;
        StdFs.read(path)
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn LogFile>> {
        self.guard()?;
        Ok(Box::new(ChaosLogFile {
            inner: StdFs.open_append(path)?,
            fs: self.clone(),
            path: path.to_path_buf(),
        }))
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        self.guard()?;
        StdFs.truncate(path, len)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.guard()?;
        StdFs.write(path, bytes)
    }

    fn sync_path(&self, path: &Path) -> io::Result<()> {
        self.guard()?;
        StdFs.sync_path(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.guard()?;
        StdFs.rename(from, to)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.guard()?;
        StdFs.create_dir_all(path)
    }

    fn checkpoint(&self, point: KillPoint) -> io::Result<()> {
        let mut state = self.state.lock().unwrap();
        if state.dead {
            return Err(Self::dead_err());
        }
        if let Some((armed, nth)) = self.config.kill_at {
            if armed == point {
                state.checkpoint_hits += 1;
                if state.checkpoint_hits == nth.max(1) {
                    state.dead = true;
                    return Err(Self::dead_err());
                }
            }
        }
        Ok(())
    }

    fn split_appends(&self) -> bool {
        // Chaos runs always split so the mid-record checkpoint sits on
        // a real byte boundary inside the frame.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("sttlock-store-chaos-tests")
            .join(format!("{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn torn_writes_fire_on_schedule_and_leave_a_prefix() {
        let dir = tmp_dir("torn");
        let path = dir.join("log");
        let fs = ChaosFs::new(ChaosConfig {
            seed: 7,
            torn_write_every: 2,
            fail_sync_every: 0,
            kill_at: None,
        });
        let mut f = fs.open_append(&path).unwrap();
        f.append(b"aaaaaaaa").unwrap();
        let err = f.append(b"bbbbbbbb").unwrap_err();
        assert!(err.to_string().contains("torn write"), "{err}");
        let on_disk = std::fs::read(&path).unwrap();
        assert!(on_disk.len() < 16, "second append must be torn");
        assert!(on_disk.starts_with(b"aaaaaaaa"));
        assert!(b"bbbbbbbb".starts_with(&on_disk[8..]));
    }

    #[test]
    fn the_fault_schedule_is_deterministic_in_the_seed() {
        let tear_lengths = |seed: u64| -> Vec<usize> {
            let dir = tmp_dir(&format!("det-{seed}"));
            let path = dir.join("log");
            let fs = ChaosFs::new(ChaosConfig {
                seed,
                torn_write_every: 1,
                fail_sync_every: 0,
                kill_at: None,
            });
            let mut lens = Vec::new();
            for i in 0..8 {
                let mut f = fs.open_append(&path).unwrap();
                let before = std::fs::read(&path).unwrap().len();
                let _ = f.append(format!("record-{i}-payload").as_bytes());
                lens.push(std::fs::read(&path).unwrap().len() - before);
            }
            lens
        };
        assert_eq!(tear_lengths(42), tear_lengths(42));
        assert_ne!(tear_lengths(42), tear_lengths(43));
    }

    #[test]
    fn kill_point_latches_death_until_revived() {
        let dir = tmp_dir("kill");
        let path = dir.join("log");
        let fs = ChaosFs::new(ChaosConfig {
            seed: 1,
            torn_write_every: 0,
            fail_sync_every: 0,
            kill_at: Some((KillPoint::PreSync, 2)),
        });
        fs.checkpoint(KillPoint::PreSync).unwrap();
        assert!(fs.checkpoint(KillPoint::PreSync).is_err());
        assert!(fs.is_dead());
        assert!(fs.write(&path, b"x").is_err());
        assert!(fs.open_append(&path).is_err());
        fs.revive();
        fs.write(&path, b"x").unwrap();
        // A different kill-point never fires.
        fs.checkpoint(KillPoint::MidRecord).unwrap();
    }

    #[test]
    fn failed_fsyncs_fire_on_schedule() {
        let dir = tmp_dir("sync");
        let path = dir.join("log");
        let fs = ChaosFs::new(ChaosConfig {
            seed: 3,
            torn_write_every: 0,
            fail_sync_every: 3,
            kill_at: None,
        });
        let mut f = fs.open_append(&path).unwrap();
        f.append(b"data").unwrap();
        f.sync().unwrap();
        f.sync().unwrap();
        assert!(f.sync().is_err());
        f.sync().unwrap();
    }
}
