//! Crash-safe durable state for the sttlock workspace.
//!
//! Every durable artifact the toolchain writes — campaign journals,
//! fault journals, the serve harden cache, trace exports — goes
//! through one of two primitives in this crate:
//!
//! - [`RecordLog`], a checksummed, length-framed append-only log with
//!   truncate-to-last-valid recovery of torn or corrupt tails, a
//!   configurable [`FsyncPolicy`], and atomic compaction;
//! - [`write_atomic`], a temp-file + fsync + rename snapshot write
//!   that leaves either the old bytes or the new, never a mix.
//!
//! Both are built over the [`Fs`] trait so the deterministic chaos
//! harness ([`ChaosFs`]) can inject short writes, torn writes, failed
//! fsyncs, and simulated mid-write deaths under the production code
//! paths, and so real processes can be killed at named byte positions
//! via `STTLOCK_KILL_POINT` ([`KillPoint`]).
//!
//! The crate is zero-dependency (workspace `obs` aside) by design:
//! it sits below `campaign`, `serve`, and `cli` in the dependency
//! graph, next to `exec` and `obs`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod frame;
pub mod fs;
pub mod log;

pub use chaos::{ChaosConfig, ChaosFs};
pub use frame::{CorruptKind, FRAME_VERSION, HEADER_LEN, MAX_RECORD_LEN};
pub use fs::{write_atomic, write_atomic_with, Fs, KillPoint, LogFile, StdFs};
pub use log::{read_all, FsyncPolicy, OpenedLog, Record, RecordLog, RecoveryReport};
