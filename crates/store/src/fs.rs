//! The filesystem seam: everything the store does to disk goes
//! through the [`Fs`] trait, so the chaos harness ([`crate::ChaosFs`])
//! can interpose deterministic short writes, torn writes, failed
//! fsyncs and simulated process deaths under the *same* store code
//! that production runs.
//!
//! [`StdFs`] is the real implementation. It also hosts the
//! process-level kill-point hook: arming `STTLOCK_KILL_POINT=<name>[:n]`
//! in the environment makes the nth crossing of that named checkpoint
//! abort the process (`std::process::abort`, i.e. a genuine
//! uncatchable death mid-write) — CI's crash matrix uses it to die at
//! byte-exact positions inside an append or an atomic rename.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Named positions inside store write paths where a crash is
/// interesting. The store crosses each checkpoint via
/// [`Fs::checkpoint`]; what happens there depends on the
/// implementation (nothing, a simulated death, or a real abort).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum KillPoint {
    /// Between the two halves of a record append: the log is left with
    /// a torn frame (the header or payload cut mid-byte-stream).
    MidRecord,
    /// After the full frame is written but before the fsync the policy
    /// would issue: the record may or may not survive the crash.
    PreSync,
    /// After an atomic write's temp file is written and synced but
    /// before the rename: the destination must still hold its old
    /// content (or not exist) after the crash.
    PreRename,
}

impl KillPoint {
    /// All checkpoints, for matrix-style tests.
    pub const ALL: [KillPoint; 3] = [
        KillPoint::MidRecord,
        KillPoint::PreSync,
        KillPoint::PreRename,
    ];

    /// The environment-variable name of this checkpoint.
    pub fn name(&self) -> &'static str {
        match self {
            KillPoint::MidRecord => "mid-record",
            KillPoint::PreSync => "pre-sync",
            KillPoint::PreRename => "pre-rename",
        }
    }

    fn from_name(name: &str) -> Option<KillPoint> {
        KillPoint::ALL.into_iter().find(|p| p.name() == name)
    }
}

/// An open append-only log handle.
pub trait LogFile: Send {
    /// Appends `bytes` at the end of the file. All-or-error: a torn
    /// write must surface as `Err` so the caller can heal the tail.
    fn append(&mut self, bytes: &[u8]) -> io::Result<()>;
    /// Flushes written bytes to stable storage (fsync).
    fn sync(&mut self) -> io::Result<()>;
}

/// The store's filesystem interface. Object-safe so a log can hold an
/// `Arc<dyn Fs>` and tests can swap in [`crate::ChaosFs`].
pub trait Fs: Send + Sync {
    /// Reads a whole file. Missing files are an error (the caller
    /// decides whether absence is fine).
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Opens (creating if needed) an append-only handle.
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn LogFile>>;
    /// Truncates the file to exactly `len` bytes.
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()>;
    /// Creates-or-replaces a file with `bytes` (non-atomic; the atomic
    /// helper builds on this plus [`Fs::rename`]).
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Fsyncs an existing file (or directory) by path.
    fn sync_path(&self, path: &Path) -> io::Result<()>;
    /// Renames `from` onto `to` (atomic on POSIX when both are in the
    /// same directory).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Creates a directory and its ancestors.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Crosses a named crash checkpoint. The default is a no-op;
    /// [`StdFs`] aborts the process when the checkpoint is armed via
    /// `STTLOCK_KILL_POINT`, [`crate::ChaosFs`] simulates a death by
    /// failing this and every later operation.
    fn checkpoint(&self, _point: KillPoint) -> io::Result<()> {
        Ok(())
    }
    /// Whether appends should be split around [`KillPoint::MidRecord`].
    /// `false` keeps the hot path at one write syscall per record.
    fn split_appends(&self) -> bool {
        false
    }
}

/// The armed process kill-point, parsed from `STTLOCK_KILL_POINT`
/// (`<name>` or `<name>:<nth>`, 1-based) once per process.
fn armed_kill() -> Option<(KillPoint, u64)> {
    static ARMED: OnceLock<Option<(KillPoint, u64)>> = OnceLock::new();
    *ARMED.get_or_init(|| {
        let spec = std::env::var("STTLOCK_KILL_POINT").ok()?;
        let (name, nth) = match spec.split_once(':') {
            Some((name, n)) => (name, n.parse().ok()?),
            None => (spec.as_str(), 1),
        };
        Some((KillPoint::from_name(name)?, nth.max(1)))
    })
}

/// Counts checkpoint crossings of the armed point, process-wide.
static KILL_HITS: AtomicU64 = AtomicU64::new(0);

/// Crosses a process-level kill point: aborts iff `STTLOCK_KILL_POINT`
/// names `point` and this is the configured crossing.
fn process_kill_point(point: KillPoint) {
    if let Some((armed, nth)) = armed_kill() {
        if armed == point && KILL_HITS.fetch_add(1, Ordering::SeqCst) + 1 == nth {
            // The marker line lets a harness confirm the death was the
            // armed kill-point, not an unrelated crash.
            eprintln!(
                "sttlock-store: armed kill-point `{}` hit, aborting",
                armed.name()
            );
            std::process::abort();
        }
    }
}

/// The real filesystem.
#[derive(Debug, Default, Clone, Copy)]
pub struct StdFs;

struct StdLogFile(File);

impl LogFile for StdLogFile {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.0.write_all(bytes)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.0.sync_all()
    }
}

impl Fs for StdFs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn LogFile>> {
        let file = OpenOptions::new().append(true).create(true).open(path)?;
        Ok(Box::new(StdLogFile(file)))
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(len)?;
        file.sync_all()
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        std::fs::write(path, bytes)
    }

    fn sync_path(&self, path: &Path) -> io::Result<()> {
        File::open(path)?.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn checkpoint(&self, point: KillPoint) -> io::Result<()> {
        process_kill_point(point);
        Ok(())
    }

    fn split_appends(&self) -> bool {
        // Split only when a kill-point is armed: the mid-record
        // checkpoint needs a byte position to exist between two
        // writes, and production appends stay single-syscall.
        armed_kill().is_some()
    }
}

/// Monotonic discriminator for temp-file names within one process.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// The sibling temp path an atomic write stages into: same directory
/// (same filesystem, so the rename is atomic), unique per process ×
/// sequence so concurrent writers never collide.
fn tmp_sibling(path: &Path) -> PathBuf {
    let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "unnamed".to_owned());
    path.with_file_name(format!(".{name}.tmp-{}-{seq}", std::process::id()))
}

/// Atomically replaces `path` with `bytes` through `fs`: write a
/// sibling temp file, fsync it, rename over the destination, then
/// best-effort fsync the parent directory. A crash at any point leaves
/// either the old content or the new — never a truncated mix. The
/// staged temp is cleaned up on any failure after it was created.
pub fn write_atomic_with(fs: &dyn Fs, path: &Path, bytes: &[u8]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs.create_dir_all(parent)?;
        }
    }
    let tmp = tmp_sibling(path);
    let staged = fs
        .write(&tmp, bytes)
        .and_then(|()| fs.sync_path(&tmp))
        .and_then(|()| fs.checkpoint(KillPoint::PreRename))
        .and_then(|()| fs.rename(&tmp, path));
    if let Err(e) = staged {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    sttlock_obs::counter("store.atomic_writes", 1);
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            let _ = fs.sync_path(parent);
        }
    }
    Ok(())
}

/// [`write_atomic_with`] over the real filesystem — the drop-in
/// replacement for every `fs::write` that produces a user-visible
/// artifact (traces, rendered tables, exported netlists).
pub fn write_atomic(path: impl AsRef<Path>, bytes: impl AsRef<[u8]>) -> io::Result<()> {
    write_atomic_with(&StdFs, path.as_ref(), bytes.as_ref())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("sttlock-store-fs-tests")
            .join(format!("{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn atomic_write_replaces_content_and_leaves_no_temp() {
        let dir = tmp_dir("atomic");
        let path = dir.join("artifact.txt");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second, longer").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second, longer");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| n.to_string_lossy().contains(".tmp-"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
    }

    #[test]
    fn atomic_write_creates_missing_parents() {
        let dir = tmp_dir("parents");
        let path = dir.join("a").join("b").join("artifact.txt");
        write_atomic(&path, b"nested").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"nested");
    }

    #[test]
    fn append_handle_appends_across_reopens() {
        let dir = tmp_dir("append");
        let path = dir.join("log");
        {
            let mut f = StdFs.open_append(&path).unwrap();
            f.append(b"one").unwrap();
            f.sync().unwrap();
        }
        {
            let mut f = StdFs.open_append(&path).unwrap();
            f.append(b"two").unwrap();
        }
        assert_eq!(std::fs::read(&path).unwrap(), b"onetwo");
        StdFs.truncate(&path, 4).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"onet");
    }

    #[test]
    fn kill_point_names_round_trip() {
        for p in KillPoint::ALL {
            assert_eq!(KillPoint::from_name(p.name()), Some(p));
        }
        assert_eq!(KillPoint::from_name("nonsense"), None);
    }
}
