//! The typed append-only record log: open-with-recovery, append with
//! a configurable fsync policy, atomic compaction, and a tail-heal
//! path for appends that fail partway.

use std::io;
use std::marker::PhantomData;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::frame::{self, CorruptKind};
use crate::fs::{Fs, KillPoint, LogFile, StdFs};

/// When the log fsyncs after an append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Fsync after every record — the journal setting: a record that
    /// was reported appended survives `kill -9`.
    Always,
    /// Fsync after every nth record (and on [`RecordLog::sync`]).
    EveryN(u32),
    /// Never fsync implicitly — for caches whose loss costs only a
    /// recomputation.
    Never,
}

/// A value that can live in a [`RecordLog`].
pub trait Record: Sized {
    /// Serializes the record to a payload. The framing (length, CRC,
    /// version) is the log's job — encode only the record itself.
    fn encode(&self) -> Vec<u8>;
    /// Deserializes a payload. `None` marks a payload whose CRC was
    /// valid but whose contents this version cannot read — the log
    /// skips it and counts it, rather than failing the open.
    fn decode(bytes: &[u8]) -> Option<Self>;
}

impl Record for Vec<u8> {
    fn encode(&self) -> Vec<u8> {
        self.clone()
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        Some(bytes.to_vec())
    }
}

impl Record for String {
    fn encode(&self) -> Vec<u8> {
        self.as_bytes().to_vec()
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        String::from_utf8(bytes.to_vec()).ok()
    }
}

/// What opening a log found and did. Derives `PartialEq` so campaign
/// results that embed it stay comparable.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Records successfully recovered (decoded entries kept).
    pub records: usize,
    /// Bytes of valid log retained.
    pub kept_bytes: usize,
    /// Bytes truncated off the corrupt tail (0 for a clean log).
    pub dropped_bytes: usize,
    /// Why the tail was invalid, when it was.
    pub corruption: Option<CorruptKind>,
    /// CRC-valid payloads this version could not decode (skipped).
    pub undecodable: usize,
}

impl RecoveryReport {
    /// Whether the open found anything abnormal worth surfacing.
    pub fn is_clean(&self) -> bool {
        self.dropped_bytes == 0 && self.undecodable == 0
    }

    /// One-line human summary for logs and recovery reports.
    pub fn summary(&self) -> String {
        match self.corruption {
            Some(kind) => format!(
                "recovered {} records ({} bytes), dropped {} corrupt tail bytes ({}), {} undecodable",
                self.records,
                self.kept_bytes,
                self.dropped_bytes,
                kind.tag(),
                self.undecodable
            ),
            None => format!(
                "clean log: {} records ({} bytes), {} undecodable",
                self.records, self.kept_bytes, self.undecodable
            ),
        }
    }
}

/// The result of [`RecordLog::open`]: the log plus everything that
/// was already in it.
pub struct OpenedLog<T: Record> {
    /// The open log, positioned for appends.
    pub log: RecordLog<T>,
    /// The recovered records, in append order.
    pub records: Vec<T>,
    /// What recovery found and truncated.
    pub recovery: RecoveryReport,
}

/// A checksummed, length-framed append-only log of `T` records.
pub struct RecordLog<T: Record> {
    fs: Arc<dyn Fs>,
    path: PathBuf,
    file: Option<Box<dyn LogFile>>,
    policy: FsyncPolicy,
    /// Bytes known to be on disk and frame-valid; the truncate target
    /// if an append fails partway.
    len: u64,
    unsynced: u32,
    poisoned: bool,
    _marker: PhantomData<fn() -> T>,
}

impl<T: Record> RecordLog<T> {
    /// Opens (creating if absent) the log at `path` on the real
    /// filesystem, healing any torn or corrupt tail first.
    pub fn open(path: impl Into<PathBuf>, policy: FsyncPolicy) -> io::Result<OpenedLog<T>> {
        Self::open_with(Arc::new(StdFs), path, policy)
    }

    /// [`RecordLog::open`] over an explicit filesystem — the chaos
    /// harness's entry point.
    pub fn open_with(
        fs: Arc<dyn Fs>,
        path: impl Into<PathBuf>,
        policy: FsyncPolicy,
    ) -> io::Result<OpenedLog<T>> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs.create_dir_all(parent)?;
            }
        }
        let bytes = match fs.read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let scan = frame::scan(&bytes);
        let mut records = Vec::with_capacity(scan.payloads.len());
        let mut undecodable = 0usize;
        for payload in &scan.payloads {
            match T::decode(payload) {
                Some(record) => records.push(record),
                None => undecodable += 1,
            }
        }
        let dropped = bytes.len() - scan.valid_len;
        if dropped > 0 {
            // Heal the tail on disk before taking the append handle,
            // so the next frame never lands after garbage.
            fs.truncate(&path, scan.valid_len as u64)?;
            sttlock_obs::counter("store.recoveries", 1);
            sttlock_obs::counter("store.recovered_bytes", dropped as u64);
        }
        sttlock_obs::counter("store.recovered_records", records.len() as u64);
        if undecodable > 0 {
            sttlock_obs::counter("store.undecodable_records", undecodable as u64);
        }
        let recovery = RecoveryReport {
            records: records.len(),
            kept_bytes: scan.valid_len,
            dropped_bytes: dropped,
            corruption: if dropped > 0 { scan.corruption } else { None },
            undecodable,
        };
        let file = fs.open_append(&path)?;
        Ok(OpenedLog {
            log: RecordLog {
                fs,
                path,
                file: Some(file),
                policy,
                len: scan.valid_len as u64,
                unsynced: 0,
                poisoned: false,
                _marker: PhantomData,
            },
            records,
            recovery,
        })
    }

    /// The log's path on disk.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Bytes of frame-valid log currently on disk.
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// Appends one record, framed and checksummed, then fsyncs
    /// according to the policy. If the write fails partway, the tail
    /// is truncated back to the last whole record before returning the
    /// error, so a later append never lands after torn bytes.
    pub fn append(&mut self, record: &T) -> io::Result<()> {
        if self.poisoned {
            return Err(io::Error::other(
                "record log is poisoned: a previous append failed and the tail could not be healed",
            ));
        }
        let framed = frame::encode(&record.encode());
        let result = self.append_framed(&framed);
        if let Err(e) = result {
            // Self-heal: drop whatever prefix of the frame landed.
            match self.fs.truncate(&self.path, self.len) {
                Ok(()) => {
                    // Reopen the handle; the old one's cursor is past
                    // the truncation point.
                    match self.fs.open_append(&self.path) {
                        Ok(file) => self.file = Some(file),
                        Err(_) => self.poisoned = true,
                    }
                }
                Err(_) => self.poisoned = true,
            }
            return Err(e);
        }
        self.len += framed.len() as u64;
        sttlock_obs::counter("store.appends", 1);
        match self.policy {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::EveryN(n) => {
                self.unsynced += 1;
                if self.unsynced >= n.max(1) {
                    self.sync()?;
                }
            }
            FsyncPolicy::Never => {}
        }
        Ok(())
    }

    fn append_framed(&mut self, framed: &[u8]) -> io::Result<()> {
        let file = self
            .file
            .as_mut()
            .ok_or_else(|| io::Error::other("record log has no open file"))?;
        if self.fs.split_appends() && framed.len() > 1 {
            // Two-part write with a crash checkpoint between the
            // halves: the on-disk state at the checkpoint is a torn
            // frame, exactly what recovery must heal.
            let cut = framed.len() / 2;
            file.append(&framed[..cut])?;
            self.fs.checkpoint(KillPoint::MidRecord)?;
            file.append(&framed[cut..])?;
        } else {
            file.append(framed)?;
        }
        self.fs.checkpoint(KillPoint::PreSync)?;
        Ok(())
    }

    /// Forces an fsync regardless of policy.
    pub fn sync(&mut self) -> io::Result<()> {
        let file = self
            .file
            .as_mut()
            .ok_or_else(|| io::Error::other("record log has no open file"))?;
        file.sync()?;
        self.unsynced = 0;
        Ok(())
    }

    /// Atomically rewrites the log to contain exactly `records`
    /// (snapshot semantics: temp file + fsync + rename), then reopens
    /// for appending. Used for compaction after dedup, so a log of
    /// last-wins updates shrinks to its live set.
    pub fn compact(&mut self, records: &[T]) -> io::Result<()> {
        let mut bytes = Vec::new();
        for record in records {
            bytes.extend_from_slice(&frame::encode(&record.encode()));
        }
        // Drop the append handle first; on non-POSIX systems renaming
        // over an open file is not guaranteed.
        self.file = None;
        crate::fs::write_atomic_with(self.fs.as_ref(), &self.path, &bytes)?;
        self.file = Some(self.fs.open_append(&self.path)?);
        self.len = bytes.len() as u64;
        self.unsynced = 0;
        self.poisoned = false;
        sttlock_obs::counter("store.compactions", 1);
        Ok(())
    }
}

/// Reads every valid record from the log at `path` without opening it
/// for writes and without healing the tail — a read-only scan for
/// inspection tools.
pub fn read_all<T: Record>(path: &Path) -> io::Result<(Vec<T>, RecoveryReport)> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    let scan = frame::scan(&bytes);
    let mut records = Vec::with_capacity(scan.payloads.len());
    let mut undecodable = 0usize;
    for payload in &scan.payloads {
        match T::decode(payload) {
            Some(record) => records.push(record),
            None => undecodable += 1,
        }
    }
    let dropped = bytes.len() - scan.valid_len;
    let report = RecoveryReport {
        records: records.len(),
        kept_bytes: scan.valid_len,
        dropped_bytes: dropped,
        corruption: if dropped > 0 { scan.corruption } else { None },
        undecodable,
    };
    Ok((records, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::{ChaosConfig, ChaosFs};

    fn tmp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("sttlock-store-log-tests")
            .join(format!("{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("log")
    }

    #[test]
    fn append_reopen_round_trips_records() {
        let path = tmp_path("roundtrip");
        {
            let mut opened = RecordLog::<String>::open(&path, FsyncPolicy::Always).unwrap();
            assert!(opened.records.is_empty());
            assert!(opened.recovery.is_clean());
            opened.log.append(&"one".to_owned()).unwrap();
            opened.log.append(&"two".to_owned()).unwrap();
        }
        let opened = RecordLog::<String>::open(&path, FsyncPolicy::Always).unwrap();
        assert_eq!(opened.records, vec!["one", "two"]);
        assert!(opened.recovery.is_clean());
    }

    #[test]
    fn a_torn_tail_is_truncated_and_reported() {
        let path = tmp_path("torn");
        {
            let mut opened = RecordLog::<String>::open(&path, FsyncPolicy::Always).unwrap();
            opened.log.append(&"kept".to_owned()).unwrap();
        }
        // Simulate a crash mid-append: glue half a frame on the end.
        let mut bytes = std::fs::read(&path).unwrap();
        let good_len = bytes.len();
        let torn = frame::encode(b"lost-record");
        bytes.extend_from_slice(&torn[..torn.len() - 3]);
        std::fs::write(&path, &bytes).unwrap();

        let opened = RecordLog::<String>::open(&path, FsyncPolicy::Always).unwrap();
        assert_eq!(opened.records, vec!["kept"]);
        assert_eq!(opened.recovery.dropped_bytes, torn.len() - 3);
        assert_eq!(opened.recovery.corruption, Some(CorruptKind::TornPayload));
        // The heal is durable: the file itself is clean again.
        assert_eq!(std::fs::read(&path).unwrap().len(), good_len);
    }

    #[test]
    fn appends_after_recovery_continue_the_log() {
        let path = tmp_path("continue");
        {
            let mut opened = RecordLog::<String>::open(&path, FsyncPolicy::Always).unwrap();
            opened.log.append(&"a".to_owned()).unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[frame::FRAME_VERSION, 9, 0]); // torn header
        std::fs::write(&path, &bytes).unwrap();
        {
            let mut opened = RecordLog::<String>::open(&path, FsyncPolicy::Always).unwrap();
            assert_eq!(opened.recovery.corruption, Some(CorruptKind::TornHeader));
            opened.log.append(&"b".to_owned()).unwrap();
        }
        let opened = RecordLog::<String>::open(&path, FsyncPolicy::Always).unwrap();
        assert_eq!(opened.records, vec!["a", "b"]);
        assert!(opened.recovery.is_clean());
    }

    #[test]
    fn a_failed_append_heals_the_tail_and_the_log_stays_usable() {
        let path = tmp_path("heal");
        // Chaos splits each record into two physical appends, so
        // every=3 tears the first half of the second record.
        let fs = ChaosFs::new(ChaosConfig {
            seed: 11,
            torn_write_every: 3,
            fail_sync_every: 0,
            kill_at: None,
        });
        let mut opened =
            RecordLog::<String>::open_with(Arc::new(fs), &path, FsyncPolicy::Always).unwrap();
        opened.log.append(&"first".to_owned()).unwrap();
        // Chaos splits appends, so the tear schedule counts halves;
        // keep appending until one fails, then verify the heal.
        let mut failed = false;
        for i in 0..8 {
            if opened.log.append(&format!("record-{i}")).is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "chaos schedule should tear one append");
        // The on-disk bytes are frame-clean right now (no reopen).
        let on_disk = std::fs::read(&path).unwrap();
        let scan = frame::scan(&on_disk);
        assert_eq!(scan.corruption, None);
        // And the same handle keeps working.
        opened.log.append(&"after-heal".to_owned()).unwrap();
        let (records, report) = read_all::<String>(&path).unwrap();
        assert_eq!(records.last().unwrap(), "after-heal");
        assert_eq!(report.dropped_bytes, 0);
    }

    #[test]
    fn compaction_rewrites_to_the_live_set_atomically() {
        let path = tmp_path("compact");
        let mut opened = RecordLog::<String>::open(&path, FsyncPolicy::Always).unwrap();
        for i in 0..10 {
            opened.log.append(&format!("v{i}")).unwrap();
        }
        let before = std::fs::read(&path).unwrap().len();
        opened.log.compact(&["v9".to_owned()]).unwrap();
        assert!(std::fs::read(&path).unwrap().len() < before);
        // Appends keep working after compaction.
        opened.log.append(&"v10".to_owned()).unwrap();
        let reopened = RecordLog::<String>::open(&path, FsyncPolicy::Always).unwrap();
        assert_eq!(reopened.records, vec!["v9", "v10"]);
    }

    #[test]
    fn undecodable_payloads_are_skipped_and_counted() {
        struct EvenOnly(u8);
        impl Record for EvenOnly {
            fn encode(&self) -> Vec<u8> {
                vec![self.0]
            }
            fn decode(bytes: &[u8]) -> Option<Self> {
                match bytes {
                    [b] if b % 2 == 0 => Some(EvenOnly(*b)),
                    _ => None,
                }
            }
        }
        let path = tmp_path("undecodable");
        {
            let mut opened = RecordLog::<Vec<u8>>::open(&path, FsyncPolicy::Always).unwrap();
            opened.log.append(&vec![2]).unwrap();
            opened.log.append(&vec![3]).unwrap();
            opened.log.append(&vec![4]).unwrap();
        }
        let opened = RecordLog::<EvenOnly>::open(&path, FsyncPolicy::Always).unwrap();
        assert_eq!(
            opened.records.iter().map(|r| r.0).collect::<Vec<_>>(),
            vec![2, 4]
        );
        assert_eq!(opened.recovery.undecodable, 1);
        assert!(!opened.recovery.is_clean());
        // Undecodable is not corruption: nothing was truncated.
        assert_eq!(opened.recovery.dropped_bytes, 0);
    }

    #[test]
    fn a_chaos_kill_mid_record_recovers_to_the_previous_record() {
        let path = tmp_path("kill-mid");
        let fs = ChaosFs::new(ChaosConfig {
            seed: 5,
            torn_write_every: 0,
            fail_sync_every: 0,
            kill_at: Some((KillPoint::MidRecord, 2)),
        });
        let chaos = fs.clone();
        let mut opened =
            RecordLog::<String>::open_with(Arc::new(fs), &path, FsyncPolicy::Always).unwrap();
        opened.log.append(&"survives".to_owned()).unwrap();
        let err = opened.log.append(&"dies".to_owned()).unwrap_err();
        assert!(err.to_string().contains("death"), "{err}");
        assert!(chaos.is_dead());
        // The "process" is dead: the heal could not run (truncate
        // fails too), so the disk holds a torn frame — recovery at
        // next open must handle it.
        chaos.revive();
        let reopened = RecordLog::<String>::open(&path, FsyncPolicy::Always).unwrap();
        assert_eq!(reopened.records, vec!["survives"]);
        assert!(reopened.recovery.dropped_bytes > 0);
    }
}
