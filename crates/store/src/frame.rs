//! The on-disk record frame: a version-tagged, length-framed,
//! CRC-checksummed envelope around one record payload.
//!
//! ```text
//! ┌──────────┬────────────┬────────────┬───────────────┐
//! │ ver (u8) │ len (u32LE)│ crc (u32LE)│ payload (len) │
//! └──────────┴────────────┴────────────┴───────────────┘
//! ```
//!
//! The version byte is deliberately a value (`0xA5`) that no textual
//! format starts with, so a legacy JSONL journal (which starts with
//! `{`) is recognizable *as* legacy rather than misread as a torn
//! frame. The CRC covers the payload only; the header fields defend
//! themselves (a corrupt `len` either overruns the remaining bytes or
//! lands the scanner on a byte that is not a version tag).

/// Current frame format version. Bumping it makes every old log read
/// as fully corrupt — do so only with a migration path.
pub const FRAME_VERSION: u8 = 0xA5;

/// Frame header size in bytes: version + length + CRC.
pub const HEADER_LEN: usize = 1 + 4 + 4;

/// Upper bound on a single record payload. Anything larger is treated
/// as corruption: the bound keeps a corrupt length field from driving
/// a multi-gigabyte allocation during recovery.
pub const MAX_RECORD_LEN: usize = 64 << 20;

/// IEEE CRC-32 (polynomial `0xEDB88320`), table-driven.
const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// The IEEE CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Encodes one payload into a full frame (header + payload).
pub fn encode(payload: &[u8]) -> Vec<u8> {
    debug_assert!(payload.len() <= MAX_RECORD_LEN);
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.push(FRAME_VERSION);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Why a scan stopped before the end of the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptKind {
    /// Fewer than [`HEADER_LEN`] bytes remained — a torn header.
    TornHeader,
    /// The version byte is not [`FRAME_VERSION`].
    BadVersion,
    /// The length field exceeds [`MAX_RECORD_LEN`].
    OversizeLength,
    /// The length field points past the end of the log — a torn
    /// payload (the classic crash-mid-append shape).
    TornPayload,
    /// The payload's CRC does not match the header — bit rot or an
    /// overwritten region.
    BadCrc,
}

impl CorruptKind {
    /// Stable tag for reports and logs.
    pub fn tag(&self) -> &'static str {
        match self {
            CorruptKind::TornHeader => "torn_header",
            CorruptKind::BadVersion => "bad_version",
            CorruptKind::OversizeLength => "oversize_length",
            CorruptKind::TornPayload => "torn_payload",
            CorruptKind::BadCrc => "bad_crc",
        }
    }
}

/// The result of scanning a byte buffer as a frame sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scan<'a> {
    /// The payloads of every valid frame, in log order.
    pub payloads: Vec<&'a [u8]>,
    /// Bytes covered by the valid prefix (the truncate-to offset).
    pub valid_len: usize,
    /// Why the scan stopped early, if it did. `None` means the buffer
    /// was a clean sequence of whole frames.
    pub corruption: Option<CorruptKind>,
}

/// Scans `bytes` as a sequence of frames, stopping at the first
/// invalid one. Never panics, never reads past the buffer, never
/// yields a payload whose CRC does not match — the recovery
/// guarantees of the whole store reduce to this function.
pub fn scan(bytes: &[u8]) -> Scan<'_> {
    let mut payloads = Vec::new();
    let mut at = 0usize;
    let corruption = loop {
        let rest = &bytes[at..];
        if rest.is_empty() {
            break None;
        }
        if rest.len() < HEADER_LEN {
            break Some(CorruptKind::TornHeader);
        }
        if rest[0] != FRAME_VERSION {
            break Some(CorruptKind::BadVersion);
        }
        let len = u32::from_le_bytes([rest[1], rest[2], rest[3], rest[4]]) as usize;
        if len > MAX_RECORD_LEN {
            break Some(CorruptKind::OversizeLength);
        }
        if rest.len() < HEADER_LEN + len {
            break Some(CorruptKind::TornPayload);
        }
        let crc = u32::from_le_bytes([rest[5], rest[6], rest[7], rest[8]]);
        let payload = &rest[HEADER_LEN..HEADER_LEN + len];
        if crc32(payload) != crc {
            break Some(CorruptKind::BadCrc);
        }
        payloads.push(payload);
        at += HEADER_LEN + len;
    };
    Scan {
        payloads,
        valid_len: at,
        corruption,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_the_reference_vector() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn encode_then_scan_round_trips() {
        let mut log = Vec::new();
        log.extend_from_slice(&encode(b"alpha"));
        log.extend_from_slice(&encode(b""));
        log.extend_from_slice(&encode(b"gamma"));
        let scan = scan(&log);
        assert_eq!(scan.payloads, vec![&b"alpha"[..], b"", b"gamma"]);
        assert_eq!(scan.valid_len, log.len());
        assert_eq!(scan.corruption, None);
    }

    #[test]
    fn every_prefix_truncation_yields_a_record_prefix() {
        let payloads: [&[u8]; 3] = [b"one", b"two-longer", b"three"];
        let mut log = Vec::new();
        for p in payloads {
            log.extend_from_slice(&encode(p));
        }
        for cut in 0..=log.len() {
            let scan = scan(&log[..cut]);
            // Whatever survives is a prefix of the original sequence.
            assert!(scan.payloads.len() <= payloads.len());
            for (got, want) in scan.payloads.iter().zip(payloads) {
                assert_eq!(*got, want);
            }
            assert!(scan.valid_len <= cut);
            // A cut mid-frame is reported as torn, a cut on a frame
            // boundary is clean.
            let on_boundary = scan.valid_len == cut;
            assert_eq!(scan.corruption.is_none(), on_boundary, "cut={cut}");
        }
    }

    #[test]
    fn corrupt_payload_bytes_fail_the_crc() {
        let mut log = encode(b"payload");
        let last = log.len() - 1;
        log[last] ^= 0x01;
        let scan = scan(&log);
        assert!(scan.payloads.is_empty());
        assert_eq!(scan.corruption, Some(CorruptKind::BadCrc));
    }

    #[test]
    fn oversize_length_is_rejected_without_allocation() {
        let mut log = vec![FRAME_VERSION];
        log.extend_from_slice(&u32::MAX.to_le_bytes());
        log.extend_from_slice(&[0; 4]);
        log.extend_from_slice(&[0; 64]);
        let scan = scan(&log);
        assert_eq!(scan.corruption, Some(CorruptKind::OversizeLength));
        assert_eq!(scan.valid_len, 0);
    }

    #[test]
    fn a_legacy_text_file_reads_as_bad_version_at_offset_zero() {
        let scan = scan(b"{\"status\":\"ok\"}\n");
        assert_eq!(scan.corruption, Some(CorruptKind::BadVersion));
        assert_eq!(scan.valid_len, 0);
        assert!(scan.payloads.is_empty());
    }
}
