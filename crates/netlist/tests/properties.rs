//! Property-based tests for the netlist substrate: truth-table algebra,
//! random-circuit structural invariants, and format round-trips.

use proptest::prelude::*;

use sttlock_netlist::{
    bench_format, graph, verilog, GateKind, NetlistBuilder, NetlistError, TruthTable,
};

fn arb_table(inputs: usize) -> impl Strategy<Value = TruthTable> {
    any::<u64>().prop_map(move |bits| TruthTable::new(inputs, bits))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn similarity_is_symmetric_and_bounded(a in arb_table(3), b in arb_table(3)) {
        let s = a.similarity(&b);
        prop_assert_eq!(s, b.similarity(&a));
        prop_assert!(s <= a.rows());
    }

    #[test]
    fn self_similarity_is_total(a in arb_table(4)) {
        prop_assert_eq!(a.similarity(&a), a.rows());
        prop_assert_eq!(a.similarity(&a.complement()), 0);
    }

    #[test]
    fn complement_partitions_similarity(a in arb_table(3), b in arb_table(3)) {
        // Agreements with b and with ¬b partition the rows.
        prop_assert_eq!(a.similarity(&b) + a.similarity(&b.complement()), a.rows());
    }

    #[test]
    fn eval_parallel_matches_eval(a in arb_table(3), lanes in any::<[u64; 3]>()) {
        let out = a.eval_parallel(&lanes);
        for lane in 0..64 {
            let mut row = 0usize;
            for (i, w) in lanes.iter().enumerate() {
                if (w >> lane) & 1 == 1 {
                    row |= 1 << i;
                }
            }
            prop_assert_eq!((out >> lane) & 1 == 1, a.eval(row));
        }
    }

    #[test]
    fn new_masks_out_of_range_bits(bits in any::<u64>()) {
        let t = TruthTable::new(2, bits);
        prop_assert_eq!(t.bits() & !0xF, 0);
    }
}

/// Strategy: a small random combinational-plus-registers circuit, built
/// by wiring each new gate to previously declared signals only (so the
/// result is valid by construction).
fn arb_circuit() -> impl Strategy<Value = sttlock_netlist::Netlist> {
    let kinds = prop::sample::select(vec![
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Not,
    ]);
    (
        2usize..5, // inputs
        prop::collection::vec((kinds, any::<u32>(), any::<u32>(), prop::bool::ANY), 1..40),
    )
        .prop_map(|(n_inputs, gates)| {
            let mut b = NetlistBuilder::new("prop");
            let mut signals: Vec<String> = Vec::new();
            for i in 0..n_inputs {
                let name = format!("i{i}");
                b.input(&name);
                signals.push(name);
            }
            for (g, (kind, f1, f2, make_ff)) in gates.into_iter().enumerate() {
                let name = format!("g{g}");
                let a = signals[f1 as usize % signals.len()].clone();
                if kind.is_unary() {
                    b.gate(&name, kind, &[&a]);
                } else {
                    let mut c = signals[f2 as usize % signals.len()].clone();
                    if c == a {
                        c = signals[(f2 as usize + 1) % signals.len()].clone();
                    }
                    if c == a {
                        b.gate(&name, GateKind::Not, &[&a]);
                    } else {
                        b.gate(&name, kind, &[&a, &c]);
                    }
                }
                signals.push(name.clone());
                if make_ff {
                    let ff = format!("f{g}");
                    b.dff(&ff, &name);
                    signals.push(ff);
                }
            }
            let last = signals.last().expect("nonempty").clone();
            b.output(&last);
            b.finish().expect("constructed circuits are valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_circuits_validate_and_level(n in arb_circuit()) {
        prop_assert!(n.check_acyclic().is_ok());
        let order = graph::topo_order(&n);
        prop_assert_eq!(order.len(), n.gate_count());
        // Levels respect the topological order.
        let levels = graph::levels(&n);
        for &id in &order {
            for &f in n.node(id).fanin() {
                if n.node(f).is_combinational() {
                    prop_assert!(levels[f.index()] < levels[id.index()]);
                }
            }
        }
    }

    #[test]
    fn bench_round_trip_preserves_structure(n in arb_circuit()) {
        let text = bench_format::write(&n);
        let back = bench_format::parse(&text, n.name()).expect("own output parses");
        prop_assert_eq!(back.gate_count(), n.gate_count());
        prop_assert_eq!(back.dff_count(), n.dff_count());
        prop_assert_eq!(back.inputs().len(), n.inputs().len());
        prop_assert_eq!(back.outputs().len(), n.outputs().len());
    }

    #[test]
    fn verilog_round_trip_preserves_structure(n in arb_circuit()) {
        let text = verilog::write(&n);
        let back = verilog::parse(&text).expect("own output parses");
        prop_assert_eq!(back.gate_count(), n.gate_count());
        prop_assert_eq!(back.dff_count(), n.dff_count());
        prop_assert_eq!(back.inputs().len(), n.inputs().len());
        prop_assert_eq!(back.outputs().len(), n.outputs().len());
    }

    #[test]
    fn bench_lut_masks_survive_round_trip(n in arb_circuit(), seed in any::<u64>()) {
        // Replace every other gate with a LUT and program each with an
        // arbitrary mask, so the round trip exercises `LUT 0x..` lines
        // beyond the gate-derived truth tables.
        let mut hybrid = n.clone();
        let gates: Vec<_> = hybrid
            .node_ids()
            .filter(|&id| hybrid.node(id).gate_kind().is_some())
            .step_by(2)
            .collect();
        let mut state = seed | 1;
        for &id in &gates {
            hybrid.replace_gate_with_lut(id).expect("narrow gates fit");
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let k = hybrid.node(id).fanin().len();
            hybrid.set_lut_config(id, TruthTable::new(k, state));
        }

        // Programmed view: every mask survives write -> parse, by name.
        let text = bench_format::write(&hybrid);
        let back = bench_format::parse(&text, hybrid.name()).expect("own output parses");
        prop_assert_eq!(back.lut_count(), gates.len());
        for &id in &gates {
            let name = hybrid.node_name(id);
            let bid = back.find(name).expect("LUT name survives");
            prop_assert_eq!(back.lut_config(bid), hybrid.lut_config(id));
        }

        // Redacted (foundry) view: `LUT ?` lines survive as unprogrammed
        // LUTs with the same fan-in.
        let (stripped, secret) = hybrid.redact();
        let text = bench_format::write(&stripped);
        prop_assert_eq!(text.matches("LUT ?").count(), secret.len());
        let back = bench_format::parse(&text, stripped.name()).expect("redacted output parses");
        for &id in &gates {
            let bid = back.find(hybrid.node_name(id)).expect("LUT name survives");
            prop_assert_eq!(back.lut_config(bid), None);
            prop_assert_eq!(
                back.node(bid).fanin().len(),
                hybrid.node(id).fanin().len()
            );
        }
    }

    #[test]
    fn malformed_lines_report_their_1_based_position(
        n in arb_circuit(),
        pick in any::<usize>(),
    ) {
        let text = bench_format::write(&n);
        let mut lines: Vec<&str> = text.lines().collect();
        let at = pick % (lines.len() + 1);
        lines.insert(at, "@@ not a bench statement @@");
        let bad = lines.join("\n");
        match bench_format::parse(&bad, "bad") {
            Err(NetlistError::Parse { line, .. }) => prop_assert_eq!(line, at + 1),
            other => prop_assert!(false, "expected a parse error, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn lut_replacement_round_trips_through_redaction(n in arb_circuit()) {
        let mut hybrid = n.clone();
        let gates: Vec<_> = hybrid
            .node_ids()
            .filter(|&id| hybrid.node(id).gate_kind().is_some())
            .step_by(2)
            .collect();
        for id in gates {
            hybrid.replace_gate_with_lut(id).expect("narrow gates fit");
        }
        let (stripped, secret) = hybrid.redact();
        prop_assert_eq!(secret.len(), hybrid.lut_count());
        let mut restored = stripped;
        restored.program(&secret);
        prop_assert_eq!(restored, hybrid);
    }
}
