//! Property-based tests for the netlist substrate: truth-table algebra,
//! random-circuit structural invariants, and format round-trips.

use std::sync::Arc;

use proptest::prelude::*;

use sttlock_netlist::{
    bench_format, graph, verilog, CircuitView, GateKind, HybridOverlay, NetlistBuilder,
    NetlistError, TruthTable,
};

fn arb_table(inputs: usize) -> impl Strategy<Value = TruthTable> {
    any::<u64>().prop_map(move |bits| TruthTable::new(inputs, bits))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn similarity_is_symmetric_and_bounded(a in arb_table(3), b in arb_table(3)) {
        let s = a.similarity(&b);
        prop_assert_eq!(s, b.similarity(&a));
        prop_assert!(s <= a.rows());
    }

    #[test]
    fn self_similarity_is_total(a in arb_table(4)) {
        prop_assert_eq!(a.similarity(&a), a.rows());
        prop_assert_eq!(a.similarity(&a.complement()), 0);
    }

    #[test]
    fn complement_partitions_similarity(a in arb_table(3), b in arb_table(3)) {
        // Agreements with b and with ¬b partition the rows.
        prop_assert_eq!(a.similarity(&b) + a.similarity(&b.complement()), a.rows());
    }

    #[test]
    fn eval_parallel_matches_eval(a in arb_table(3), lanes in any::<[u64; 3]>()) {
        let out = a.eval_parallel(&lanes);
        for lane in 0..64 {
            let mut row = 0usize;
            for (i, w) in lanes.iter().enumerate() {
                if (w >> lane) & 1 == 1 {
                    row |= 1 << i;
                }
            }
            prop_assert_eq!((out >> lane) & 1 == 1, a.eval(row));
        }
    }

    #[test]
    fn new_masks_out_of_range_bits(bits in any::<u64>()) {
        let t = TruthTable::new(2, bits);
        prop_assert_eq!(t.bits() & !0xF, 0);
    }
}

/// Strategy: a small random combinational-plus-registers circuit, built
/// by wiring each new gate to previously declared signals only (so the
/// result is valid by construction).
fn arb_circuit() -> impl Strategy<Value = sttlock_netlist::Netlist> {
    let kinds = prop::sample::select(vec![
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Not,
    ]);
    (
        2usize..5, // inputs
        prop::collection::vec((kinds, any::<u32>(), any::<u32>(), prop::bool::ANY), 1..40),
    )
        .prop_map(|(n_inputs, gates)| {
            let mut b = NetlistBuilder::new("prop");
            let mut signals: Vec<String> = Vec::new();
            for i in 0..n_inputs {
                let name = format!("i{i}");
                b.input(&name);
                signals.push(name);
            }
            for (g, (kind, f1, f2, make_ff)) in gates.into_iter().enumerate() {
                let name = format!("g{g}");
                let a = signals[f1 as usize % signals.len()].clone();
                if kind.is_unary() {
                    b.gate(&name, kind, &[&a]);
                } else {
                    let mut c = signals[f2 as usize % signals.len()].clone();
                    if c == a {
                        c = signals[(f2 as usize + 1) % signals.len()].clone();
                    }
                    if c == a {
                        b.gate(&name, GateKind::Not, &[&a]);
                    } else {
                        b.gate(&name, kind, &[&a, &c]);
                    }
                }
                signals.push(name.clone());
                if make_ff {
                    let ff = format!("f{g}");
                    b.dff(&ff, &name);
                    signals.push(ff);
                }
            }
            let last = signals.last().expect("nonempty").clone();
            b.output(&last);
            b.finish().expect("constructed circuits are valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_circuits_validate_and_level(n in arb_circuit()) {
        prop_assert!(n.check_acyclic().is_ok());
        let order = graph::topo_order(&n);
        prop_assert_eq!(order.len(), n.gate_count());
        // Levels respect the topological order.
        let levels = graph::levels(&n);
        for &id in &order {
            for &f in n.node(id).fanin() {
                if n.node(f).is_combinational() {
                    prop_assert!(levels[f.index()] < levels[id.index()]);
                }
            }
        }
    }

    #[test]
    fn bench_round_trip_preserves_structure(n in arb_circuit()) {
        let text = bench_format::write(&n);
        let back = bench_format::parse(&text, n.name()).expect("own output parses");
        prop_assert_eq!(back.gate_count(), n.gate_count());
        prop_assert_eq!(back.dff_count(), n.dff_count());
        prop_assert_eq!(back.inputs().len(), n.inputs().len());
        prop_assert_eq!(back.outputs().len(), n.outputs().len());
    }

    #[test]
    fn verilog_round_trip_preserves_structure(n in arb_circuit()) {
        let text = verilog::write(&n);
        let back = verilog::parse(&text).expect("own output parses");
        prop_assert_eq!(back.gate_count(), n.gate_count());
        prop_assert_eq!(back.dff_count(), n.dff_count());
        prop_assert_eq!(back.inputs().len(), n.inputs().len());
        prop_assert_eq!(back.outputs().len(), n.outputs().len());
    }

    #[test]
    fn bench_lut_masks_survive_round_trip(n in arb_circuit(), seed in any::<u64>()) {
        // Replace every other gate with a LUT and program each with an
        // arbitrary mask, so the round trip exercises `LUT 0x..` lines
        // beyond the gate-derived truth tables.
        let mut hybrid = n.clone();
        let gates: Vec<_> = hybrid
            .node_ids()
            .filter(|&id| hybrid.node(id).gate_kind().is_some())
            .step_by(2)
            .collect();
        let mut state = seed | 1;
        for &id in &gates {
            hybrid.replace_gate_with_lut(id).expect("narrow gates fit");
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let k = hybrid.node(id).fanin().len();
            hybrid.set_lut_config(id, TruthTable::new(k, state));
        }

        // Programmed view: every mask survives write -> parse, by name.
        let text = bench_format::write(&hybrid);
        let back = bench_format::parse(&text, hybrid.name()).expect("own output parses");
        prop_assert_eq!(back.lut_count(), gates.len());
        for &id in &gates {
            let name = hybrid.node_name(id);
            let bid = back.find(name).expect("LUT name survives");
            prop_assert_eq!(back.lut_config(bid), hybrid.lut_config(id));
        }

        // Redacted (foundry) view: `LUT ?` lines survive as unprogrammed
        // LUTs with the same fan-in.
        let (stripped, secret) = hybrid.redact();
        let text = bench_format::write(&stripped);
        prop_assert_eq!(text.matches("LUT ?").count(), secret.len());
        let back = bench_format::parse(&text, stripped.name()).expect("redacted output parses");
        for &id in &gates {
            let bid = back.find(hybrid.node_name(id)).expect("LUT name survives");
            prop_assert_eq!(back.lut_config(bid), None);
            prop_assert_eq!(
                back.node(bid).fanin().len(),
                hybrid.node(id).fanin().len()
            );
        }
    }

    #[test]
    fn malformed_lines_report_their_1_based_position(
        n in arb_circuit(),
        pick in any::<usize>(),
    ) {
        let text = bench_format::write(&n);
        let mut lines: Vec<&str> = text.lines().collect();
        let at = pick % (lines.len() + 1);
        lines.insert(at, "@@ not a bench statement @@");
        let bad = lines.join("\n");
        match bench_format::parse(&bad, "bad") {
            Err(NetlistError::Parse { line, .. }) => prop_assert_eq!(line, at + 1),
            other => prop_assert!(false, "expected a parse error, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn lut_replacement_round_trips_through_redaction(n in arb_circuit()) {
        let mut hybrid = n.clone();
        let gates: Vec<_> = hybrid
            .node_ids()
            .filter(|&id| hybrid.node(id).gate_kind().is_some())
            .step_by(2)
            .collect();
        for id in gates {
            hybrid.replace_gate_with_lut(id).expect("narrow gates fit");
        }
        let (stripped, secret) = hybrid.redact();
        prop_assert_eq!(secret.len(), hybrid.lut_count());
        let mut restored = stripped;
        restored.program(&secret);
        prop_assert_eq!(restored, hybrid);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A copy-on-write overlay, driven by an arbitrary interleaving of
    /// gate→LUT swaps, reprogrammings and gate restorations, must
    /// materialize bit-for-bit into what the same script produces by
    /// cloning the netlist and mutating it in place — checked after
    /// every step, not just at the end.
    #[test]
    fn overlay_materialize_equals_clone_then_mutate(
        n in arb_circuit(),
        script in prop::collection::vec((0u8..3, any::<u32>(), any::<u64>()), 1..24),
    ) {
        let base = Arc::new(n);
        let gates: Vec<_> = base
            .node_ids()
            .filter(|&id| base.node(id).gate_kind().is_some())
            .collect();
        prop_assert!(!gates.is_empty());
        let mut overlay = HybridOverlay::new(Arc::clone(&base));
        let mut mutated = (*base).clone();
        for (op, pick, bits) in script {
            let id = gates[pick as usize % gates.len()];
            match op {
                0 => {
                    if overlay.node(id).gate_kind().is_some() {
                        let a = overlay.replace_gate_with_lut(id);
                        let b = mutated.replace_gate_with_lut(id);
                        prop_assert_eq!(a.ok(), b.ok());
                    }
                }
                1 => {
                    if overlay.node(id).is_lut() {
                        let k = overlay.node(id).fanin().len();
                        let t = TruthTable::new(k, bits);
                        overlay.set_lut_config(id, t);
                        mutated.set_lut_config(id, t);
                    }
                }
                _ => {
                    if overlay.node(id).is_lut() {
                        let kind = base.node(id).gate_kind().expect("was a gate");
                        overlay.restore_lut_to_gate(id, kind);
                        mutated.restore_lut_to_gate(id, kind);
                    }
                }
            }
            prop_assert_eq!(overlay.materialize(), mutated.clone());
        }
        // The base behind the overlay was never touched.
        let untouched = HybridOverlay::new(Arc::clone(&base)).materialize();
        prop_assert_eq!(untouched, (*base).clone());
    }

    /// After any run of overlay edits, a fresh view over the
    /// materialized variant answers exactly like the free `graph::*`
    /// recomputations — and, because LUT swaps preserve wiring, exactly
    /// like the memoized view of the shared base.
    #[test]
    fn view_matches_fresh_recomputation_after_overlay_edits(
        n in arb_circuit(),
        picks in prop::collection::vec(any::<u32>(), 1..10),
    ) {
        let base = Arc::new(n);
        let gates: Vec<_> = base
            .node_ids()
            .filter(|&id| base.node(id).gate_kind().is_some())
            .collect();
        prop_assert!(!gates.is_empty());
        let base_view = CircuitView::new(&base);
        // Warm every memo before the edits start.
        let _ = (base_view.topo_order(), base_view.fanout(), base_view.levels());

        let mut overlay = HybridOverlay::new(Arc::clone(&base));
        for pick in picks {
            let id = gates[pick as usize % gates.len()];
            if overlay.node(id).gate_kind().is_some() {
                let _ = overlay.replace_gate_with_lut(id);
            }
            let mat = overlay.materialize();
            let view = CircuitView::new(&mat);
            let fresh_topo = graph::topo_order(&mat);
            let fresh_fanout = graph::fanout_map(&mat);
            let fresh_levels = graph::levels(&mat);
            prop_assert_eq!(view.topo_order(), fresh_topo.as_slice());
            prop_assert_eq!(view.fanout(), fresh_fanout.as_slice());
            prop_assert_eq!(view.levels(), fresh_levels.as_slice());
            prop_assert_eq!(view.comb_depth(), graph::comb_depth(&mat));
            let roots = [gates[0]];
            prop_assert_eq!(
                view.fanin_cone(&roots, true),
                graph::fanin_cone(&mat, &roots, true)
            );
            prop_assert_eq!(
                view.fanout_cone(&roots, false),
                graph::fanout_cone(&mat, &roots, false)
            );
            // LUT swaps never rewire fan-ins, so the *base* view's facts
            // remain valid for every materialized variant.
            prop_assert_eq!(base_view.topo_order(), view.topo_order());
            prop_assert_eq!(base_view.fanout(), view.fanout());
            prop_assert_eq!(base_view.levels(), view.levels());
        }
    }
}

/// Characters spliced into valid netlist text by the fuzz properties:
/// the format's own structure characters, plus multibyte UTF-8 — a
/// 2-byte char landing inside a keyword used to panic the fixed-length
/// keyword slice in the `.bench` reader.
const MANGLE_CHARS: &[char] = &[
    '(', ')', '=', ',', '#', '?', ';', ' ', '\n', 'x', '0', 'É', 'Ω', '€', '🜁',
];

/// Applies character-level replace/insert/delete edits to `text`.
/// Char-wise (not byte-wise) so the result stays valid UTF-8, which is
/// all a `&str` parser can ever receive.
fn mangle(text: &str, edits: &[(usize, u8, u8)]) -> String {
    let mut chars: Vec<char> = text.chars().collect();
    for &(pos, pick, op) in edits {
        if chars.is_empty() {
            break;
        }
        let at = pos % chars.len();
        let c = MANGLE_CHARS[pick as usize % MANGLE_CHARS.len()];
        match op % 3 {
            0 => chars[at] = c,
            1 => chars.insert(at, c),
            _ => {
                chars.remove(at);
            }
        }
    }
    chars.into_iter().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Byte-mangled `.bench` text must parse to Ok or a typed error —
    /// never a panic.
    #[test]
    fn mangled_bench_text_never_panics(
        n in arb_circuit(),
        edits in prop::collection::vec((any::<usize>(), any::<u8>(), any::<u8>()), 1..12),
    ) {
        let bad = mangle(&bench_format::write(&n), &edits);
        let _ = bench_format::parse(&bad, "fuzz");
    }

    /// Byte-mangled structural Verilog must parse to Ok or a typed
    /// error — never a panic.
    #[test]
    fn mangled_verilog_text_never_panics(
        n in arb_circuit(),
        edits in prop::collection::vec((any::<usize>(), any::<u8>(), any::<u8>()), 1..12),
    ) {
        let bad = mangle(&verilog::write(&n), &edits);
        let _ = verilog::parse(&bad);
    }
}
