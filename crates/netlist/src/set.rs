//! Compact membership sets over [`NodeId`]s.
//!
//! Selection loops ask "is this node on that path?" once per candidate
//! gate; a `Vec::contains` scan there turns an O(gates) pass into
//! O(gates × path length). [`NodeSet`] answers the same question from a
//! packed bit vector in O(1).

use crate::id::NodeId;

/// A membership set over [`NodeId`]s, one bit per node index.
///
/// The set grows on insert; [`contains`](NodeSet::contains) on an id
/// beyond the allocated range is simply `false`, so a set built against
/// one netlist can be queried with ids from a larger one without
/// panicking.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct NodeSet {
    bits: Vec<u64>,
}

impl NodeSet {
    /// An empty set with room for `capacity` node indices preallocated.
    pub fn with_capacity(capacity: usize) -> Self {
        NodeSet {
            bits: vec![0; capacity.div_ceil(64)],
        }
    }

    /// Adds `id` to the set, growing the backing storage if needed.
    pub fn insert(&mut self, id: NodeId) {
        let (word, bit) = (id.index() / 64, id.index() % 64);
        if word >= self.bits.len() {
            self.bits.resize(word + 1, 0);
        }
        self.bits[word] |= 1 << bit;
    }

    /// Whether `id` is in the set.
    pub fn contains(&self, id: NodeId) -> bool {
        let (word, bit) = (id.index() / 64, id.index() % 64);
        self.bits.get(word).is_some_and(|w| w >> bit & 1 == 1)
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set has no members.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }
}

impl FromIterator<NodeId> for NodeSet {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        let mut set = NodeSet::default();
        for id in iter {
            set.insert(id);
        }
        set
    }
}

impl Extend<NodeId> for NodeSet {
    fn extend<I: IntoIterator<Item = NodeId>>(&mut self, iter: I) {
        for id in iter {
            self.insert(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn insert_and_contains() {
        let mut s = NodeSet::with_capacity(10);
        assert!(s.is_empty());
        s.insert(id(3));
        s.insert(id(64));
        s.insert(id(3)); // idempotent
        assert!(s.contains(id(3)));
        assert!(s.contains(id(64)));
        assert!(!s.contains(id(2)));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn out_of_range_query_is_false() {
        let s: NodeSet = [id(1)].into_iter().collect();
        assert!(!s.contains(id(1_000_000)));
    }

    #[test]
    fn equality_ignores_construction_order() {
        let a: NodeSet = [id(1), id(70)].into_iter().collect();
        let b: NodeSet = [id(70), id(1)].into_iter().collect();
        assert_eq!(a, b);
    }
}
