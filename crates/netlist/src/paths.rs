//! I/O path sampling per Section IV of the paper.
//!
//! The selection algorithms do not enumerate all paths of a circuit (there
//! are exponentially many); instead, the paper samples a fraction of the
//! components (2 % by default), and for each sampled component performs a
//! depth-first search to a primary input and to a primary output such that
//! the resulting input-to-output path crosses at least two flip-flops.
//! Unique paths are collected, paths touching the critical path are
//! discarded, and the survivors are sorted by *depth* — the number of
//! flip-flops between the primary input and the primary output.

use std::collections::HashSet;

use rand::seq::SliceRandom;
use rand::Rng;

use crate::id::NodeId;
use crate::netlist::Netlist;
use crate::set::NodeSet;
use crate::view::CircuitView;

/// A primary-input → primary-output path through the sequential netlist.
///
/// `nodes` starts at a primary input and ends at a node driving a primary
/// output; consecutive nodes are connected by a fan-in/fan-out edge, and
/// the path may cross flip-flops (those crossings define its
/// [`ff_count`](IoPath::ff_count), the paper's "depth").
///
/// Membership queries ([`contains`](IoPath::contains)) are O(1): the
/// constructor precomputes a [`NodeSet`] bitset over the path nodes.
/// Equality and hashing consider only `nodes` and `ff_count`.
#[derive(Debug, Clone)]
pub struct IoPath {
    /// Path nodes from primary input to output driver, inclusive.
    pub nodes: Vec<NodeId>,
    /// Number of flip-flops on the path — the paper's depth `D`.
    pub ff_count: usize,
    /// Precomputed membership bitset over `nodes`.
    member: NodeSet,
}

impl PartialEq for IoPath {
    fn eq(&self, other: &Self) -> bool {
        self.nodes == other.nodes && self.ff_count == other.ff_count
    }
}

impl Eq for IoPath {}

impl std::hash::Hash for IoPath {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.nodes.hash(state);
        self.ff_count.hash(state);
    }
}

impl IoPath {
    /// Builds a path from its node sequence, precomputing the membership
    /// bitset. `ff_count` is the number of flip-flops among `nodes`.
    pub fn new(nodes: Vec<NodeId>, ff_count: usize) -> Self {
        let member = nodes.iter().copied().collect();
        IoPath {
            nodes,
            ff_count,
            member,
        }
    }

    /// Whether `id` lies on the path. O(1) via the precomputed bitset.
    pub fn contains(&self, id: NodeId) -> bool {
        self.member.contains(id)
    }

    /// Splits the I/O path into its *timing paths*: maximal combinational
    /// segments bounded by primary inputs, flip-flops and primary outputs.
    ///
    /// Flip-flops themselves are not part of any segment. Each returned
    /// segment contains only gates and LUTs, in path order, and may be
    /// empty when two flip-flops are back to back.
    pub fn segments(&self, netlist: &Netlist) -> Vec<Vec<NodeId>> {
        let mut segments = Vec::new();
        let mut current = Vec::new();
        for &id in &self.nodes {
            if netlist.node(id).is_combinational() {
                current.push(id);
            } else if !current.is_empty() {
                segments.push(std::mem::take(&mut current));
            }
        }
        if !current.is_empty() {
            segments.push(current);
        }
        segments
    }

    /// The gates/LUTs on the path (combinational nodes only), in order.
    pub fn combinational_nodes(&self, netlist: &Netlist) -> Vec<NodeId> {
        self.nodes
            .iter()
            .copied()
            .filter(|&id| netlist.node(id).is_combinational())
            .collect()
    }
}

/// Configuration of the path sampler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathSamplerConfig {
    /// Fraction of components to sample as DFS seeds (paper: 0.02).
    pub sample_fraction: f64,
    /// Minimum number of sampled seeds regardless of circuit size.
    pub min_samples: usize,
    /// Minimum flip-flops a path must cross to be kept (paper: 2).
    pub min_ffs: usize,
    /// DFS retry attempts per seed before giving up on it.
    pub attempts_per_seed: usize,
}

impl Default for PathSamplerConfig {
    fn default() -> Self {
        PathSamplerConfig {
            sample_fraction: 0.02,
            min_samples: 8,
            min_ffs: 2,
            attempts_per_seed: 4,
        }
    }
}

/// Samples unique I/O paths per the paper's procedure and returns them
/// sorted by descending flip-flop depth.
///
/// The search is randomized; pass a seeded RNG for reproducible runs.
/// Seeds that cannot reach both a primary input and a primary output with
/// the required number of flip-flops are silently dropped, so the result
/// may contain fewer paths than seeds (and may be empty for purely
/// combinational circuits when `cfg.min_ffs > 0`).
pub fn sample_io_paths<R: Rng + ?Sized>(
    netlist: &Netlist,
    cfg: &PathSamplerConfig,
    rng: &mut R,
) -> Vec<IoPath> {
    sample_io_paths_with(&CircuitView::new(netlist), cfg, rng)
}

/// [`sample_io_paths`] against a shared [`CircuitView`], reusing its
/// memoized fan-out map and output set instead of recomputing them.
pub fn sample_io_paths_with<R: Rng + ?Sized>(
    view: &CircuitView<'_>,
    cfg: &PathSamplerConfig,
    rng: &mut R,
) -> Vec<IoPath> {
    let netlist = view.netlist();
    let comb: Vec<NodeId> = netlist
        .iter()
        .filter(|(_, n)| n.is_combinational())
        .map(|(id, _)| id)
        .collect();
    if comb.is_empty() {
        return Vec::new();
    }
    let want = ((comb.len() as f64 * cfg.sample_fraction).ceil() as usize)
        .max(cfg.min_samples)
        .min(comb.len());
    let seeds: Vec<NodeId> = comb.choose_multiple(rng, want).copied().collect();

    let fanout = view.fanout();
    let output_set = view.output_set();

    let mut unique: HashSet<Vec<NodeId>> = HashSet::new();
    let mut paths = Vec::new();
    for seed in seeds {
        for _ in 0..cfg.attempts_per_seed {
            let Some(back) = dfs_to_input(netlist, seed, rng) else {
                break; // no PI reachable at all; retrying will not help much
            };
            let Some(fwd) = dfs_to_output(netlist, fanout, output_set, seed, rng) else {
                break;
            };
            // back ends at seed; fwd starts at seed.
            let mut nodes = back;
            nodes.extend_from_slice(&fwd[1..]);
            let ff_count = nodes
                .iter()
                .filter(|&&id| netlist.node(id).is_dff())
                .count();
            if ff_count < cfg.min_ffs {
                continue; // randomized retry may find a deeper route
            }
            if unique.insert(nodes.clone()) {
                paths.push(IoPath::new(nodes, ff_count));
                break;
            }
        }
    }
    paths.sort_by(|a, b| b.ff_count.cmp(&a.ff_count).then(a.nodes.cmp(&b.nodes)));
    paths
}

/// Removes every path that touches any of `avoid` (used to drop paths
/// containing the critical path, conservatively interpreted as "any node
/// of the critical path").
pub fn retain_avoiding(paths: &mut Vec<IoPath>, avoid: &[NodeId]) {
    let avoid: HashSet<NodeId> = avoid.iter().copied().collect();
    paths.retain(|p| !p.nodes.iter().any(|n| avoid.contains(n)));
}

/// Randomized DFS from `start` backward through fan-ins to a primary
/// input. Returns the path PI → … → start, or `None` if no primary input
/// is reachable (e.g. the cone is rooted only in constants).
fn dfs_to_input<R: Rng + ?Sized>(
    netlist: &Netlist,
    start: NodeId,
    rng: &mut R,
) -> Option<Vec<NodeId>> {
    // Iterative DFS; `trail` holds (node, remaining shuffled fan-ins).
    let mut visited = vec![false; netlist.len()];
    let mut trail: Vec<(NodeId, Vec<NodeId>)> = Vec::new();
    visited[start.index()] = true;
    trail.push((start, shuffled(netlist.node(start).fanin(), rng)));
    while let Some((node, children)) = trail.last_mut() {
        if netlist.node(*node).is_input() {
            let mut path: Vec<NodeId> = trail.iter().map(|(n, _)| *n).collect();
            path.reverse();
            return Some(path);
        }
        match children.pop() {
            Some(next) if !visited[next.index()] => {
                visited[next.index()] = true;
                let grand = shuffled(netlist.node(next).fanin(), rng);
                trail.push((next, grand));
            }
            Some(_) => {}
            None => {
                trail.pop();
            }
        }
    }
    None
}

/// Randomized DFS from `start` forward through fan-outs to a node driving
/// a primary output. Returns the path start → … → output driver.
fn dfs_to_output<R: Rng + ?Sized>(
    netlist: &Netlist,
    fanout: &[Vec<NodeId>],
    outputs: &NodeSet,
    start: NodeId,
    rng: &mut R,
) -> Option<Vec<NodeId>> {
    let mut visited = vec![false; netlist.len()];
    let mut trail: Vec<(NodeId, Vec<NodeId>)> = Vec::new();
    visited[start.index()] = true;
    trail.push((start, shuffled(&fanout[start.index()], rng)));
    while let Some((node, children)) = trail.last_mut() {
        if outputs.contains(*node) {
            return Some(trail.iter().map(|(n, _)| *n).collect());
        }
        match children.pop() {
            Some(next) if !visited[next.index()] => {
                visited[next.index()] = true;
                let grand = shuffled(&fanout[next.index()], rng);
                trail.push((next, grand));
            }
            Some(_) => {}
            None => {
                trail.pop();
            }
        }
    }
    None
}

fn shuffled<R: Rng + ?Sized>(items: &[NodeId], rng: &mut R) -> Vec<NodeId> {
    let mut v = items.to_vec();
    v.shuffle(rng);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::NetlistBuilder;
    use crate::node::GateKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A 3-stage pipeline: in → g0 → ff1 → g1 → ff2 → g2 → out.
    fn pipeline() -> Netlist {
        let mut b = NetlistBuilder::new("pipe");
        b.input("in");
        b.input("c");
        b.gate("g0", GateKind::And, &["in", "c"]);
        b.dff("ff1", "g0");
        b.gate("g1", GateKind::Or, &["ff1", "c"]);
        b.dff("ff2", "g1");
        b.gate("g2", GateKind::Xor, &["ff2", "c"]);
        b.output("g2");
        b.finish().unwrap()
    }

    #[test]
    fn samples_paths_with_two_ffs() {
        let n = pipeline();
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = PathSamplerConfig {
            sample_fraction: 1.0,
            min_samples: 3,
            min_ffs: 2,
            attempts_per_seed: 8,
        };
        let paths = sample_io_paths(&n, &cfg, &mut rng);
        assert!(!paths.is_empty(), "the full pipeline path must be found");
        for p in &paths {
            assert!(p.ff_count >= 2);
            assert!(n.node(p.nodes[0]).is_input());
            assert!(n.outputs().contains(p.nodes.last().unwrap()));
            // consecutive nodes are actually connected
            for w in p.nodes.windows(2) {
                assert!(
                    n.node(w[1]).fanin().contains(&w[0]),
                    "{} -> {} is not an edge",
                    n.node_name(w[0]),
                    n.node_name(w[1])
                );
            }
        }
    }

    #[test]
    fn paths_sorted_by_depth() {
        let n = pipeline();
        let mut rng = StdRng::seed_from_u64(11);
        let cfg = PathSamplerConfig {
            sample_fraction: 1.0,
            min_samples: 3,
            min_ffs: 0,
            attempts_per_seed: 8,
        };
        let paths = sample_io_paths(&n, &cfg, &mut rng);
        for w in paths.windows(2) {
            assert!(w[0].ff_count >= w[1].ff_count);
        }
    }

    #[test]
    fn segments_split_on_ffs() {
        let n = pipeline();
        let path = IoPath::new(
            ["in", "g0", "ff1", "g1", "ff2", "g2"]
                .iter()
                .map(|s| n.find(s).unwrap())
                .collect(),
            2,
        );
        let segs = path.segments(&n);
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[0], vec![n.find("g0").unwrap()]);
        assert_eq!(segs[1], vec![n.find("g1").unwrap()]);
        assert_eq!(segs[2], vec![n.find("g2").unwrap()]);
        assert_eq!(path.combinational_nodes(&n).len(), 3);
    }

    #[test]
    fn retain_avoiding_drops_touching_paths() {
        let n = pipeline();
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = PathSamplerConfig {
            sample_fraction: 1.0,
            min_samples: 3,
            min_ffs: 2,
            attempts_per_seed: 8,
        };
        let mut paths = sample_io_paths(&n, &cfg, &mut rng);
        assert!(!paths.is_empty());
        retain_avoiding(&mut paths, &[n.find("g1").unwrap()]);
        // every ≥2-FF path in this pipeline goes through g1
        assert!(paths.is_empty());
    }

    #[test]
    fn no_path_when_min_ffs_unreachable() {
        let mut b = NetlistBuilder::new("comb");
        b.input("a");
        b.input("b");
        b.gate("g", GateKind::And, &["a", "b"]);
        b.output("g");
        let n = b.finish().unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let paths = sample_io_paths(&n, &PathSamplerConfig::default(), &mut rng);
        assert!(paths.is_empty());
    }

    #[test]
    fn feedback_loops_do_not_hang_the_dfs() {
        let mut b = NetlistBuilder::new("fb");
        b.input("en");
        b.gate("next", GateKind::Xor, &["en", "state"]);
        b.dff("state", "next");
        b.gate("o", GateKind::And, &["state", "en"]);
        b.output("o");
        let n = b.finish().unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = PathSamplerConfig {
            sample_fraction: 1.0,
            min_samples: 4,
            min_ffs: 1,
            attempts_per_seed: 8,
        };
        let paths = sample_io_paths(&n, &cfg, &mut rng);
        for p in &paths {
            assert!(p.ff_count >= 1);
        }
    }
}
