//! Copy-on-write hybrid-netlist overlays.
//!
//! Every selection algorithm, the attack loop's hypothesis enumeration
//! and the campaign runner derive *variants* of one base circuit that
//! differ only in which gates became STT LUTs and what those LUTs are
//! programmed with. Cloning the whole arena per variant is O(circuit);
//! a [`HybridOverlay`] keeps one immutable [`Arc<Netlist>`] base plus a
//! sparse edit map, so a variant costs O(edits) and many variants — even
//! across worker threads — share the same base storage.
//!
//! Because every edit the overlay can express preserves the node's
//! fan-in wiring, all graph facts of the base (topological order,
//! fan-out map, levels, cones) remain valid for every overlay — one
//! [`CircuitView`](crate::view::CircuitView) of the base serves them
//! all. [`materialize`](HybridOverlay::materialize) produces a plain
//! [`Netlist`] bit-identical to cloning the base and applying the same
//! mutation calls directly.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::error::NetlistError;
use crate::id::NodeId;
use crate::netlist::Netlist;
use crate::node::{GateKind, Node};
use crate::truth::{TruthTable, MAX_LUT_INPUTS};

/// A sparse set of wiring-preserving edits over a shared base netlist.
///
/// Supported edits mirror the [`Netlist`] mutation entry points that the
/// hybrid flow uses: [`replace_gate_with_lut`], [`restore_lut_to_gate`],
/// [`set_lut_config`] and [`program`]. Structural rewires
/// ([`Netlist::rewire_lut`]) are deliberately *not* supported — they
/// would invalidate the base's graph facts, defeating the sharing.
///
/// [`replace_gate_with_lut`]: HybridOverlay::replace_gate_with_lut
/// [`restore_lut_to_gate`]: HybridOverlay::restore_lut_to_gate
/// [`set_lut_config`]: HybridOverlay::set_lut_config
/// [`program`]: HybridOverlay::program
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HybridOverlay {
    base: Arc<Netlist>,
    edits: BTreeMap<NodeId, Node>,
}

impl HybridOverlay {
    /// An overlay with no edits over `base`.
    pub fn new(base: Arc<Netlist>) -> Self {
        HybridOverlay {
            base,
            edits: BTreeMap::new(),
        }
    }

    /// The shared base netlist.
    pub fn base(&self) -> &Arc<Netlist> {
        &self.base
    }

    /// The node as seen through the overlay: the edited node if `id` was
    /// edited, the base node otherwise.
    pub fn node(&self, id: NodeId) -> &Node {
        self.edits.get(&id).unwrap_or_else(|| self.base.node(id))
    }

    /// Whether `id` has been edited.
    pub fn is_edited(&self, id: NodeId) -> bool {
        self.edits.contains_key(&id)
    }

    /// Number of edited nodes.
    pub fn edit_count(&self) -> usize {
        self.edits.len()
    }

    /// The edits, in ascending node-id order.
    pub fn edits(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.edits.iter().map(|(&id, node)| (id, node))
    }

    /// The programmed configuration of the LUT at `id`, if any — the
    /// overlay analogue of [`Netlist::lut_config`].
    pub fn lut_config(&self, id: NodeId) -> Option<TruthTable> {
        match self.node(id) {
            Node::Lut { config, .. } => *config,
            _ => None,
        }
    }

    /// Replaces the standard cell at `id` with an equivalent programmed
    /// STT-LUT — the overlay analogue of
    /// [`Netlist::replace_gate_with_lut`], with identical semantics.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::LutTooWide`] if the gate fan-in exceeds
    /// the LUT capacity.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not refer to a [`Node::Gate`] (through the
    /// overlay).
    pub fn replace_gate_with_lut(&mut self, id: NodeId) -> Result<TruthTable, NetlistError> {
        let (kind, fanin) = match self.node(id) {
            Node::Gate { kind, fanin } => (*kind, fanin.clone()),
            other => panic!("replace_gate_with_lut: node {id} is {other:?}, not a gate"),
        };
        if fanin.len() > MAX_LUT_INPUTS {
            return Err(NetlistError::LutTooWide {
                name: self.base.node_name(id).to_owned(),
                fanin: fanin.len(),
            });
        }
        let config = TruthTable::from_gate(kind, fanin.len());
        self.edits.insert(
            id,
            Node::Lut {
                fanin,
                config: Some(config),
            },
        );
        Ok(config)
    }

    /// Reverts a LUT back into a standard cell — the overlay analogue of
    /// [`Netlist::restore_lut_to_gate`].
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a LUT (through the overlay) or the kind's
    /// arity does not fit the existing fan-in.
    pub fn restore_lut_to_gate(&mut self, id: NodeId, kind: GateKind) {
        let fanin = match self.node(id) {
            Node::Lut { fanin, .. } => fanin.clone(),
            other => panic!("restore_lut_to_gate: node {id} is {other:?}, not a LUT"),
        };
        assert!(
            kind.arity_ok(fanin.len()),
            "{kind} cannot take the LUT's fan-in {}",
            fanin.len()
        );
        self.edits.insert(id, Node::Gate { kind, fanin });
    }

    /// Programs (or reprograms) the LUT at `id` — the overlay analogue
    /// of [`Netlist::set_lut_config`].
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a LUT (through the overlay) or the table
    /// fan-in does not match the LUT fan-in.
    pub fn set_lut_config(&mut self, id: NodeId, table: TruthTable) {
        let fanin = match self.node(id) {
            Node::Lut { fanin, .. } => fanin.clone(),
            other => panic!("set_lut_config: node {id} is {other:?}, not a LUT"),
        };
        assert_eq!(
            table.inputs(),
            fanin.len(),
            "truth table fan-in must match LUT fan-in"
        );
        self.edits.insert(
            id,
            Node::Lut {
                fanin,
                config: Some(table),
            },
        );
    }

    /// Programs a redacted base from a bitstream — the overlay analogue
    /// of [`Netlist::program`].
    ///
    /// # Panics
    ///
    /// Panics if an id is not a LUT or a table width mismatches.
    pub fn program(&mut self, bitstream: &[(NodeId, TruthTable)]) {
        for &(id, table) in bitstream {
            self.set_lut_config(id, table);
        }
    }

    /// Clears the programmed configuration of the LUT at `id`, leaving a
    /// redacted LUT — the per-node analogue of [`Netlist::redact`], used
    /// to model a cell whose stored contents are lost.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a LUT (through the overlay).
    pub fn redact_lut(&mut self, id: NodeId) {
        let fanin = match self.node(id) {
            Node::Lut { fanin, .. } => fanin.clone(),
            other => panic!("redact_lut: node {id} is {other:?}, not a LUT"),
        };
        self.edits.insert(
            id,
            Node::Lut {
                fanin,
                config: None,
            },
        );
    }

    /// The bitstream currently stored in the overlay's programmed LUTs,
    /// in ascending node-id order — the edit-API counterpart of
    /// [`Netlist::redact`]'s bitstream half. Redacted LUTs are omitted.
    pub fn bitstream(&self) -> Vec<(NodeId, TruthTable)> {
        let mut out = Vec::new();
        for (id, _) in self.base.iter() {
            if let Node::Lut {
                config: Some(table),
                ..
            } = self.node(id)
            {
                out.push((id, *table));
            }
        }
        out
    }

    /// Produces a plain [`Netlist`] equal to cloning the base and
    /// applying this overlay's mutations directly — bit-identical,
    /// because the edits store the exact final node each mutation entry
    /// point would have written.
    pub fn materialize(&self) -> Netlist {
        let mut netlist = (*self.base).clone();
        for (&id, node) in &self.edits {
            netlist.set_node(id, node.clone());
        }
        netlist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::NetlistBuilder;

    fn toy() -> Arc<Netlist> {
        let mut b = NetlistBuilder::new("toy");
        b.input("a");
        b.input("b");
        b.gate("g1", GateKind::Nand, &["a", "b"]);
        b.dff("q", "g1");
        b.gate("g2", GateKind::Xor, &["q", "a"]);
        b.output("g2");
        Arc::new(b.finish().unwrap())
    }

    #[test]
    fn materialize_matches_clone_then_mutate() {
        let base = toy();
        let g1 = base.find("g1").unwrap();

        let mut overlay = HybridOverlay::new(Arc::clone(&base));
        let t_overlay = overlay.replace_gate_with_lut(g1).unwrap();

        let mut legacy = (*base).clone();
        let t_legacy = legacy.replace_gate_with_lut(g1).unwrap();

        assert_eq!(t_overlay, t_legacy);
        assert_eq!(overlay.materialize(), legacy);
    }

    #[test]
    fn base_is_shared_not_cloned() {
        let base = toy();
        let overlay = HybridOverlay::new(Arc::clone(&base));
        assert!(Arc::ptr_eq(overlay.base(), &base));
        assert_eq!(overlay.edit_count(), 0);
        assert_eq!(overlay.materialize(), *base);
    }

    #[test]
    fn reads_pass_through_edits() {
        let base = toy();
        let g1 = base.find("g1").unwrap();
        let mut overlay = HybridOverlay::new(Arc::clone(&base));
        assert_eq!(overlay.node(g1).gate_kind(), Some(GateKind::Nand));
        overlay.replace_gate_with_lut(g1).unwrap();
        assert!(overlay.node(g1).is_lut());
        assert!(overlay.is_edited(g1));
        assert_eq!(
            overlay.lut_config(g1),
            Some(TruthTable::from_gate(GateKind::Nand, 2))
        );
        // The shared base is untouched.
        assert!(!base.node(g1).is_lut());
    }

    #[test]
    fn restore_round_trips() {
        let base = toy();
        let g1 = base.find("g1").unwrap();
        let mut overlay = HybridOverlay::new(Arc::clone(&base));
        overlay.replace_gate_with_lut(g1).unwrap();
        overlay.restore_lut_to_gate(g1, GateKind::Nand);
        assert_eq!(overlay.materialize(), *base);
    }

    #[test]
    fn bitstream_round_trips_through_redaction() {
        let base = toy();
        let g1 = base.find("g1").unwrap();
        let g2 = base.find("g2").unwrap();
        let mut overlay = HybridOverlay::new(Arc::clone(&base));
        overlay.replace_gate_with_lut(g1).unwrap();
        overlay.replace_gate_with_lut(g2).unwrap();

        let bits = overlay.bitstream();
        assert_eq!(bits.len(), 2);
        assert_eq!(bits[0], (g1, TruthTable::from_gate(GateKind::Nand, 2)));
        assert_eq!(bits[1], (g2, TruthTable::from_gate(GateKind::Xor, 2)));

        overlay.redact_lut(g1);
        assert_eq!(overlay.lut_config(g1), None);
        assert_eq!(overlay.bitstream().len(), 1);

        // Re-programming the saved bitstream restores the hybrid.
        let saved = bits.clone();
        overlay.program(&saved);
        assert_eq!(overlay.bitstream(), bits);
    }

    #[test]
    fn program_mirrors_netlist_program() {
        let base = toy();
        let g1 = base.find("g1").unwrap();
        let mut hybrid = (*base).clone();
        hybrid.replace_gate_with_lut(g1).unwrap();
        let (stripped, bitstream) = hybrid.redact();

        let stripped = Arc::new(stripped);
        let mut overlay = HybridOverlay::new(Arc::clone(&stripped));
        overlay.program(&bitstream);
        assert_eq!(overlay.materialize(), hybrid);
    }
}
