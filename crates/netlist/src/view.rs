//! Shared, lazily memoized circuit-analysis facts.
//!
//! Every analysis in the stack — simulation, timing, SAT encoding, path
//! sampling, the selection algorithms, the security estimates — consumes
//! the same handful of graph facts: a topological order, the fan-out map,
//! logic levels, reachability cones. Recomputing them per consumer turns
//! a grid of analyses over one circuit into a grid of O(V+E) passes.
//!
//! [`CircuitView`] computes each fact at most once, on first use, behind
//! [`OnceLock`] interior mutability, and hands out either borrowed slices
//! or [`Arc`] handles (for consumers that outlive the view or cross
//! threads). The memoization contract is enforced by the borrow checker:
//! a view holds `&Netlist`, so no mutation entry point of [`Netlist`]
//! (which all take `&mut self`) can run while the view exists. There is
//! no partial invalidation — mutate the netlist, then build a fresh view.
//!
//! Copy-on-write edits that *preserve fan-in wiring* (gate ↔ LUT swaps,
//! LUT reprogramming — everything
//! [`HybridOverlay`](crate::overlay::HybridOverlay) can express) do not
//! change any fact computed here, so one view of the base netlist remains
//! valid for every overlay and every materialized variant of it.

use std::sync::{Arc, OnceLock};

use crate::graph;
use crate::id::NodeId;
use crate::netlist::Netlist;
use crate::set::NodeSet;

/// Memoized analysis facts over a borrowed [`Netlist`].
///
/// Cheap to construct: nothing is computed until the first query. All
/// getters are `&self`; the view is `Sync`, so analyses on worker threads
/// can share one view of a common base circuit.
#[derive(Debug)]
pub struct CircuitView<'a> {
    netlist: &'a Netlist,
    fanout: OnceLock<Arc<Vec<Vec<NodeId>>>>,
    comb_fanout: OnceLock<Arc<Vec<Vec<NodeId>>>>,
    topo: OnceLock<Arc<Vec<NodeId>>>,
    levels: OnceLock<Arc<Vec<u32>>>,
    output_set: OnceLock<Arc<NodeSet>>,
}

impl<'a> CircuitView<'a> {
    /// Wraps `netlist` without computing anything yet.
    pub fn new(netlist: &'a Netlist) -> Self {
        CircuitView {
            netlist,
            fanout: OnceLock::new(),
            comb_fanout: OnceLock::new(),
            topo: OnceLock::new(),
            levels: OnceLock::new(),
            output_set: OnceLock::new(),
        }
    }

    /// The underlying netlist, with the full borrow lifetime.
    pub fn netlist(&self) -> &'a Netlist {
        self.netlist
    }

    fn fanout_handle(&self) -> &Arc<Vec<Vec<NodeId>>> {
        self.fanout
            .get_or_init(|| Arc::new(graph::fanout_map(self.netlist)))
    }

    /// The fan-out map: `fanout()[i]` lists every reader of node `i`
    /// (combinational readers *and* flip-flop D pins), identical to
    /// [`graph::fanout_map`].
    pub fn fanout(&self) -> &[Vec<NodeId>] {
        self.fanout_handle()
    }

    /// Shared handle to the fan-out map.
    pub fn fanout_arc(&self) -> Arc<Vec<Vec<NodeId>>> {
        Arc::clone(self.fanout_handle())
    }

    fn comb_fanout_handle(&self) -> &Arc<Vec<Vec<NodeId>>> {
        self.comb_fanout.get_or_init(|| {
            let filtered = self
                .fanout()
                .iter()
                .map(|readers| {
                    readers
                        .iter()
                        .copied()
                        .filter(|&r| self.netlist.node(r).is_combinational())
                        .collect()
                })
                .collect();
            Arc::new(filtered)
        })
    }

    /// The fan-out map restricted to combinational readers — the
    /// propagation frontier of incremental timing.
    pub fn comb_fanout(&self) -> &[Vec<NodeId>] {
        self.comb_fanout_handle()
    }

    /// Shared handle to the combinational fan-out map.
    pub fn comb_fanout_arc(&self) -> Arc<Vec<Vec<NodeId>>> {
        Arc::clone(self.comb_fanout_handle())
    }

    fn topo_handle(&self) -> &Arc<Vec<NodeId>> {
        self.topo
            .get_or_init(|| Arc::new(graph::topo_order_with(self.netlist, self.fanout())))
    }

    /// A topological order of the combinational nodes, identical to
    /// [`graph::topo_order`].
    pub fn topo_order(&self) -> &[NodeId] {
        self.topo_handle()
    }

    /// Shared handle to the topological order.
    pub fn topo_order_arc(&self) -> Arc<Vec<NodeId>> {
        Arc::clone(self.topo_handle())
    }

    /// Logic level per node, identical to [`graph::levels`].
    pub fn levels(&self) -> &[u32] {
        self.levels
            .get_or_init(|| Arc::new(graph::levels_with(self.netlist, self.topo_order())))
    }

    /// The maximum logic level, identical to [`graph::comb_depth`].
    pub fn comb_depth(&self) -> u32 {
        self.levels().iter().copied().max().unwrap_or(0)
    }

    /// Membership set of the primary-output driver nodes.
    pub fn output_set(&self) -> &NodeSet {
        self.output_set
            .get_or_init(|| Arc::new(self.netlist.outputs().iter().copied().collect()))
    }

    /// The transitive fan-in cone of `roots`, identical to
    /// [`graph::fanin_cone`]. (Fan-in walks need no memoized map; this is
    /// here so consumers never reach around the view.)
    pub fn fanin_cone(&self, roots: &[NodeId], cross_dffs: bool) -> Vec<NodeId> {
        graph::fanin_cone(self.netlist, roots, cross_dffs)
    }

    /// The transitive fan-out cone of `roots`, identical to
    /// [`graph::fanout_cone`] but reusing the memoized fan-out map.
    pub fn fanout_cone(&self, roots: &[NodeId], cross_dffs: bool) -> Vec<NodeId> {
        graph::fanout_cone_with(self.netlist, self.fanout(), roots, cross_dffs)
    }

    /// Whether `target` is combinationally reachable from `from`,
    /// identical to [`graph::comb_reachable`] but reusing the memoized
    /// fan-out map.
    pub fn comb_reachable(&self, from: NodeId, target: NodeId) -> bool {
        graph::comb_reachable_with(self.netlist, self.fanout(), from, target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::NetlistBuilder;
    use crate::node::GateKind;

    fn chain() -> Netlist {
        let mut b = NetlistBuilder::new("chain");
        b.input("a");
        b.input("b");
        b.gate("g1", GateKind::Not, &["a"]);
        b.gate("g2", GateKind::And, &["g1", "a"]);
        b.dff("q", "g2");
        b.gate("g3", GateKind::Or, &["q", "b"]);
        b.output("g3");
        b.finish().unwrap()
    }

    #[test]
    fn answers_match_free_functions() {
        let n = chain();
        let v = CircuitView::new(&n);
        assert_eq!(v.topo_order(), graph::topo_order(&n).as_slice());
        assert_eq!(v.fanout(), graph::fanout_map(&n).as_slice());
        assert_eq!(v.levels(), graph::levels(&n).as_slice());
        assert_eq!(v.comb_depth(), graph::comb_depth(&n));
        let g2 = n.find("g2").unwrap();
        let g3 = n.find("g3").unwrap();
        assert_eq!(
            v.fanout_cone(&[g2], false),
            graph::fanout_cone(&n, &[g2], false)
        );
        assert_eq!(
            v.fanin_cone(&[g3], true),
            graph::fanin_cone(&n, &[g3], true)
        );
        assert_eq!(v.comb_reachable(g2, g3), graph::comb_reachable(&n, g2, g3));
    }

    #[test]
    fn memoized_handles_are_shared() {
        let n = chain();
        let v = CircuitView::new(&n);
        let a = v.topo_order_arc();
        let b = v.topo_order_arc();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(Arc::ptr_eq(&v.fanout_arc(), &v.fanout_arc()));
    }

    #[test]
    fn comb_fanout_drops_dff_readers() {
        let n = chain();
        let v = CircuitView::new(&n);
        let g2 = n.find("g2").unwrap();
        // g2 is read only by the DFF q — its combinational fan-out is empty.
        assert!(v.comb_fanout()[g2.index()].is_empty());
        assert_eq!(v.fanout()[g2.index()], vec![n.find("q").unwrap()]);
    }

    #[test]
    fn output_set_matches_outputs() {
        let n = chain();
        let v = CircuitView::new(&n);
        for &o in n.outputs() {
            assert!(v.output_set().contains(o));
        }
        assert!(!v.output_set().contains(n.find("g1").unwrap()));
    }

    #[test]
    fn view_is_sync() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<CircuitView<'_>>();
    }
}
