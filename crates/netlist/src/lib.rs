//! Gate-level netlist data model for the `sttlock` hybrid STT-CMOS toolkit.
//!
//! This crate is the structural substrate of the reproduction of
//! *"Hybrid STT-CMOS Designs for Reverse-engineering Prevention"*
//! (Winograd et al., DAC 2016). It provides:
//!
//! * [`Netlist`] — an arena-based gate-level netlist with primary inputs,
//!   primary outputs, combinational gates, D flip-flops, and reconfigurable
//!   [`Node::Lut`] nodes (the "missing gates" of the paper).
//! * [`NetlistBuilder`] — a name-resolving builder that tolerates forward
//!   references and flip-flop feedback loops.
//! * [`TruthTable`] — up-to-6-input truth tables with the pairwise
//!   *similarity* measure the paper uses to derive the α attack constants.
//! * [`graph`] — topological ordering, logic levels, fan-out maps and cone
//!   extraction over the combinational core.
//! * [`view::CircuitView`] — the shared analysis layer: each graph fact
//!   is computed at most once per circuit and every consumer (simulation,
//!   timing, SAT encoding, selection, attacks) reads the same memo.
//! * [`overlay::HybridOverlay`] — copy-on-write hybrid variants: one
//!   immutable base netlist plus sparse LUT-replacement edits, with a
//!   [`materialize`](overlay::HybridOverlay::materialize) path that is
//!   bit-identical to clone-then-mutate.
//! * [`paths`] — the Section-IV path sampler: random components are traced
//!   to a primary input and a primary output through at least two
//!   flip-flops, yielding the I/O paths the selection algorithms consume.
//! * [`bench_format`] / [`verilog`] — ISCAS '89 `.bench` and structural
//!   Verilog readers and writers.
//!
//! # Example
//!
//! ```
//! use sttlock_netlist::{GateKind, NetlistBuilder};
//!
//! # fn main() -> Result<(), sttlock_netlist::NetlistError> {
//! let mut b = NetlistBuilder::new("toy");
//! b.input("a");
//! b.input("b");
//! b.gate("g1", GateKind::Nand, &["a", "b"]);
//! b.dff("q", "g1");
//! b.gate("g2", GateKind::Xor, &["q", "a"]);
//! b.output("g2");
//! let netlist = b.finish()?;
//! assert_eq!(netlist.gate_count(), 2); // flip-flops are not gates
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod id;
mod netlist;
mod node;
mod set;
mod truth;

pub mod bench_format;
pub mod graph;
pub mod overlay;
pub mod paths;
pub mod verilog;
pub mod view;

pub use error::NetlistError;
pub use id::NodeId;
pub use netlist::{Netlist, NetlistBuilder, NetlistStats};
pub use node::{GateKind, Node};
pub use overlay::HybridOverlay;
pub use set::NodeSet;
pub use truth::{meaningful_gates, TruthTable, MAX_LUT_INPUTS};
pub use view::CircuitView;
