use std::collections::HashMap;
use std::fmt;
use std::ops;

use crate::error::NetlistError;
use crate::id::NodeId;
use crate::node::{GateKind, Node};
use crate::truth::{TruthTable, MAX_LUT_INPUTS};

/// A validated gate-level netlist.
///
/// Nodes live in an arena indexed by [`NodeId`]; every node drives exactly
/// one net, named after the node. The structure is guaranteed acyclic in
/// its combinational core (every feedback loop passes through a
/// [`Node::Dff`]), all fan-in references resolve, and all gate arities are
/// legal.
///
/// Construct one with [`NetlistBuilder`] or the parsers in
/// [`bench_format`](crate::bench_format) and [`verilog`](crate::verilog).
///
/// # Example
///
/// ```
/// use sttlock_netlist::{GateKind, NetlistBuilder};
///
/// # fn main() -> Result<(), sttlock_netlist::NetlistError> {
/// let mut b = NetlistBuilder::new("counter_bit");
/// b.input("en");
/// b.gate("next", GateKind::Xor, &["en", "state"]);
/// b.dff("state", "next"); // feedback is fine: the loop crosses a DFF
/// b.output("state");
/// let n = b.finish()?;
/// assert_eq!(n.dff_count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Netlist {
    name: String,
    nodes: Vec<Node>,
    names: Vec<String>,
    name_index: HashMap<String, NodeId>,
    inputs: Vec<NodeId>,
    outputs: Vec<NodeId>,
}

impl Netlist {
    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total number of nodes (inputs, constants, gates, flip-flops, LUTs).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the netlist has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node stored at `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this netlist.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The net/node name of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this netlist.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.names[id.index()]
    }

    /// Looks a node up by name.
    pub fn find(&self, name: &str) -> Option<NodeId> {
        self.name_index.get(name).copied()
    }

    /// Iterates over `(id, node)` pairs in arena order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId::from_index(i), n))
    }

    /// All node ids in arena order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId::from_index)
    }

    /// Primary inputs, in declaration order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Primary outputs (ids of the driving nodes), in declaration order.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// Number of combinational cells — gates plus LUTs, excluding
    /// flip-flops, matching the "size" column of Table I in the paper.
    pub fn gate_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_combinational()).count()
    }

    /// Number of D flip-flops.
    pub fn dff_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_dff()).count()
    }

    /// Number of reconfigurable LUTs ("missing gates").
    pub fn lut_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_lut()).count()
    }

    /// The first redacted (unprogrammed) LUT in arena order, if any.
    ///
    /// The two-valued engines reject netlists with missing functions;
    /// they share this scan instead of each rolling their own.
    pub fn first_unprogrammed_lut(&self) -> Option<NodeId> {
        self.iter()
            .find(|(_, node)| matches!(node, Node::Lut { config: None, .. }))
            .map(|(id, _)| id)
    }

    /// Overwrites the node stored at `id`. Only for
    /// [`HybridOverlay`](crate::overlay::HybridOverlay) materialization,
    /// which guarantees the replacement preserves fan-in wiring and
    /// therefore acyclicity.
    pub(crate) fn set_node(&mut self, id: NodeId, node: Node) {
        self.nodes[id.index()] = node;
    }

    /// Summary statistics.
    pub fn stats(&self) -> NetlistStats {
        let mut s = NetlistStats {
            name: self.name.clone(),
            inputs: self.inputs.len(),
            outputs: self.outputs.len(),
            ..NetlistStats::default()
        };
        for node in &self.nodes {
            match node {
                Node::Input => {}
                Node::Const(_) => s.constants += 1,
                Node::Dff { .. } => s.dffs += 1,
                Node::Lut { fanin, .. } => {
                    s.luts += 1;
                    s.max_fanin = s.max_fanin.max(fanin.len());
                }
                Node::Gate { fanin, .. } => {
                    s.gates += 1;
                    s.max_fanin = s.max_fanin.max(fanin.len());
                }
            }
        }
        s
    }

    /// Replaces the standard cell at `id` with an equivalent programmed
    /// STT-LUT, preserving the fan-in wiring. Returns the truth table it
    /// was programmed with.
    ///
    /// This is the elementary step of all three selection algorithms.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::LutTooWide`] if the gate fan-in exceeds the
    /// LUT capacity.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not refer to a [`Node::Gate`].
    pub fn replace_gate_with_lut(&mut self, id: NodeId) -> Result<TruthTable, NetlistError> {
        let (kind, fanin) = match &self.nodes[id.index()] {
            Node::Gate { kind, fanin } => (*kind, fanin.clone()),
            other => panic!("replace_gate_with_lut: node {id} is {other:?}, not a gate"),
        };
        if fanin.len() > MAX_LUT_INPUTS {
            return Err(NetlistError::LutTooWide {
                name: self.node_name(id).to_owned(),
                fanin: fanin.len(),
            });
        }
        let config = TruthTable::from_gate(kind, fanin.len());
        self.nodes[id.index()] = Node::Lut {
            fanin,
            config: Some(config),
        };
        Ok(config)
    }

    /// Reverts a LUT back into a standard cell of the given kind,
    /// preserving the fan-in wiring — the inverse of
    /// [`replace_gate_with_lut`](Netlist::replace_gate_with_lut). Used by
    /// the parametric-aware selection's retry loop to undo tentative
    /// replacements that violated timing.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a LUT or the kind's arity does not fit the
    /// existing fan-in.
    pub fn restore_lut_to_gate(&mut self, id: NodeId, kind: GateKind) {
        let fanin = match &self.nodes[id.index()] {
            Node::Lut { fanin, .. } => fanin.clone(),
            other => panic!("restore_lut_to_gate: node {id} is {other:?}, not a LUT"),
        };
        assert!(
            kind.arity_ok(fanin.len()),
            "{kind} cannot take the LUT's fan-in {}",
            fanin.len()
        );
        self.nodes[id.index()] = Node::Gate { kind, fanin };
    }

    /// The programmed configuration of the LUT at `id`, if any.
    ///
    /// Returns `None` both for non-LUT nodes and for redacted LUTs.
    pub fn lut_config(&self, id: NodeId) -> Option<TruthTable> {
        match self.node(id) {
            Node::Lut { config, .. } => *config,
            _ => None,
        }
    }

    /// Programs (or reprograms) the LUT at `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a LUT or if the table fan-in does not match
    /// the LUT fan-in.
    pub fn set_lut_config(&mut self, id: NodeId, table: TruthTable) {
        match &mut self.nodes[id.index()] {
            Node::Lut { fanin, config } => {
                assert_eq!(
                    table.inputs(),
                    fanin.len(),
                    "truth table fan-in must match LUT fan-in"
                );
                *config = Some(table);
            }
            other => panic!("set_lut_config: node {id} is {other:?}, not a LUT"),
        }
    }

    /// Produces the *foundry view* of a hybrid netlist: every LUT
    /// configuration is stripped, and the bitstream (the secret the design
    /// house retains) is returned alongside.
    ///
    /// The redacted netlist is what the paper's attackers operate on.
    pub fn redact(&self) -> (Netlist, Vec<(NodeId, TruthTable)>) {
        let mut stripped = self.clone();
        let mut bitstream = Vec::new();
        for i in 0..stripped.nodes.len() {
            if let Node::Lut { config, .. } = &mut stripped.nodes[i] {
                if let Some(t) = config.take() {
                    bitstream.push((NodeId::from_index(i), t));
                }
            }
        }
        (stripped, bitstream)
    }

    /// Programs a redacted netlist from a bitstream, undoing
    /// [`redact`](Netlist::redact).
    ///
    /// # Panics
    ///
    /// Panics if an id is not a LUT or a table width mismatches.
    pub fn program(&mut self, bitstream: &[(NodeId, TruthTable)]) {
        for &(id, table) in bitstream {
            self.set_lut_config(id, table);
        }
    }

    /// Rewrites the LUT at `id` to the given fan-in and configuration.
    ///
    /// Used by the complex-function merging countermeasure (Section IV-A.3)
    /// where a LUT absorbs neighbouring logic or gains decoy inputs. The
    /// caller must keep the netlist acyclic; this is re-checked here.
    ///
    /// # Errors
    ///
    /// Returns an error if the new fan-in is too wide, a fan-in id is out
    /// of range, or the rewrite would create a combinational cycle.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a LUT.
    pub fn rewire_lut(
        &mut self,
        id: NodeId,
        fanin: Vec<NodeId>,
        config: Option<TruthTable>,
    ) -> Result<(), NetlistError> {
        if fanin.len() > MAX_LUT_INPUTS {
            return Err(NetlistError::LutTooWide {
                name: self.node_name(id).to_owned(),
                fanin: fanin.len(),
            });
        }
        for &f in &fanin {
            if f.index() >= self.nodes.len() {
                return Err(NetlistError::UnresolvedName {
                    name: f.to_string(),
                    referenced_by: self.node_name(id).to_owned(),
                });
            }
        }
        if let Some(t) = config {
            assert_eq!(t.inputs(), fanin.len(), "config width must match fan-in");
        }
        let old = std::mem::replace(&mut self.nodes[id.index()], Node::Lut { fanin, config });
        assert!(old.is_lut(), "rewire_lut: node {id} was {old:?}, not a LUT");
        if let Err(e) = self.check_acyclic() {
            self.nodes[id.index()] = old;
            return Err(e);
        }
        Ok(())
    }

    /// Verifies that the combinational core is acyclic.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] naming a node on a
    /// cycle if one exists.
    pub fn check_acyclic(&self) -> Result<(), NetlistError> {
        // Kahn's algorithm over combinational nodes only; inputs, constants
        // and flip-flop outputs are sources. The in-degree of a
        // combinational node is its number of combinational fan-ins.
        let n = self.nodes.len();
        let mut indeg = vec![0u32; n];
        for (i, node) in self.nodes.iter().enumerate() {
            if node.is_combinational() {
                indeg[i] = node
                    .fanin()
                    .iter()
                    .filter(|f| self.nodes[f.index()].is_combinational())
                    .count() as u32;
            }
        }
        let mut fanout: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, node) in self.nodes.iter().enumerate() {
            if node.is_combinational() {
                for &f in node.fanin() {
                    if self.nodes[f.index()].is_combinational() {
                        fanout[f.index()].push(i as u32);
                    }
                }
            }
        }
        let mut queue: Vec<u32> = (0..n as u32)
            .filter(|&i| self.nodes[i as usize].is_combinational() && indeg[i as usize] == 0)
            .collect();
        let mut seen = 0usize;
        let total = self.nodes.iter().filter(|x| x.is_combinational()).count();
        while let Some(i) = queue.pop() {
            seen += 1;
            for &o in &fanout[i as usize] {
                indeg[o as usize] -= 1;
                if indeg[o as usize] == 0 {
                    queue.push(o);
                }
            }
        }
        if seen != total {
            let on = self
                .nodes
                .iter()
                .enumerate()
                .find(|(i, nd)| nd.is_combinational() && indeg[*i] > 0)
                .map(|(i, _)| self.names[i].clone())
                .unwrap_or_default();
            return Err(NetlistError::CombinationalCycle { on });
        }
        Ok(())
    }
}

impl ops::Index<NodeId> for Netlist {
    type Output = Node;
    fn index(&self, id: NodeId) -> &Node {
        self.node(id)
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.stats();
        write!(
            f,
            "{}: {} PI, {} PO, {} gates, {} DFF, {} LUT",
            self.name, s.inputs, s.outputs, s.gates, s.dffs, s.luts
        )
    }
}

/// Summary statistics of a [`Netlist`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetlistStats {
    /// Design name.
    pub name: String,
    /// Primary input count.
    pub inputs: usize,
    /// Primary output count.
    pub outputs: usize,
    /// Standard-cell count (combinational gates, excluding LUTs and DFFs).
    pub gates: usize,
    /// Flip-flop count.
    pub dffs: usize,
    /// Reconfigurable LUT count.
    pub luts: usize,
    /// Constant driver count.
    pub constants: usize,
    /// Largest combinational fan-in.
    pub max_fanin: usize,
}

impl NetlistStats {
    /// Gates plus LUTs — the "size" column of the paper's Table I.
    pub fn size(&self) -> usize {
        self.gates + self.luts
    }
}

#[derive(Debug, Clone)]
enum Decl {
    Input,
    Const(bool),
    Gate(GateKind, Vec<String>),
    Dff(String),
    Lut(Vec<String>, Option<TruthTable>),
}

/// Name-resolving builder for [`Netlist`].
///
/// Declarations may reference signals defined later (forward references)
/// and flip-flops may close feedback loops; everything is resolved and
/// validated in [`finish`](NetlistBuilder::finish).
#[derive(Debug, Clone)]
pub struct NetlistBuilder {
    name: String,
    decls: Vec<(String, Decl)>,
    outputs: Vec<String>,
    seen: HashMap<String, usize>,
}

impl NetlistBuilder {
    /// Creates a builder for a design called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        NetlistBuilder {
            name: name.into(),
            decls: Vec::new(),
            outputs: Vec::new(),
            seen: HashMap::new(),
        }
    }

    fn declare(&mut self, name: &str, decl: Decl) -> &mut Self {
        self.seen.insert(name.to_owned(), self.decls.len());
        self.decls.push((name.to_owned(), decl));
        self
    }

    /// Declares a primary input named `name`.
    pub fn input(&mut self, name: &str) -> &mut Self {
        self.declare(name, Decl::Input)
    }

    /// Declares a constant driver named `name`.
    pub fn constant(&mut self, name: &str, value: bool) -> &mut Self {
        self.declare(name, Decl::Const(value))
    }

    /// Declares a gate `name = kind(fanin...)`.
    pub fn gate(&mut self, name: &str, kind: GateKind, fanin: &[&str]) -> &mut Self {
        self.declare(
            name,
            Decl::Gate(kind, fanin.iter().map(|s| (*s).to_owned()).collect()),
        )
    }

    /// Declares a D flip-flop `name = DFF(d)`.
    pub fn dff(&mut self, name: &str, d: &str) -> &mut Self {
        self.declare(name, Decl::Dff(d.to_owned()))
    }

    /// Declares a reconfigurable LUT with an optional programmed table.
    pub fn lut(&mut self, name: &str, fanin: &[&str], config: Option<TruthTable>) -> &mut Self {
        self.declare(
            name,
            Decl::Lut(fanin.iter().map(|s| (*s).to_owned()).collect(), config),
        )
    }

    /// Marks the signal `name` as a primary output.
    pub fn output(&mut self, name: &str) -> &mut Self {
        self.outputs.push(name.to_owned());
        self
    }

    /// Whether a signal called `name` has been declared.
    pub fn contains(&self, name: &str) -> bool {
        self.seen.contains_key(name)
    }

    /// Number of declarations so far.
    pub fn len(&self) -> usize {
        self.decls.len()
    }

    /// Whether no signal has been declared yet.
    pub fn is_empty(&self) -> bool {
        self.decls.is_empty()
    }

    /// Resolves names, validates arities and acyclicity, and produces the
    /// final [`Netlist`].
    ///
    /// # Errors
    ///
    /// Returns the first of: duplicate definitions, unresolved references,
    /// illegal arities, over-wide LUTs, unknown outputs, or a combinational
    /// cycle.
    pub fn finish(&self) -> Result<Netlist, NetlistError> {
        let mut name_index: HashMap<String, NodeId> = HashMap::with_capacity(self.decls.len());
        for (i, (name, _)) in self.decls.iter().enumerate() {
            if name_index
                .insert(name.clone(), NodeId::from_index(i))
                .is_some()
            {
                return Err(NetlistError::DuplicateName { name: name.clone() });
            }
        }
        let resolve = |referenced_by: &str, name: &str| -> Result<NodeId, NetlistError> {
            name_index
                .get(name)
                .copied()
                .ok_or_else(|| NetlistError::UnresolvedName {
                    name: name.to_owned(),
                    referenced_by: referenced_by.to_owned(),
                })
        };

        let mut nodes = Vec::with_capacity(self.decls.len());
        let mut names = Vec::with_capacity(self.decls.len());
        let mut inputs = Vec::new();
        for (i, (name, decl)) in self.decls.iter().enumerate() {
            let node = match decl {
                Decl::Input => {
                    inputs.push(NodeId::from_index(i));
                    Node::Input
                }
                Decl::Const(v) => Node::Const(*v),
                Decl::Gate(kind, fanin_names) => {
                    if !kind.arity_ok(fanin_names.len()) {
                        return Err(NetlistError::BadArity {
                            name: name.clone(),
                            kind: kind.to_string(),
                            fanin: fanin_names.len(),
                        });
                    }
                    let fanin = fanin_names
                        .iter()
                        .map(|f| resolve(name, f))
                        .collect::<Result<Vec<_>, _>>()?;
                    Node::Gate { kind: *kind, fanin }
                }
                Decl::Dff(d) => Node::Dff {
                    d: resolve(name, d)?,
                },
                Decl::Lut(fanin_names, config) => {
                    if fanin_names.len() > MAX_LUT_INPUTS {
                        return Err(NetlistError::LutTooWide {
                            name: name.clone(),
                            fanin: fanin_names.len(),
                        });
                    }
                    if let Some(t) = config {
                        if t.inputs() != fanin_names.len() {
                            return Err(NetlistError::ConfigWidthMismatch {
                                name: name.clone(),
                                config_inputs: t.inputs(),
                                fanin: fanin_names.len(),
                            });
                        }
                    }
                    let fanin = fanin_names
                        .iter()
                        .map(|f| resolve(name, f))
                        .collect::<Result<Vec<_>, _>>()?;
                    Node::Lut {
                        fanin,
                        config: *config,
                    }
                }
            };
            nodes.push(node);
            names.push(name.clone());
        }

        let mut outputs = Vec::with_capacity(self.outputs.len());
        for out in &self.outputs {
            let id = name_index
                .get(out)
                .copied()
                .ok_or_else(|| NetlistError::UnknownOutput { name: out.clone() })?;
            outputs.push(id);
        }

        let netlist = Netlist {
            name: self.name.clone(),
            nodes,
            names,
            name_index,
            inputs,
            outputs,
        };
        netlist.check_acyclic()?;
        Ok(netlist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Netlist {
        let mut b = NetlistBuilder::new("toy");
        b.input("a");
        b.input("b");
        b.gate("g1", GateKind::Nand, &["a", "b"]);
        b.dff("q", "g1");
        b.gate("g2", GateKind::Xor, &["q", "a"]);
        b.output("g2");
        b.finish().expect("toy netlist is valid")
    }

    #[test]
    fn builds_and_counts() {
        let n = toy();
        assert_eq!(n.len(), 5);
        assert_eq!(n.gate_count(), 2);
        assert_eq!(n.dff_count(), 1);
        assert_eq!(n.lut_count(), 0);
        assert_eq!(n.inputs().len(), 2);
        assert_eq!(n.outputs().len(), 1);
        assert_eq!(n.node_name(n.outputs()[0]), "g2");
        assert_eq!(n.stats().size(), 2);
    }

    #[test]
    fn find_by_name() {
        let n = toy();
        let g1 = n.find("g1").unwrap();
        assert_eq!(n.node(g1).gate_kind(), Some(GateKind::Nand));
        assert!(n.find("nope").is_none());
    }

    #[test]
    fn forward_references_resolve() {
        let mut b = NetlistBuilder::new("fwd");
        b.input("a");
        b.gate("g1", GateKind::Not, &["g2"]); // g2 defined later
        b.gate("g2", GateKind::Buf, &["a"]);
        b.output("g1");
        let n = b.finish().unwrap();
        assert_eq!(n.gate_count(), 2);
    }

    #[test]
    fn dff_feedback_is_legal() {
        let mut b = NetlistBuilder::new("fb");
        b.input("en");
        b.gate("next", GateKind::Xor, &["en", "state"]);
        b.dff("state", "next");
        b.output("state");
        assert!(b.finish().is_ok());
    }

    #[test]
    fn combinational_cycle_is_rejected() {
        let mut b = NetlistBuilder::new("cyc");
        b.input("a");
        b.gate("g1", GateKind::And, &["a", "g2"]);
        b.gate("g2", GateKind::Or, &["g1", "a"]);
        b.output("g2");
        assert!(matches!(
            b.finish(),
            Err(NetlistError::CombinationalCycle { .. })
        ));
    }

    #[test]
    fn duplicate_name_is_rejected() {
        let mut b = NetlistBuilder::new("dup");
        b.input("a");
        b.input("a");
        assert_eq!(
            b.finish(),
            Err(NetlistError::DuplicateName { name: "a".into() })
        );
    }

    #[test]
    fn unresolved_reference_is_rejected() {
        let mut b = NetlistBuilder::new("bad");
        b.input("a");
        b.gate("g", GateKind::And, &["a", "ghost"]);
        b.output("g");
        assert!(matches!(
            b.finish(),
            Err(NetlistError::UnresolvedName { ref name, .. }) if name == "ghost"
        ));
    }

    #[test]
    fn bad_arity_is_rejected() {
        let mut b = NetlistBuilder::new("bad");
        b.input("a");
        b.gate("g", GateKind::Not, &["a", "a"]);
        b.output("g");
        assert!(matches!(b.finish(), Err(NetlistError::BadArity { .. })));
    }

    #[test]
    fn unknown_output_is_rejected() {
        let mut b = NetlistBuilder::new("bad");
        b.input("a");
        b.output("ghost");
        assert_eq!(
            b.finish(),
            Err(NetlistError::UnknownOutput {
                name: "ghost".into()
            })
        );
    }

    #[test]
    fn mismatched_lut_config_width_is_rejected() {
        let mut b = NetlistBuilder::new("bad");
        b.input("a");
        b.input("b");
        b.lut("g", &["a", "b"], Some(TruthTable::new(3, 0x96)));
        b.output("g");
        assert_eq!(
            b.finish(),
            Err(NetlistError::ConfigWidthMismatch {
                name: "g".into(),
                config_inputs: 3,
                fanin: 2,
            })
        );
    }

    #[test]
    fn replace_gate_with_lut_keeps_function() {
        let mut n = toy();
        let g1 = n.find("g1").unwrap();
        let t = n.replace_gate_with_lut(g1).unwrap();
        assert_eq!(t, TruthTable::from_gate(GateKind::Nand, 2));
        assert_eq!(n.lut_count(), 1);
        assert_eq!(n.gate_count(), 2); // LUT still counts as combinational
        assert_eq!(n.lut_config(g1), Some(t));
    }

    #[test]
    fn redact_and_program_round_trip() {
        let mut n = toy();
        let g1 = n.find("g1").unwrap();
        n.replace_gate_with_lut(g1).unwrap();
        let (mut stripped, bitstream) = n.redact();
        assert_eq!(stripped.lut_config(g1), None);
        assert_eq!(bitstream.len(), 1);
        stripped.program(&bitstream);
        assert_eq!(stripped, n);
    }

    #[test]
    fn rewire_lut_rejects_cycle() {
        let mut n = toy();
        let g1 = n.find("g1").unwrap();
        let g2 = n.find("g2").unwrap();
        n.replace_gate_with_lut(g1).unwrap();
        // g1 -> q (DFF) -> g2: wiring g1's LUT to read g2 closes a loop,
        // but the loop crosses the DFF, so it is sequential and legal.
        let a = n.find("a").unwrap();
        assert!(n.rewire_lut(g1, vec![a, g2], None).is_ok());
        // A genuine combinational self-loop is rejected:
        let mut n2 = toy();
        let g2b = n2.find("g2").unwrap();
        n2.replace_gate_with_lut(g2b).unwrap();
        let q = n2.find("q").unwrap();
        let err = n2.rewire_lut(g2b, vec![q, g2b], None);
        assert!(matches!(err, Err(NetlistError::CombinationalCycle { .. })));
        // failed rewire must leave the netlist unchanged and valid
        assert!(n2.check_acyclic().is_ok());
    }

    #[test]
    fn display_summarizes() {
        let n = toy();
        let s = n.to_string();
        assert!(s.contains("toy"));
        assert!(s.contains("2 gates"));
    }
}
