use std::error::Error;
use std::fmt;

/// Errors produced while building, validating or parsing netlists.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A signal name was defined twice.
    DuplicateName {
        /// The offending name.
        name: String,
    },
    /// A referenced signal was never defined.
    UnresolvedName {
        /// The missing name.
        name: String,
        /// The node whose fan-in references it.
        referenced_by: String,
    },
    /// A gate was declared with an illegal number of inputs.
    BadArity {
        /// Node name.
        name: String,
        /// Gate keyword.
        kind: String,
        /// Declared fan-in.
        fanin: usize,
    },
    /// The combinational core contains a cycle (a loop not broken by a
    /// flip-flop).
    CombinationalCycle {
        /// Name of a node on the cycle.
        on: String,
    },
    /// A primary output references an undefined signal.
    UnknownOutput {
        /// The output name.
        name: String,
    },
    /// A parse error in `.bench` or Verilog input.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// A LUT fan-in exceeded the supported maximum.
    LutTooWide {
        /// Node name.
        name: String,
        /// Declared fan-in.
        fanin: usize,
    },
    /// A LUT was declared with a truth table whose width disagrees with
    /// its fan-in list.
    ConfigWidthMismatch {
        /// Node name.
        name: String,
        /// Inputs the supplied truth table expects.
        config_inputs: usize,
        /// Declared fan-in.
        fanin: usize,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DuplicateName { name } => {
                write!(f, "signal `{name}` is defined more than once")
            }
            NetlistError::UnresolvedName {
                name,
                referenced_by,
            } => {
                write!(
                    f,
                    "signal `{name}` referenced by `{referenced_by}` is never defined"
                )
            }
            NetlistError::BadArity { name, kind, fanin } => {
                write!(f, "gate `{name}` of kind {kind} has illegal fan-in {fanin}")
            }
            NetlistError::CombinationalCycle { on } => {
                write!(
                    f,
                    "combinational cycle through `{on}` (no flip-flop on the loop)"
                )
            }
            NetlistError::UnknownOutput { name } => {
                write!(f, "primary output `{name}` references an undefined signal")
            }
            NetlistError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            NetlistError::LutTooWide { name, fanin } => {
                write!(
                    f,
                    "LUT `{name}` has fan-in {fanin}, above the supported maximum of 6"
                )
            }
            NetlistError::ConfigWidthMismatch {
                name,
                config_inputs,
                fanin,
            } => {
                write!(
                    f,
                    "LUT `{name}` has a {config_inputs}-input truth table but {fanin} fan-in wires"
                )
            }
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_specific() {
        let e = NetlistError::DuplicateName { name: "g1".into() };
        assert_eq!(e.to_string(), "signal `g1` is defined more than once");
        let e = NetlistError::Parse {
            line: 3,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<NetlistError>();
    }
}
