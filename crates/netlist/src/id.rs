use std::fmt;

/// Index of a node (primary input, gate, flip-flop, LUT or constant) inside
/// a [`Netlist`](crate::Netlist) arena.
///
/// A `NodeId` is only meaningful for the netlist that issued it. Every node
/// drives exactly one net, so a `NodeId` doubles as the identifier of the
/// net driven by that node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Returns the raw arena index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from a raw arena index.
    ///
    /// Prefer ids handed out by [`Netlist`](crate::Netlist) methods; this is
    /// exposed for serialization round-trips and dense side tables.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u32::MAX`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("netlist arena index overflows u32"))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        let id = NodeId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.to_string(), "n42");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId::from_index(1) < NodeId::from_index(2));
    }
}
