//! ISCAS '89 `.bench` format reader and writer.
//!
//! The `.bench` dialect accepted here is the one used by the ISCAS '85/'89
//! benchmark suites and most logic-locking research artifacts:
//!
//! ```text
//! # comment
//! INPUT(G0)
//! OUTPUT(G17)
//! G10 = NAND(G0, G1)
//! G11 = DFF(G10)
//! G17 = NOT(G11)
//! ```
//!
//! In addition, this writer/reader pair supports reconfigurable LUTs so
//! hybrid netlists round-trip:
//!
//! ```text
//! G10 = LUT 0x8 (G0, G1)   # programmed LUT (truth table in hex)
//! G12 = LUT ? (G2, G3)     # redacted LUT (foundry view)
//! ```

use std::fmt::Write as _;

use crate::error::NetlistError;
use crate::netlist::{Netlist, NetlistBuilder};
use crate::node::{GateKind, Node};
use crate::truth::TruthTable;

/// Parses a `.bench` netlist from text.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] for malformed lines and the usual
/// builder errors (duplicate/unresolved names, bad arity, cycles) for
/// structurally invalid netlists.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), sttlock_netlist::NetlistError> {
/// let src = "
/// INPUT(a)
/// INPUT(b)
/// OUTPUT(y)
/// t = NAND(a, b)
/// y = DFF(t)
/// ";
/// let n = sttlock_netlist::bench_format::parse(src, "toy")?;
/// assert_eq!(n.gate_count(), 1);
/// assert_eq!(n.dff_count(), 1);
/// # Ok(())
/// # }
/// ```
pub fn parse(text: &str, name: &str) -> Result<Netlist, NetlistError> {
    let mut builder = NetlistBuilder::new(name);
    for (lineno, raw) in text.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        parse_line(&mut builder, line, lineno + 1)?;
    }
    builder.finish()
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    }
}

fn parse_line(builder: &mut NetlistBuilder, line: &str, lineno: usize) -> Result<(), NetlistError> {
    let err = |message: String| NetlistError::Parse {
        line: lineno,
        message,
    };

    if let Some(rest) = strip_keyword(line, "INPUT") {
        let name = parse_parenthesized(rest).ok_or_else(|| err("expected INPUT(name)".into()))?;
        builder.input(name);
        return Ok(());
    }
    if let Some(rest) = strip_keyword(line, "OUTPUT") {
        let name = parse_parenthesized(rest).ok_or_else(|| err("expected OUTPUT(name)".into()))?;
        builder.output(name);
        return Ok(());
    }

    // `name = KEYWORD(args)` or `name = LUT mask (args)`
    let (lhs, rhs) = line
        .split_once('=')
        .ok_or_else(|| err(format!("unrecognized statement `{line}`")))?;
    let lhs = lhs.trim();
    let rhs = rhs.trim();
    if lhs.is_empty() {
        return Err(err("missing signal name before `=`".into()));
    }

    if let Some(rest) = rhs.strip_prefix("LUT") {
        let rest = rest.trim_start();
        let open = rest
            .find('(')
            .ok_or_else(|| err("expected LUT <mask|?> (args)".into()))?;
        let mask_str = rest[..open].trim();
        let args = parse_parenthesized(&rest[open..])
            .ok_or_else(|| err("malformed LUT argument list".into()))?;
        let fanin: Vec<&str> = split_args(args);
        if fanin.is_empty() {
            return Err(err("LUT needs at least one input".into()));
        }
        let config = if mask_str == "?" {
            None
        } else {
            let hex = mask_str
                .strip_prefix("0x")
                .or_else(|| mask_str.strip_prefix("0X"))
                .ok_or_else(|| err(format!("LUT mask `{mask_str}` must be 0x-hex or `?`")))?;
            let bits = u64::from_str_radix(hex, 16)
                .map_err(|e| err(format!("bad LUT mask `{mask_str}`: {e}")))?;
            if fanin.len() > crate::truth::MAX_LUT_INPUTS {
                return Err(NetlistError::LutTooWide {
                    name: lhs.to_owned(),
                    fanin: fanin.len(),
                });
            }
            Some(TruthTable::new(fanin.len(), bits))
        };
        builder.lut(lhs, &fanin, config);
        return Ok(());
    }

    let open = rhs.find('(').ok_or_else(|| {
        err(format!(
            "expected gate call on right-hand side, got `{rhs}`"
        ))
    })?;
    let keyword = rhs[..open].trim();
    let args =
        parse_parenthesized(&rhs[open..]).ok_or_else(|| err("malformed argument list".into()))?;
    let fanin: Vec<&str> = split_args(args);

    if keyword.eq_ignore_ascii_case("CONST0") || keyword.eq_ignore_ascii_case("CONST1") {
        if !fanin.is_empty() {
            return Err(err("constant drivers take no inputs".into()));
        }
        builder.constant(lhs, keyword.ends_with('1'));
        return Ok(());
    }
    if keyword.eq_ignore_ascii_case("DFF") {
        if fanin.len() != 1 {
            return Err(err(format!(
                "DFF takes exactly one input, got {}",
                fanin.len()
            )));
        }
        builder.dff(lhs, fanin[0]);
        return Ok(());
    }
    let kind = GateKind::from_bench_keyword(keyword)
        .ok_or_else(|| err(format!("unknown gate keyword `{keyword}`")))?;
    builder.gate(lhs, kind, &fanin);
    Ok(())
}

fn strip_keyword<'a>(line: &'a str, kw: &str) -> Option<&'a str> {
    let trimmed = line.trim_start();
    // `get` rather than indexing: a multibyte character straddling the
    // keyword length must read as "not this keyword", not a panic.
    let head = trimmed.get(..kw.len())?;
    if head.eq_ignore_ascii_case(kw) {
        let rest = &trimmed[kw.len()..];
        if rest.trim_start().starts_with('(') {
            return Some(rest);
        }
    }
    None
}

fn parse_parenthesized(s: &str) -> Option<&str> {
    let s = s.trim();
    let inner = s.strip_prefix('(')?.strip_suffix(')')?;
    Some(inner.trim())
}

fn split_args(args: &str) -> Vec<&str> {
    args.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect()
}

/// Serializes a netlist to `.bench` text.
///
/// Programmed LUTs are written as `LUT 0x<mask>`; redacted LUTs as
/// `LUT ?`. The output round-trips through [`parse`].
pub fn write(netlist: &Netlist) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {}", netlist.name());
    let stats = netlist.stats();
    let _ = writeln!(
        out,
        "# {} inputs, {} outputs, {} gates, {} DFFs, {} LUTs",
        stats.inputs, stats.outputs, stats.gates, stats.dffs, stats.luts
    );
    for &id in netlist.inputs() {
        let _ = writeln!(out, "INPUT({})", netlist.node_name(id));
    }
    for &id in netlist.outputs() {
        let _ = writeln!(out, "OUTPUT({})", netlist.node_name(id));
    }
    let _ = writeln!(out);
    for (id, node) in netlist.iter() {
        let name = netlist.node_name(id);
        match node {
            Node::Input => {}
            Node::Const(v) => {
                let kw = if *v { "CONST1" } else { "CONST0" };
                let _ = writeln!(out, "{name} = {kw}()");
            }
            Node::Gate { kind, fanin } => {
                let args = join_names(netlist, fanin);
                let _ = writeln!(out, "{name} = {}({args})", kind.bench_keyword());
            }
            Node::Dff { d } => {
                let _ = writeln!(out, "{name} = DFF({})", netlist.node_name(*d));
            }
            Node::Lut { fanin, config } => {
                let args = join_names(netlist, fanin);
                match config {
                    Some(t) => {
                        let _ = writeln!(out, "{name} = LUT 0x{:x} ({args})", t.bits());
                    }
                    None => {
                        let _ = writeln!(out, "{name} = LUT ? ({args})");
                    }
                }
            }
        }
    }
    out
}

fn join_names(netlist: &Netlist, ids: &[crate::NodeId]) -> String {
    ids.iter()
        .map(|&f| netlist.node_name(f))
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::GateKind;

    const SAMPLE: &str = "
# tiny sequential sample
INPUT(a)
INPUT(b)
OUTPUT(y)

t1 = NAND(a, b)   # a gate
q  = DFF(t1)
t2 = XOR(q, a)
y  = NOT(t2)
";

    #[test]
    fn parses_sample() {
        let n = parse(SAMPLE, "sample").unwrap();
        assert_eq!(n.inputs().len(), 2);
        assert_eq!(n.outputs().len(), 1);
        assert_eq!(n.gate_count(), 3);
        assert_eq!(n.dff_count(), 1);
        assert_eq!(
            n.node(n.find("t1").unwrap()).gate_kind(),
            Some(GateKind::Nand)
        );
    }

    #[test]
    fn round_trips() {
        let n = parse(SAMPLE, "sample").unwrap();
        let text = write(&n);
        let n2 = parse(&text, "sample").unwrap();
        assert_eq!(n.gate_count(), n2.gate_count());
        assert_eq!(n.dff_count(), n2.dff_count());
        assert_eq!(n.inputs().len(), n2.inputs().len());
        assert_eq!(n.outputs().len(), n2.outputs().len());
        // names survive
        assert!(n2.find("t1").is_some());
    }

    #[test]
    fn round_trips_luts_programmed_and_redacted() {
        let mut n = parse(SAMPLE, "sample").unwrap();
        let t1 = n.find("t1").unwrap();
        n.replace_gate_with_lut(t1).unwrap();
        let text = write(&n);
        let n2 = parse(&text, "sample").unwrap();
        assert_eq!(n2.lut_count(), 1);
        assert_eq!(
            n2.lut_config(n2.find("t1").unwrap()),
            Some(TruthTable::from_gate(GateKind::Nand, 2))
        );

        let (stripped, _) = n.redact();
        let text = write(&stripped);
        assert!(text.contains("LUT ?"));
        let n3 = parse(&text, "sample").unwrap();
        assert_eq!(n3.lut_config(n3.find("t1").unwrap()), None);
    }

    #[test]
    fn case_insensitive_keywords() {
        let src = "input(x)\noutput(y)\ny = nand(x, x)\n";
        let n = parse(src, "ci").unwrap();
        assert_eq!(n.gate_count(), 1);
    }

    #[test]
    fn reports_line_numbers_on_errors() {
        let src = "INPUT(a)\nbogus line here\n";
        match parse(src, "bad") {
            Err(NetlistError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_unknown_gate() {
        let src = "INPUT(a)\ny = FROB(a)\nOUTPUT(y)\n";
        assert!(matches!(
            parse(src, "bad"),
            Err(NetlistError::Parse { line: 2, .. })
        ));
    }

    #[test]
    fn rejects_dff_with_two_inputs() {
        let src = "INPUT(a)\nINPUT(b)\nq = DFF(a, b)\nOUTPUT(q)\n";
        assert!(matches!(parse(src, "bad"), Err(NetlistError::Parse { .. })));
    }

    #[test]
    fn rejects_bad_lut_mask() {
        let src = "INPUT(a)\ny = LUT 12 (a, a)\nOUTPUT(y)\n";
        assert!(matches!(parse(src, "bad"), Err(NetlistError::Parse { .. })));
    }

    #[test]
    fn whitespace_and_blank_lines_ignored() {
        let src = "\n\n  INPUT(a)  \n\nOUTPUT(b)\n  b = BUFF( a )\n";
        let n = parse(src, "ws").unwrap();
        assert_eq!(n.gate_count(), 1);
    }

    #[test]
    fn multibyte_garbage_errors_instead_of_panicking() {
        // `É` is two bytes; it straddles the 5-byte "INPUT" prefix that
        // strip_keyword slices off, which used to panic on a char
        // boundary. Every variant must come back as a typed error.
        for src in [
            "INPUÉ(x)\n",
            "OUTPÉT(y)\n",
            "ÉNPUT(x)\n",
            "INPUT(a)\ny = NÉND(a, a)\nOUTPUT(y)\n",
        ] {
            assert!(matches!(
                parse(src, "mangled"),
                Err(NetlistError::Parse { .. })
            ));
        }
    }
}
