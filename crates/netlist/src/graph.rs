//! Graph algorithms over the combinational core of a [`Netlist`].
//!
//! The sequential netlist is treated as a DAG whose sources are primary
//! inputs, constants and flip-flop outputs, and whose sinks are primary
//! outputs and flip-flop D pins. All selection algorithms and analyses
//! (timing, power, simulation) are built on the orders and maps computed
//! here.

use std::collections::VecDeque;

use crate::id::NodeId;
use crate::netlist::Netlist;

/// A topological order of the combinational nodes (gates and LUTs) such
/// that every node appears after all of its combinational fan-ins.
///
/// Sources (inputs, constants, flip-flops) are not included; they may be
/// treated as level 0.
///
/// # Panics
///
/// Panics if the netlist contains a combinational cycle, which a validated
/// [`Netlist`] cannot.
pub fn topo_order(netlist: &Netlist) -> Vec<NodeId> {
    topo_order_with(netlist, &fanout_map(netlist))
}

/// [`topo_order`] against a precomputed fan-out map — the shared
/// implementation behind the free function and
/// [`CircuitView`](crate::view::CircuitView), guaranteeing both produce
/// the same order.
pub(crate) fn topo_order_with(netlist: &Netlist, fanout: &[Vec<NodeId>]) -> Vec<NodeId> {
    let n = netlist.len();
    let mut indeg = vec![0u32; n];
    for (id, node) in netlist.iter() {
        if node.is_combinational() {
            indeg[id.index()] = node
                .fanin()
                .iter()
                .filter(|f| netlist.node(**f).is_combinational())
                .count() as u32;
        }
    }
    let mut queue: VecDeque<NodeId> = netlist
        .iter()
        .filter(|(id, node)| node.is_combinational() && indeg[id.index()] == 0)
        .map(|(id, _)| id)
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(id) = queue.pop_front() {
        order.push(id);
        for &o in &fanout[id.index()] {
            if !netlist.node(o).is_combinational() {
                continue;
            }
            indeg[o.index()] -= 1;
            if indeg[o.index()] == 0 {
                queue.push_back(o);
            }
        }
    }
    let comb = netlist.iter().filter(|(_, x)| x.is_combinational()).count();
    assert_eq!(order.len(), comb, "netlist contains a combinational cycle");
    order
}

/// The fan-out map: `fanout[i]` lists every node that reads node `i`
/// (combinational readers *and* flip-flop D pins).
pub fn fanout_map(netlist: &Netlist) -> Vec<Vec<NodeId>> {
    let mut fanout: Vec<Vec<NodeId>> = vec![Vec::new(); netlist.len()];
    for (id, node) in netlist.iter() {
        for &f in node.fanin() {
            fanout[f.index()].push(id);
        }
    }
    fanout
}

/// Logic level of every node: sources are level 0; a combinational node is
/// one more than its deepest combinational fan-in.
pub fn levels(netlist: &Netlist) -> Vec<u32> {
    levels_with(netlist, &topo_order(netlist))
}

/// [`levels`] against a precomputed topological order.
pub(crate) fn levels_with(netlist: &Netlist, topo: &[NodeId]) -> Vec<u32> {
    let mut level = vec![0u32; netlist.len()];
    for &id in topo {
        let node = netlist.node(id);
        let deepest = node
            .fanin()
            .iter()
            .map(|f| {
                if netlist.node(*f).is_combinational() {
                    level[f.index()]
                } else {
                    0
                }
            })
            .max()
            .unwrap_or(0);
        level[id.index()] = deepest + 1;
    }
    level
}

/// The maximum logic level of the netlist (0 for purely sequential wiring).
pub fn comb_depth(netlist: &Netlist) -> u32 {
    levels(netlist).into_iter().max().unwrap_or(0)
}

/// The transitive fan-in cone of `roots`, crossing flip-flops if
/// `cross_dffs` is set. The result includes the roots themselves.
pub fn fanin_cone(netlist: &Netlist, roots: &[NodeId], cross_dffs: bool) -> Vec<NodeId> {
    let mut seen = vec![false; netlist.len()];
    let mut stack: Vec<NodeId> = roots.to_vec();
    let mut cone = Vec::new();
    while let Some(id) = stack.pop() {
        if seen[id.index()] {
            continue;
        }
        seen[id.index()] = true;
        cone.push(id);
        let node = netlist.node(id);
        if node.is_dff() && !cross_dffs {
            continue;
        }
        stack.extend_from_slice(node.fanin());
    }
    cone.sort_unstable();
    cone
}

/// The transitive fan-out cone of `roots`, crossing flip-flops if
/// `cross_dffs` is set. The result includes the roots themselves.
pub fn fanout_cone(netlist: &Netlist, roots: &[NodeId], cross_dffs: bool) -> Vec<NodeId> {
    fanout_cone_with(netlist, &fanout_map(netlist), roots, cross_dffs)
}

/// [`fanout_cone`] against a precomputed fan-out map.
pub(crate) fn fanout_cone_with(
    netlist: &Netlist,
    fanout: &[Vec<NodeId>],
    roots: &[NodeId],
    cross_dffs: bool,
) -> Vec<NodeId> {
    let mut seen = vec![false; netlist.len()];
    let mut stack: Vec<NodeId> = roots.to_vec();
    let mut cone = Vec::new();
    while let Some(id) = stack.pop() {
        if seen[id.index()] {
            continue;
        }
        seen[id.index()] = true;
        cone.push(id);
        for &o in &fanout[id.index()] {
            if netlist.node(o).is_dff() && !cross_dffs {
                // Record the flip-flop as a cone boundary but do not cross.
                if !seen[o.index()] {
                    seen[o.index()] = true;
                    cone.push(o);
                }
                continue;
            }
            stack.push(o);
        }
    }
    cone.sort_unstable();
    cone
}

/// Whether `target` is combinationally reachable from `from` (never
/// crossing flip-flops). Used to check the "dependent" property: a missing
/// gate drives another missing gate through pure logic.
pub fn comb_reachable(netlist: &Netlist, from: NodeId, target: NodeId) -> bool {
    comb_reachable_with(netlist, &fanout_map(netlist), from, target)
}

/// [`comb_reachable`] against a precomputed fan-out map.
pub(crate) fn comb_reachable_with(
    netlist: &Netlist,
    fanout: &[Vec<NodeId>],
    from: NodeId,
    target: NodeId,
) -> bool {
    if from == target {
        return true;
    }
    let mut seen = vec![false; netlist.len()];
    let mut stack = vec![from];
    while let Some(id) = stack.pop() {
        if seen[id.index()] {
            continue;
        }
        seen[id.index()] = true;
        for &o in &fanout[id.index()] {
            if o == target {
                return true;
            }
            if netlist.node(o).is_combinational() {
                stack.push(o);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::NetlistBuilder;
    use crate::node::GateKind;

    /// a ─┬─ g1(NOT) ── g2(AND) ── q(DFF) ── g3(OR) ── out
    ///    └────────────────┘                    │
    /// b ───────────────────────────────────────┘
    fn chain() -> Netlist {
        let mut b = NetlistBuilder::new("chain");
        b.input("a");
        b.input("b");
        b.gate("g1", GateKind::Not, &["a"]);
        b.gate("g2", GateKind::And, &["g1", "a"]);
        b.dff("q", "g2");
        b.gate("g3", GateKind::Or, &["q", "b"]);
        b.output("g3");
        b.finish().unwrap()
    }

    #[test]
    fn topo_respects_dependencies() {
        let n = chain();
        let order = topo_order(&n);
        assert_eq!(order.len(), 3);
        let pos = |name: &str| order.iter().position(|&x| x == n.find(name).unwrap());
        assert!(pos("g1").unwrap() < pos("g2").unwrap());
        // g3 is in another segment; only relative comb deps matter.
        assert!(pos("g3").is_some());
    }

    #[test]
    fn levels_count_comb_depth() {
        let n = chain();
        let lv = levels(&n);
        assert_eq!(lv[n.find("g1").unwrap().index()], 1);
        assert_eq!(lv[n.find("g2").unwrap().index()], 2);
        assert_eq!(lv[n.find("g3").unwrap().index()], 1); // restarts after DFF
        assert_eq!(comb_depth(&n), 2);
    }

    #[test]
    fn fanout_map_lists_readers() {
        let n = chain();
        let fo = fanout_map(&n);
        let a = n.find("a").unwrap();
        let readers = &fo[a.index()];
        assert!(readers.contains(&n.find("g1").unwrap()));
        assert!(readers.contains(&n.find("g2").unwrap()));
        assert_eq!(readers.len(), 2);
    }

    #[test]
    fn fanin_cone_stops_at_dff() {
        let n = chain();
        let g3 = n.find("g3").unwrap();
        let cone = fanin_cone(&n, &[g3], false);
        assert!(cone.contains(&n.find("q").unwrap()));
        assert!(!cone.contains(&n.find("g2").unwrap()));
        let cone_cross = fanin_cone(&n, &[g3], true);
        assert!(cone_cross.contains(&n.find("g2").unwrap()));
        assert!(cone_cross.contains(&n.find("a").unwrap()));
    }

    #[test]
    fn fanout_cone_boundary() {
        let n = chain();
        let g2 = n.find("g2").unwrap();
        let cone = fanout_cone(&n, &[g2], false);
        assert!(cone.contains(&n.find("q").unwrap())); // boundary recorded
        assert!(!cone.contains(&n.find("g3").unwrap())); // not crossed
        let cone_cross = fanout_cone(&n, &[g2], true);
        assert!(cone_cross.contains(&n.find("g3").unwrap()));
    }

    #[test]
    fn comb_reachability() {
        let n = chain();
        let g1 = n.find("g1").unwrap();
        let g2 = n.find("g2").unwrap();
        let g3 = n.find("g3").unwrap();
        assert!(comb_reachable(&n, g1, g2));
        assert!(!comb_reachable(&n, g1, g3)); // blocked by the DFF
        assert!(comb_reachable(&n, g3, g3)); // trivially
    }
}
