use std::fmt;

use crate::node::GateKind;

/// A truth table over up to six inputs, stored as a 64-bit mask.
///
/// Bit `i` of [`bits`](TruthTable::bits) holds the output for the input
/// assignment whose binary encoding is `i` (input 0 is the least
/// significant bit of the assignment index).
///
/// Truth tables are the configuration payload of STT-based LUTs and the
/// basis of the *similarity* measure of Section IV-A.1 of the paper: the
/// similarity of two gates is the number of input assignments on which they
/// agree, which determines how many test patterns an attacker needs to tell
/// them apart.
///
/// # Example
///
/// ```
/// use sttlock_netlist::{GateKind, TruthTable};
///
/// let and2 = TruthTable::from_gate(GateKind::And, 2);
/// let nor2 = TruthTable::from_gate(GateKind::Nor, 2);
/// // AND and NOR agree on assignments 01 and 10 — similarity 2, as in the paper.
/// assert_eq!(and2.similarity(&nor2), 2);
/// let nand2 = TruthTable::from_gate(GateKind::Nand, 2);
/// assert_eq!(and2.similarity(&nand2), 0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct TruthTable {
    inputs: u8,
    bits: u64,
}

/// Maximum LUT fan-in supported by [`TruthTable`].
pub const MAX_LUT_INPUTS: usize = 6;

impl TruthTable {
    /// Creates a truth table over `inputs` variables from a raw bit mask.
    ///
    /// Bits above `2^inputs` are cleared.
    ///
    /// # Panics
    ///
    /// Panics if `inputs > 6`.
    pub fn new(inputs: usize, bits: u64) -> Self {
        assert!(
            inputs <= MAX_LUT_INPUTS,
            "truth table supports at most {MAX_LUT_INPUTS} inputs, got {inputs}"
        );
        let mask = Self::full_mask(inputs);
        TruthTable {
            inputs: inputs as u8,
            bits: bits & mask,
        }
    }

    fn full_mask(inputs: usize) -> u64 {
        if inputs == MAX_LUT_INPUTS {
            u64::MAX
        } else {
            (1u64 << (1usize << inputs)) - 1
        }
    }

    /// The truth table realized by `kind` at the given fan-in.
    ///
    /// # Panics
    ///
    /// Panics if the fan-in is invalid for the gate kind (see
    /// [`GateKind::arity_ok`]) or exceeds [`MAX_LUT_INPUTS`](crate::MAX_LUT_INPUTS).
    pub fn from_gate(kind: GateKind, inputs: usize) -> Self {
        assert!(kind.arity_ok(inputs), "{kind} cannot have fan-in {inputs}");
        assert!(inputs <= MAX_LUT_INPUTS);
        let rows = 1usize << inputs;
        let mut bits = 0u64;
        for row in 0..rows {
            let ones = (row as u64).count_ones() as usize;
            let all = ones == inputs;
            let any = ones > 0;
            let odd = ones % 2 == 1;
            let out = match kind {
                GateKind::Buf => row & 1 == 1,
                GateKind::Not => row & 1 == 0,
                GateKind::And => all,
                GateKind::Nand => !all,
                GateKind::Or => any,
                GateKind::Nor => !any,
                GateKind::Xor => odd,
                GateKind::Xnor => !odd,
            };
            if out {
                bits |= 1 << row;
            }
        }
        TruthTable::new(inputs, bits)
    }

    /// Number of inputs of the table.
    #[inline]
    pub fn inputs(&self) -> usize {
        self.inputs as usize
    }

    /// Number of rows (`2^inputs`).
    #[inline]
    pub fn rows(&self) -> usize {
        1usize << self.inputs
    }

    /// Raw output bit mask.
    #[inline]
    pub fn bits(&self) -> u64 {
        self.bits
    }

    /// Evaluates the table for the assignment encoded in `assignment`
    /// (input `i` is bit `i`).
    ///
    /// # Panics
    ///
    /// Panics if `assignment >= 2^inputs`.
    #[inline]
    pub fn eval(&self, assignment: usize) -> bool {
        assert!(assignment < self.rows(), "assignment out of range");
        (self.bits >> assignment) & 1 == 1
    }

    /// Evaluates the table 64 assignments at a time: lane `l` of the result
    /// is the output for the assignment formed by taking lane `l` of each
    /// input word.
    ///
    /// This is the inner loop of the bit-parallel simulator.
    pub fn eval_parallel(&self, input_words: &[u64]) -> u64 {
        debug_assert_eq!(input_words.len(), self.inputs());
        let mut out = 0u64;
        // For each row of the table with output 1, AND together the lanes on
        // which the inputs match that row and OR into the result.
        for row in 0..self.rows() {
            if (self.bits >> row) & 1 == 0 {
                continue;
            }
            let mut lanes = u64::MAX;
            for (i, &w) in input_words.iter().enumerate() {
                let want_one = (row >> i) & 1 == 1;
                lanes &= if want_one { w } else { !w };
                if lanes == 0 {
                    break;
                }
            }
            out |= lanes;
        }
        out
    }

    /// Number of input assignments on which `self` and `other` produce the
    /// same output — the paper's *similarity* measure.
    ///
    /// # Panics
    ///
    /// Panics if the tables have different fan-in.
    pub fn similarity(&self, other: &TruthTable) -> usize {
        assert_eq!(
            self.inputs, other.inputs,
            "similarity requires equal fan-in"
        );
        let agree = !(self.bits ^ other.bits) & Self::full_mask(self.inputs());
        agree.count_ones() as usize
    }

    /// Whether the output actually depends on input `i`.
    pub fn depends_on(&self, i: usize) -> bool {
        assert!(i < self.inputs());
        let stride = 1usize << i;
        for row in 0..self.rows() {
            if row & stride == 0 {
                let a = (self.bits >> row) & 1;
                let b = (self.bits >> (row + stride)) & 1;
                if a != b {
                    return true;
                }
            }
        }
        false
    }

    /// Whether the table is constant 0 or constant 1.
    pub fn is_constant(&self) -> bool {
        let mask = Self::full_mask(self.inputs());
        self.bits == 0 || self.bits == mask
    }

    /// Returns the gate kind this table realizes at its native fan-in, if
    /// it is one of the eight standard kinds.
    pub fn as_gate(&self) -> Option<GateKind> {
        GateKind::ALL.into_iter().find(|&kind| {
            kind.arity_ok(self.inputs()) && TruthTable::from_gate(kind, self.inputs()) == *self
        })
    }

    /// The complement table.
    #[must_use]
    pub fn complement(&self) -> TruthTable {
        TruthTable::new(self.inputs(), !self.bits)
    }
}

impl fmt::Debug for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TruthTable({}:{:0width$b})",
            self.inputs,
            self.bits,
            width = self.rows()
        )
    }
}

impl fmt::Display for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'h{:x}", self.rows(), self.bits)
    }
}

/// The "meaningful" gate family of a given fan-in, per Section IV-A.3.
///
/// For 2 inputs these are the six gates AND, NAND, OR, NOR, XOR, XNOR. For
/// 3 and 4 inputs the same six kinds apply (XOR/XNOR being the parity
/// functions), and the paper notes more than 12 candidates exist once
/// smaller gates with tied inputs are included; the base family returned
/// here is what the analytic α and P constants are computed from.
///
/// # Panics
///
/// Panics if `inputs < 2` or `inputs > 6`.
pub fn meaningful_gates(inputs: usize) -> Vec<TruthTable> {
    assert!((2..=MAX_LUT_INPUTS).contains(&inputs));
    [
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
    ]
    .into_iter()
    .map(|k| TruthTable::from_gate(k, inputs))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_gates_two_input() {
        assert_eq!(TruthTable::from_gate(GateKind::And, 2).bits(), 0b1000);
        assert_eq!(TruthTable::from_gate(GateKind::Or, 2).bits(), 0b1110);
        assert_eq!(TruthTable::from_gate(GateKind::Nand, 2).bits(), 0b0111);
        assert_eq!(TruthTable::from_gate(GateKind::Nor, 2).bits(), 0b0001);
        assert_eq!(TruthTable::from_gate(GateKind::Xor, 2).bits(), 0b0110);
        assert_eq!(TruthTable::from_gate(GateKind::Xnor, 2).bits(), 0b1001);
    }

    #[test]
    fn inverter_and_buffer() {
        assert_eq!(TruthTable::from_gate(GateKind::Not, 1).bits(), 0b01);
        assert_eq!(TruthTable::from_gate(GateKind::Buf, 1).bits(), 0b10);
    }

    #[test]
    fn paper_similarity_examples() {
        // Section IV-A.1: sim(AND2, NOR2) = 2, sim(AND2, NAND2) = 0.
        let and2 = TruthTable::from_gate(GateKind::And, 2);
        let nor2 = TruthTable::from_gate(GateKind::Nor, 2);
        let nand2 = TruthTable::from_gate(GateKind::Nand, 2);
        assert_eq!(and2.similarity(&nor2), 2);
        assert_eq!(and2.similarity(&nand2), 0);
    }

    #[test]
    fn average_similarity_two_input_family() {
        // The paper states the average pairwise similarity of 2-input gates
        // is 1.45, hence α = 2.45. With the six-gate family the unordered
        // pairwise average is 4/3; including ordered pairs and the paper's
        // rounding conventions the constant is stored in `attack::alpha`.
        // Here we only pin down that similarities are in [0, 4].
        let fam = meaningful_gates(2);
        for a in &fam {
            for b in &fam {
                assert!(a.similarity(b) <= 4);
            }
        }
    }

    #[test]
    fn eval_matches_bits() {
        let t = TruthTable::from_gate(GateKind::Xor, 3);
        for row in 0..8 {
            let ones = (row as u32).count_ones();
            assert_eq!(t.eval(row), ones % 2 == 1, "row {row}");
        }
    }

    #[test]
    fn eval_parallel_matches_scalar() {
        let t = TruthTable::from_gate(GateKind::Nand, 3);
        // Lane l carries assignment l (l < 8), remaining lanes repeat.
        let mut words = [0u64; 3];
        for lane in 0..64usize {
            let asg = lane % 8;
            for (i, w) in words.iter_mut().enumerate() {
                if (asg >> i) & 1 == 1 {
                    *w |= 1 << lane;
                }
            }
        }
        let out = t.eval_parallel(&words);
        for lane in 0..64usize {
            let expect = t.eval(lane % 8);
            assert_eq!((out >> lane) & 1 == 1, expect, "lane {lane}");
        }
    }

    #[test]
    fn depends_on_all_inputs_for_standard_gates() {
        for kind in [GateKind::And, GateKind::Or, GateKind::Xor] {
            let t = TruthTable::from_gate(kind, 4);
            for i in 0..4 {
                assert!(t.depends_on(i), "{kind} input {i}");
            }
        }
    }

    #[test]
    fn constant_detection() {
        assert!(TruthTable::new(2, 0).is_constant());
        assert!(TruthTable::new(2, 0b1111).is_constant());
        assert!(!TruthTable::from_gate(GateKind::And, 2).is_constant());
    }

    #[test]
    fn as_gate_round_trip() {
        for kind in GateKind::ALL {
            let fanin = if kind.is_unary() { 1 } else { 3 };
            let t = TruthTable::from_gate(kind, fanin);
            assert_eq!(t.as_gate(), Some(kind));
        }
    }

    #[test]
    fn complement_involution() {
        let t = TruthTable::from_gate(GateKind::Or, 4);
        assert_eq!(t.complement().complement(), t);
        assert_eq!(t.complement().as_gate(), Some(GateKind::Nor));
    }

    #[test]
    fn six_input_mask_does_not_overflow() {
        let t = TruthTable::new(6, u64::MAX);
        assert_eq!(t.bits(), u64::MAX);
        assert!(t.is_constant());
    }

    #[test]
    #[should_panic(expected = "at most 6 inputs")]
    fn rejects_seven_inputs() {
        let _ = TruthTable::new(7, 0);
    }
}
