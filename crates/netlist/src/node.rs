use std::fmt;

use crate::id::NodeId;
use crate::truth::TruthTable;

/// The combinational gate kinds of the standard-cell family.
///
/// These are the cell functions that appear in ISCAS '89 netlists and in
/// the paper's Figure 1 technology comparison. Multi-input kinds accept any
/// fan-in ≥ 2; [`Buf`](GateKind::Buf) and [`Not`](GateKind::Not) are unary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GateKind {
    /// Non-inverting buffer (`BUFF` in `.bench`).
    Buf,
    /// Inverter.
    Not,
    /// N-input AND.
    And,
    /// N-input NAND.
    Nand,
    /// N-input OR.
    Or,
    /// N-input NOR.
    Nor,
    /// N-input parity (XOR).
    Xor,
    /// N-input inverted parity (XNOR).
    Xnor,
}

impl GateKind {
    /// All gate kinds, unary first.
    pub const ALL: [GateKind; 8] = [
        GateKind::Buf,
        GateKind::Not,
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
    ];

    /// Whether this kind takes exactly one input.
    #[inline]
    pub fn is_unary(self) -> bool {
        matches!(self, GateKind::Buf | GateKind::Not)
    }

    /// Whether this kind produces an inverted function (useful for pairing
    /// cells with their complements in the technology library).
    #[inline]
    pub fn is_inverting(self) -> bool {
        matches!(
            self,
            GateKind::Not | GateKind::Nand | GateKind::Nor | GateKind::Xnor
        )
    }

    /// Whether `fanin` is a legal arity for this kind.
    #[inline]
    pub fn arity_ok(self, fanin: usize) -> bool {
        if self.is_unary() {
            fanin == 1
        } else {
            fanin >= 2
        }
    }

    /// The `.bench` keyword for this kind.
    pub fn bench_keyword(self) -> &'static str {
        match self {
            GateKind::Buf => "BUFF",
            GateKind::Not => "NOT",
            GateKind::And => "AND",
            GateKind::Nand => "NAND",
            GateKind::Or => "OR",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
        }
    }

    /// Parses a `.bench` keyword (case-insensitive). Returns `None` for
    /// unknown keywords (including `DFF`, which is not a gate).
    pub fn from_bench_keyword(word: &str) -> Option<GateKind> {
        match word.to_ascii_uppercase().as_str() {
            "BUFF" | "BUF" => Some(GateKind::Buf),
            "NOT" | "INV" => Some(GateKind::Not),
            "AND" => Some(GateKind::And),
            "NAND" => Some(GateKind::Nand),
            "OR" => Some(GateKind::Or),
            "NOR" => Some(GateKind::Nor),
            "XOR" => Some(GateKind::Xor),
            "XNOR" => Some(GateKind::Xnor),
            _ => None,
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.bench_keyword())
    }
}

/// A node of the netlist arena. Every node drives exactly one net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// A primary input of the design.
    Input,
    /// A constant driver (tie-high / tie-low cell).
    Const(bool),
    /// A combinational standard cell.
    Gate {
        /// Cell function.
        kind: GateKind,
        /// Driving nodes of the cell inputs, in pin order.
        fanin: Vec<NodeId>,
    },
    /// A D flip-flop. Its output is the registered value of `d`.
    Dff {
        /// Driver of the D pin.
        d: NodeId,
    },
    /// A reconfigurable STT-based LUT — a "missing gate".
    ///
    /// `config` is `Some` in the programmed (design-house) view and `None`
    /// in the redacted view an untrusted foundry sees.
    Lut {
        /// Driving nodes of the LUT inputs, in pin order.
        fanin: Vec<NodeId>,
        /// The programmed truth table, if visible.
        config: Option<TruthTable>,
    },
}

impl Node {
    /// The fan-in nodes, in pin order (empty for inputs and constants).
    pub fn fanin(&self) -> &[NodeId] {
        match self {
            Node::Input | Node::Const(_) => &[],
            Node::Gate { fanin, .. } | Node::Lut { fanin, .. } => fanin,
            Node::Dff { d } => std::slice::from_ref(d),
        }
    }

    /// Whether the node is a combinational element (gate or LUT).
    #[inline]
    pub fn is_combinational(&self) -> bool {
        matches!(self, Node::Gate { .. } | Node::Lut { .. })
    }

    /// Whether the node is a D flip-flop.
    #[inline]
    pub fn is_dff(&self) -> bool {
        matches!(self, Node::Dff { .. })
    }

    /// Whether the node is a reconfigurable LUT.
    #[inline]
    pub fn is_lut(&self) -> bool {
        matches!(self, Node::Lut { .. })
    }

    /// Whether the node is a primary input.
    #[inline]
    pub fn is_input(&self) -> bool {
        matches!(self, Node::Input)
    }

    /// The gate kind, if the node is a standard cell.
    pub fn gate_kind(&self) -> Option<GateKind> {
        match self {
            Node::Gate { kind, .. } => Some(*kind),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_rules() {
        assert!(GateKind::Not.arity_ok(1));
        assert!(!GateKind::Not.arity_ok(2));
        assert!(GateKind::Nand.arity_ok(2));
        assert!(GateKind::Nand.arity_ok(4));
        assert!(!GateKind::Nand.arity_ok(1));
    }

    #[test]
    fn bench_keyword_round_trip() {
        for kind in GateKind::ALL {
            assert_eq!(
                GateKind::from_bench_keyword(kind.bench_keyword()),
                Some(kind)
            );
        }
        assert_eq!(GateKind::from_bench_keyword("DFF"), None);
        assert_eq!(GateKind::from_bench_keyword("nand"), Some(GateKind::Nand));
    }

    #[test]
    fn fanin_access() {
        let a = NodeId::from_index(0);
        let b = NodeId::from_index(1);
        let gate = Node::Gate {
            kind: GateKind::And,
            fanin: vec![a, b],
        };
        assert_eq!(gate.fanin(), &[a, b]);
        let ff = Node::Dff { d: a };
        assert_eq!(ff.fanin(), &[a]);
        assert!(Node::Input.fanin().is_empty());
        assert!(Node::Const(true).fanin().is_empty());
    }

    #[test]
    fn classification() {
        assert!(Node::Input.is_input());
        assert!(Node::Dff {
            d: NodeId::from_index(0)
        }
        .is_dff());
        let lut = Node::Lut {
            fanin: vec![],
            config: None,
        };
        assert!(lut.is_lut());
        assert!(lut.is_combinational());
    }

    #[test]
    fn inverting_kinds() {
        assert!(GateKind::Nand.is_inverting());
        assert!(!GateKind::And.is_inverting());
        assert!(GateKind::Not.is_inverting());
    }
}
