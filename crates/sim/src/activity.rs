//! Dynamic switching-activity estimation.
//!
//! The paper's power numbers are parameterized by the output switching
//! activity α (Figure 1 quotes α = 10 % and 30 %). This module measures α
//! per net by simulating random primary-input streams and counting output
//! toggles, using all 64 lanes of the bit-parallel simulator as
//! independent sample streams.

use rand::Rng;

use sttlock_netlist::{CircuitView, Netlist, NodeId};

use crate::bitpar::Simulator;
use crate::error::SimError;

/// Per-net switching activity measured by simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivityReport {
    /// Toggle probability per cycle, one entry per node (indexed by
    /// [`NodeId::index`]).
    pub alpha: Vec<f64>,
    /// Number of simulated cycles (after the warm-up cycle).
    pub cycles: usize,
}

impl ActivityReport {
    /// Activity of one net.
    pub fn of(&self, id: NodeId) -> f64 {
        self.alpha[id.index()]
    }

    /// Mean activity over the given nodes (0 if empty).
    pub fn mean_over(&self, ids: &[NodeId]) -> f64 {
        if ids.is_empty() {
            return 0.0;
        }
        ids.iter().map(|&id| self.of(id)).sum::<f64>() / ids.len() as f64
    }
}

/// Estimates per-net switching activity over `cycles` cycles of uniform
/// random primary-input patterns.
///
/// Primary inputs therefore show α ≈ 0.5; internal nets show the
/// structural attenuation real logic exhibits.
///
/// # Errors
///
/// Returns [`SimError::UnprogrammedLut`] for redacted netlists — measure
/// activity on the programmed view.
pub fn estimate_activity<R: Rng + ?Sized>(
    netlist: &Netlist,
    cycles: usize,
    rng: &mut R,
) -> Result<ActivityReport, SimError> {
    estimate_activity_with(&CircuitView::new(netlist), cycles, rng)
}

/// [`estimate_activity`] over a shared [`CircuitView`], reusing its
/// memoized evaluation order instead of recomputing it.
pub fn estimate_activity_with<R: Rng + ?Sized>(
    view: &CircuitView<'_>,
    cycles: usize,
    rng: &mut R,
) -> Result<ActivityReport, SimError> {
    assert!(cycles > 0, "need at least one cycle");
    let netlist = view.netlist();
    let mut sim = Simulator::with_view(view)?;
    let n = netlist.len();
    let mut toggles = vec![0u64; n];
    let mut prev: Vec<u64> = vec![0; n];
    let mut inputs = vec![0u64; netlist.inputs().len()];

    // Warm-up cycle establishes the baseline values.
    for w in inputs.iter_mut() {
        *w = rng.gen();
    }
    sim.step(&inputs)?;
    for (i, t) in prev.iter_mut().enumerate() {
        *t = sim.value(NodeId::from_index(i));
    }

    for _ in 0..cycles {
        for w in inputs.iter_mut() {
            *w = rng.gen();
        }
        sim.step(&inputs)?;
        for i in 0..n {
            let cur = sim.value(NodeId::from_index(i));
            toggles[i] += (cur ^ prev[i]).count_ones() as u64;
            prev[i] = cur;
        }
    }

    let samples = (cycles as f64) * 64.0;
    let alpha = toggles.iter().map(|&t| t as f64 / samples).collect();
    Ok(ActivityReport { alpha, cycles })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sttlock_netlist::{GateKind, NetlistBuilder};

    #[test]
    fn random_inputs_toggle_at_half() {
        let mut b = NetlistBuilder::new("m");
        b.input("a");
        b.input("c");
        b.gate("g", GateKind::And, &["a", "c"]);
        b.output("g");
        let n = b.finish().unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let rep = estimate_activity(&n, 200, &mut rng).unwrap();
        let a = rep.of(n.find("a").unwrap());
        assert!((a - 0.5).abs() < 0.05, "input activity {a}");
        // AND of two random inputs toggles less: P(out) = 0.25, so the
        // toggle rate is 2·0.25·0.75 = 0.375.
        let g = rep.of(n.find("g").unwrap());
        assert!((g - 0.375).abs() < 0.05, "AND activity {g}");
    }

    #[test]
    fn constant_nets_never_toggle() {
        let mut b = NetlistBuilder::new("m");
        b.input("a");
        b.constant("one", true);
        b.gate("g", GateKind::Or, &["a", "one"]); // always 1
        b.output("g");
        let n = b.finish().unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let rep = estimate_activity(&n, 100, &mut rng).unwrap();
        assert_eq!(rep.of(n.find("g").unwrap()), 0.0);
        assert_eq!(rep.of(n.find("one").unwrap()), 0.0);
    }

    #[test]
    fn toggle_flop_has_full_activity() {
        let mut b = NetlistBuilder::new("m");
        b.input("en");
        b.gate("next", GateKind::Xnor, &["en", "state"]);
        b.dff("state", "next");
        b.output("state");
        let n = b.finish().unwrap();
        // en held... random, but XNOR(en, state) toggles state whenever
        // en=0; with random en the state toggle rate is 0.5-ish. Just
        // check it is substantial and bounded.
        let mut rng = StdRng::seed_from_u64(3);
        let rep = estimate_activity(&n, 300, &mut rng).unwrap();
        let s = rep.of(n.find("state").unwrap());
        assert!(s > 0.3 && s < 0.7, "state activity {s}");
    }

    #[test]
    fn mean_over_averages() {
        let rep = ActivityReport {
            alpha: vec![0.2, 0.4],
            cycles: 1,
        };
        let ids = [NodeId::from_index(0), NodeId::from_index(1)];
        assert!((rep.mean_over(&ids) - 0.3).abs() < 1e-12);
        assert_eq!(rep.mean_over(&[]), 0.0);
    }
}
