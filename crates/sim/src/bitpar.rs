use std::sync::Arc;

use sttlock_netlist::{CircuitView, Netlist, Node, NodeId};

use crate::error::SimError;

/// A 64-lane bit-parallel two-valued cycle simulator.
///
/// Bit `l` of every word belongs to lane `l`: the simulator advances 64
/// independent pattern streams per [`step`](Simulator::step). Flip-flops
/// power up at 0 (all lanes), matching the usual reset assumption of the
/// ISCAS '89 benchmarks.
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    netlist: &'a Netlist,
    order: Arc<Vec<NodeId>>,
    /// Current net values, one word per node.
    values: Vec<u64>,
    /// Registered state for DFF nodes (indexed like `values`, unused
    /// entries stay 0).
    state: Vec<u64>,
}

impl<'a> Simulator<'a> {
    /// Prepares a simulator for `netlist`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnprogrammedLut`] if the netlist contains a
    /// redacted LUT — the two-valued engine needs every function defined.
    pub fn new(netlist: &'a Netlist) -> Result<Self, SimError> {
        Self::with_view(&CircuitView::new(netlist))
    }

    /// Prepares a simulator against a shared [`CircuitView`], reusing
    /// its memoized topological order instead of recomputing one.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnprogrammedLut`] if the netlist contains a
    /// redacted LUT — the two-valued engine needs every function defined.
    pub fn with_view(view: &CircuitView<'a>) -> Result<Self, SimError> {
        let netlist = view.netlist();
        if let Some(id) = netlist.first_unprogrammed_lut() {
            return Err(SimError::UnprogrammedLut {
                name: netlist.node_name(id).to_owned(),
            });
        }
        Ok(Simulator {
            netlist,
            order: view.topo_order_arc(),
            values: vec![0; netlist.len()],
            state: vec![0; netlist.len()],
        })
    }

    /// Prepares a simulator from an explicit topological order — for
    /// callers holding many structure-identical netlist variants (e.g.
    /// the attack's hypothesis candidates) that share one order.
    ///
    /// The order must be a valid topological order of `netlist`'s
    /// combinational nodes, which holds for any netlist produced by
    /// wiring-preserving edits of the netlist the order came from.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnprogrammedLut`] if the netlist contains a
    /// redacted LUT.
    pub fn with_order(netlist: &'a Netlist, order: Arc<Vec<NodeId>>) -> Result<Self, SimError> {
        if let Some(id) = netlist.first_unprogrammed_lut() {
            return Err(SimError::UnprogrammedLut {
                name: netlist.node_name(id).to_owned(),
            });
        }
        Ok(Simulator {
            netlist,
            order,
            values: vec![0; netlist.len()],
            state: vec![0; netlist.len()],
        })
    }

    /// The netlist under simulation.
    pub fn netlist(&self) -> &Netlist {
        self.netlist
    }

    /// Clears all flip-flops and net values to 0.
    pub fn reset(&mut self) {
        self.values.fill(0);
        self.state.fill(0);
    }

    /// Current value word of a net.
    pub fn value(&self, id: NodeId) -> u64 {
        self.values[id.index()]
    }

    /// Evaluates the combinational logic for the given primary-input
    /// words without advancing the clock. Flip-flop outputs present their
    /// registered state.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InputCountMismatch`] if `inputs` does not have
    /// one word per primary input.
    pub fn eval_comb(&mut self, inputs: &[u64]) -> Result<(), SimError> {
        let pis = self.netlist.inputs();
        if inputs.len() != pis.len() {
            return Err(SimError::InputCountMismatch {
                expected: pis.len(),
                got: inputs.len(),
            });
        }
        for (&pi, &word) in pis.iter().zip(inputs) {
            self.values[pi.index()] = word;
        }
        for (id, node) in self.netlist.iter() {
            match node {
                Node::Const(v) => self.values[id.index()] = if *v { u64::MAX } else { 0 },
                Node::Dff { .. } => self.values[id.index()] = self.state[id.index()],
                _ => {}
            }
        }
        let mut scratch: Vec<u64> = Vec::with_capacity(8);
        for &id in self.order.iter() {
            let out = match self.netlist.node(id) {
                Node::Gate { kind, fanin } => {
                    use sttlock_netlist::GateKind::*;
                    let mut it = fanin.iter().map(|f| self.values[f.index()]);
                    match kind {
                        Buf => it.next().unwrap_or(0),
                        Not => !it.next().unwrap_or(0),
                        And => it.fold(u64::MAX, |a, b| a & b),
                        Nand => !it.fold(u64::MAX, |a, b| a & b),
                        Or => it.fold(0, |a, b| a | b),
                        Nor => !it.fold(0, |a, b| a | b),
                        Xor => it.fold(0, |a, b| a ^ b),
                        Xnor => !it.fold(0, |a, b| a ^ b),
                    }
                }
                Node::Lut { fanin, config } => {
                    let table = config.expect("checked at construction");
                    scratch.clear();
                    scratch.extend(fanin.iter().map(|f| self.values[f.index()]));
                    table.eval_parallel(&scratch)
                }
                _ => continue,
            };
            self.values[id.index()] = out;
        }
        Ok(())
    }

    /// Clocks every flip-flop: the D values computed by the last
    /// [`eval_comb`](Simulator::eval_comb) become the new state.
    pub fn clock(&mut self) {
        for (id, node) in self.netlist.iter() {
            if let Node::Dff { d } = node {
                self.state[id.index()] = self.values[d.index()];
            }
        }
    }

    /// One full cycle: evaluate combinational logic for `inputs`, sample
    /// the primary outputs, then clock the flip-flops. Returns one word
    /// per primary output.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InputCountMismatch`] on an input arity mismatch.
    pub fn step(&mut self, inputs: &[u64]) -> Result<Vec<u64>, SimError> {
        self.eval_comb(inputs)?;
        let outs = self
            .netlist
            .outputs()
            .iter()
            .map(|&o| self.values[o.index()])
            .collect();
        self.clock();
        Ok(outs)
    }

    /// Runs `inputs_per_cycle` through [`step`](Simulator::step) from
    /// reset and returns the output words of every cycle.
    ///
    /// # Errors
    ///
    /// Propagates input arity mismatches.
    pub fn run(&mut self, inputs_per_cycle: &[Vec<u64>]) -> Result<Vec<Vec<u64>>, SimError> {
        self.reset();
        inputs_per_cycle.iter().map(|i| self.step(i)).collect()
    }

    /// Flip-flop ids in arena order — the state vector layout used by
    /// [`eval_frame`](Simulator::eval_frame).
    pub fn dff_ids(&self) -> Vec<NodeId> {
        self.netlist
            .iter()
            .filter(|(_, n)| n.is_dff())
            .map(|(id, _)| id)
            .collect()
    }

    /// Single-frame (full-scan) evaluation: flip-flop outputs are forced
    /// to `state` (one word per flip-flop, arena order) and the
    /// combinational logic is evaluated without clocking.
    ///
    /// This is the oracle model of the scan-assumed attacks: primary
    /// inputs *and* state are controllable; primary outputs *and*
    /// next-state (D pins) are observable via
    /// [`observation`](Simulator::observation).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InputCountMismatch`] if `inputs` or `state`
    /// have the wrong length (the error reports the input mismatch).
    pub fn eval_frame(&mut self, inputs: &[u64], state: &[u64]) -> Result<(), SimError> {
        let dffs = self.dff_ids();
        if state.len() != dffs.len() {
            return Err(SimError::InputCountMismatch {
                expected: dffs.len(),
                got: state.len(),
            });
        }
        for (&ff, &w) in dffs.iter().zip(state) {
            self.state[ff.index()] = w;
        }
        self.eval_comb(inputs)
    }

    /// The observation vector of the full-scan model: primary-output
    /// words followed by flip-flop D-pin words (arena order).
    pub fn observation(&self) -> Vec<u64> {
        let mut obs: Vec<u64> = self
            .netlist
            .outputs()
            .iter()
            .map(|&o| self.values[o.index()])
            .collect();
        for (_, node) in self.netlist.iter() {
            if let Node::Dff { d } = node {
                obs.push(self.values[d.index()]);
            }
        }
        obs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sttlock_netlist::{GateKind, NetlistBuilder, TruthTable};

    fn comb() -> Netlist {
        let mut b = NetlistBuilder::new("comb");
        b.input("a");
        b.input("b");
        b.input("c");
        b.gate("g1", GateKind::And, &["a", "b"]);
        b.gate("g2", GateKind::Or, &["g1", "c"]);
        b.gate("g3", GateKind::Xor, &["g2", "a"]);
        b.output("g3");
        b.finish().unwrap()
    }

    #[test]
    fn combinational_truth() {
        let n = comb();
        let mut sim = Simulator::new(&n).unwrap();
        // enumerate all 8 assignments in lanes 0..8
        let mut a = 0u64;
        let mut bw = 0u64;
        let mut c = 0u64;
        for lane in 0..8u64 {
            if lane & 1 != 0 {
                a |= 1 << lane;
            }
            if lane & 2 != 0 {
                bw |= 1 << lane;
            }
            if lane & 4 != 0 {
                c |= 1 << lane;
            }
        }
        let outs = sim.step(&[a, bw, c]).unwrap();
        for lane in 0..8u64 {
            let (av, bv, cv) = (lane & 1 != 0, lane & 2 != 0, lane & 4 != 0);
            let expect = ((av && bv) || cv) ^ av;
            assert_eq!((outs[0] >> lane) & 1 == 1, expect, "lane {lane}");
        }
    }

    #[test]
    fn dff_delays_by_one_cycle() {
        let mut b = NetlistBuilder::new("reg");
        b.input("d");
        b.dff("q", "d");
        b.output("q");
        let n = b.finish().unwrap();
        let mut sim = Simulator::new(&n).unwrap();
        assert_eq!(sim.step(&[u64::MAX]).unwrap()[0], 0); // reset state
        assert_eq!(sim.step(&[0]).unwrap()[0], u64::MAX); // captured 1s
        assert_eq!(sim.step(&[0]).unwrap()[0], 0);
    }

    #[test]
    fn feedback_counter_toggles() {
        // state' = state XOR 1 (en tied high) — toggles every cycle.
        let mut b = NetlistBuilder::new("tog");
        b.input("en");
        b.gate("next", GateKind::Xor, &["en", "state"]);
        b.dff("state", "next");
        b.output("state");
        let n = b.finish().unwrap();
        let mut sim = Simulator::new(&n).unwrap();
        let seq: Vec<u64> = (0..4).map(|_| sim.step(&[u64::MAX]).unwrap()[0]).collect();
        assert_eq!(seq, vec![0, u64::MAX, 0, u64::MAX]);
    }

    #[test]
    fn lut_equals_replaced_gate() {
        let n = comb();
        let mut hybrid = n.clone();
        let g2 = hybrid.find("g2").unwrap();
        hybrid.replace_gate_with_lut(g2).unwrap();

        let mut s1 = Simulator::new(&n).unwrap();
        let mut s2 = Simulator::new(&hybrid).unwrap();
        for pat in [[0, 0, 0], [u64::MAX, 5, 99], [7, 7, 7]] {
            assert_eq!(s1.step(&pat).unwrap(), s2.step(&pat).unwrap());
        }
    }

    #[test]
    fn redacted_lut_is_rejected() {
        let mut n = comb();
        let g2 = n.find("g2").unwrap();
        n.replace_gate_with_lut(g2).unwrap();
        let (stripped, _) = n.redact();
        assert!(matches!(
            Simulator::new(&stripped),
            Err(SimError::UnprogrammedLut { .. })
        ));
    }

    #[test]
    fn input_arity_checked() {
        let n = comb();
        let mut sim = Simulator::new(&n).unwrap();
        assert!(matches!(
            sim.step(&[0, 0]),
            Err(SimError::InputCountMismatch {
                expected: 3,
                got: 2
            })
        ));
    }

    #[test]
    fn reset_clears_state() {
        let mut b = NetlistBuilder::new("reg");
        b.input("d");
        b.dff("q", "d");
        b.output("q");
        let n = b.finish().unwrap();
        let mut sim = Simulator::new(&n).unwrap();
        sim.step(&[u64::MAX]).unwrap();
        sim.reset();
        assert_eq!(sim.step(&[0]).unwrap()[0], 0);
    }

    #[test]
    fn reprogrammed_lut_changes_function() {
        let mut b = NetlistBuilder::new("lut");
        b.input("a");
        b.input("b");
        b.lut(
            "y",
            &["a", "b"],
            Some(TruthTable::from_gate(GateKind::And, 2)),
        );
        b.output("y");
        let n = b.finish().unwrap();
        let mut sim = Simulator::new(&n).unwrap();
        assert_eq!(sim.step(&[u64::MAX, 0]).unwrap()[0], 0);

        let mut n2 = n.clone();
        n2.set_lut_config(
            n2.find("y").unwrap(),
            TruthTable::from_gate(GateKind::Or, 2),
        );
        let mut sim2 = Simulator::new(&n2).unwrap();
        assert_eq!(sim2.step(&[u64::MAX, 0]).unwrap()[0], u64::MAX);
    }
}
