use std::sync::Arc;

use sttlock_netlist::{CircuitView, Netlist, Node, NodeId};

use crate::error::SimError;

/// A 64-lane bit-parallel two-valued cycle simulator.
///
/// Bit `l` of every word belongs to lane `l`: the simulator advances 64
/// independent pattern streams per [`step`](Simulator::step). Flip-flops
/// power up at 0 (all lanes), matching the usual reset assumption of the
/// ISCAS '89 benchmarks.
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    netlist: &'a Netlist,
    order: Arc<Vec<NodeId>>,
    /// Current net values, one word per node.
    values: Vec<u64>,
    /// Registered state for DFF nodes (indexed like `values`, unused
    /// entries stay 0).
    state: Vec<u64>,
    /// Stuck-at overrides, sorted by node id: the node's value word is
    /// pinned to the given word in every evaluation (all 64 lanes
    /// independently, so a lane mask can model per-lane faults).
    forces: Vec<(NodeId, u64)>,
}

impl<'a> Simulator<'a> {
    /// Prepares a simulator for `netlist`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnprogrammedLut`] if the netlist contains a
    /// redacted LUT — the two-valued engine needs every function defined.
    pub fn new(netlist: &'a Netlist) -> Result<Self, SimError> {
        Self::with_view(&CircuitView::new(netlist))
    }

    /// Prepares a simulator against a shared [`CircuitView`], reusing
    /// its memoized topological order instead of recomputing one.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnprogrammedLut`] if the netlist contains a
    /// redacted LUT — the two-valued engine needs every function defined.
    pub fn with_view(view: &CircuitView<'a>) -> Result<Self, SimError> {
        let netlist = view.netlist();
        if let Some(id) = netlist.first_unprogrammed_lut() {
            return Err(SimError::UnprogrammedLut {
                name: netlist.node_name(id).to_owned(),
            });
        }
        Ok(Simulator {
            netlist,
            order: view.topo_order_arc(),
            values: vec![0; netlist.len()],
            state: vec![0; netlist.len()],
            forces: Vec::new(),
        })
    }

    /// Prepares a simulator from an explicit topological order — for
    /// callers holding many structure-identical netlist variants (e.g.
    /// the attack's hypothesis candidates) that share one order.
    ///
    /// The order must be a valid topological order of `netlist`'s
    /// combinational nodes, which holds for any netlist produced by
    /// wiring-preserving edits of the netlist the order came from.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnprogrammedLut`] if the netlist contains a
    /// redacted LUT.
    pub fn with_order(netlist: &'a Netlist, order: Arc<Vec<NodeId>>) -> Result<Self, SimError> {
        if let Some(id) = netlist.first_unprogrammed_lut() {
            return Err(SimError::UnprogrammedLut {
                name: netlist.node_name(id).to_owned(),
            });
        }
        Ok(Simulator {
            netlist,
            order,
            values: vec![0; netlist.len()],
            state: vec![0; netlist.len()],
            forces: Vec::new(),
        })
    }

    /// The netlist under simulation.
    pub fn netlist(&self) -> &Netlist {
        self.netlist
    }

    /// Clears all flip-flops and net values to 0.
    pub fn reset(&mut self) {
        self.values.fill(0);
        self.state.fill(0);
    }

    /// Current value word of a net.
    pub fn value(&self, id: NodeId) -> u64 {
        self.values[id.index()]
    }

    /// Pins the node's value to `word` in every subsequent evaluation —
    /// masked (faulty) evaluation of stuck-at nodes without editing the
    /// netlist. Bit `l` applies to lane `l`, so a partial mask models a
    /// fault present in only some pattern streams. Replaces any earlier
    /// force on the same node.
    pub fn force(&mut self, id: NodeId, word: u64) {
        match self.forces.binary_search_by_key(&id, |&(n, _)| n) {
            Ok(k) => self.forces[k].1 = word,
            Err(k) => self.forces.insert(k, (id, word)),
        }
    }

    /// Removes the force on `id`, if any.
    pub fn unforce(&mut self, id: NodeId) {
        if let Ok(k) = self.forces.binary_search_by_key(&id, |&(n, _)| n) {
            self.forces.remove(k);
        }
    }

    /// Removes every force.
    pub fn clear_forces(&mut self) {
        self.forces.clear();
    }

    /// The stuck-at override for `id`, if one is active.
    fn forced(&self, id: NodeId) -> Option<u64> {
        self.forces
            .binary_search_by_key(&id, |&(n, _)| n)
            .ok()
            .map(|k| self.forces[k].1)
    }

    /// Evaluates the combinational logic for the given primary-input
    /// words without advancing the clock. Flip-flop outputs present their
    /// registered state.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InputCountMismatch`] if `inputs` does not have
    /// one word per primary input.
    pub fn eval_comb(&mut self, inputs: &[u64]) -> Result<(), SimError> {
        let pis = self.netlist.inputs();
        if inputs.len() != pis.len() {
            return Err(SimError::InputCountMismatch {
                expected: pis.len(),
                got: inputs.len(),
            });
        }
        for (&pi, &word) in pis.iter().zip(inputs) {
            self.values[pi.index()] = word;
        }
        for (id, node) in self.netlist.iter() {
            match node {
                Node::Const(v) => self.values[id.index()] = if *v { u64::MAX } else { 0 },
                Node::Dff { .. } => self.values[id.index()] = self.state[id.index()],
                _ => {}
            }
        }
        if !self.forces.is_empty() {
            for &(id, word) in &self.forces {
                self.values[id.index()] = word;
            }
        }
        let mut scratch: Vec<u64> = Vec::with_capacity(8);
        for &id in self.order.iter() {
            let mut out = match self.netlist.node(id) {
                Node::Gate { kind, fanin } => {
                    use sttlock_netlist::GateKind::*;
                    let mut it = fanin.iter().map(|f| self.values[f.index()]);
                    match kind {
                        Buf => it.next().unwrap_or(0),
                        Not => !it.next().unwrap_or(0),
                        And => it.fold(u64::MAX, |a, b| a & b),
                        Nand => !it.fold(u64::MAX, |a, b| a & b),
                        Or => it.fold(0, |a, b| a | b),
                        Nor => !it.fold(0, |a, b| a | b),
                        Xor => it.fold(0, |a, b| a ^ b),
                        Xnor => !it.fold(0, |a, b| a ^ b),
                    }
                }
                Node::Lut { fanin, config } => {
                    let table = config.expect("checked at construction");
                    scratch.clear();
                    scratch.extend(fanin.iter().map(|f| self.values[f.index()]));
                    table.eval_parallel(&scratch)
                }
                _ => continue,
            };
            if !self.forces.is_empty() {
                if let Some(word) = self.forced(id) {
                    out = word;
                }
            }
            self.values[id.index()] = out;
        }
        Ok(())
    }

    /// Clocks every flip-flop: the D values computed by the last
    /// [`eval_comb`](Simulator::eval_comb) become the new state.
    pub fn clock(&mut self) {
        for (id, node) in self.netlist.iter() {
            if let Node::Dff { d } = node {
                self.state[id.index()] = self.values[d.index()];
            }
        }
    }

    /// One full cycle: evaluate combinational logic for `inputs`, sample
    /// the primary outputs, then clock the flip-flops. Returns one word
    /// per primary output.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InputCountMismatch`] on an input arity mismatch.
    pub fn step(&mut self, inputs: &[u64]) -> Result<Vec<u64>, SimError> {
        self.eval_comb(inputs)?;
        let outs = self
            .netlist
            .outputs()
            .iter()
            .map(|&o| self.values[o.index()])
            .collect();
        self.clock();
        Ok(outs)
    }

    /// Runs `inputs_per_cycle` through [`step`](Simulator::step) from
    /// reset and returns the output words of every cycle.
    ///
    /// # Errors
    ///
    /// Propagates input arity mismatches.
    pub fn run(&mut self, inputs_per_cycle: &[Vec<u64>]) -> Result<Vec<Vec<u64>>, SimError> {
        self.reset();
        inputs_per_cycle.iter().map(|i| self.step(i)).collect()
    }

    /// Flip-flop ids in arena order — the state vector layout used by
    /// [`eval_frame`](Simulator::eval_frame).
    pub fn dff_ids(&self) -> Vec<NodeId> {
        self.netlist
            .iter()
            .filter(|(_, n)| n.is_dff())
            .map(|(id, _)| id)
            .collect()
    }

    /// Single-frame (full-scan) evaluation: flip-flop outputs are forced
    /// to `state` (one word per flip-flop, arena order) and the
    /// combinational logic is evaluated without clocking.
    ///
    /// This is the oracle model of the scan-assumed attacks: primary
    /// inputs *and* state are controllable; primary outputs *and*
    /// next-state (D pins) are observable via
    /// [`observation`](Simulator::observation).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InputCountMismatch`] if `inputs` or `state`
    /// have the wrong length (the error reports the input mismatch).
    pub fn eval_frame(&mut self, inputs: &[u64], state: &[u64]) -> Result<(), SimError> {
        let dffs = self.dff_ids();
        if state.len() != dffs.len() {
            return Err(SimError::InputCountMismatch {
                expected: dffs.len(),
                got: state.len(),
            });
        }
        for (&ff, &w) in dffs.iter().zip(state) {
            self.state[ff.index()] = w;
        }
        self.eval_comb(inputs)
    }

    /// The observation vector of the full-scan model: primary-output
    /// words followed by flip-flop D-pin words (arena order).
    pub fn observation(&self) -> Vec<u64> {
        let mut obs: Vec<u64> = self
            .netlist
            .outputs()
            .iter()
            .map(|&o| self.values[o.index()])
            .collect();
        for (_, node) in self.netlist.iter() {
            if let Node::Dff { d } = node {
                obs.push(self.values[d.index()]);
            }
        }
        obs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sttlock_netlist::{GateKind, NetlistBuilder, TruthTable};

    fn comb() -> Netlist {
        let mut b = NetlistBuilder::new("comb");
        b.input("a");
        b.input("b");
        b.input("c");
        b.gate("g1", GateKind::And, &["a", "b"]);
        b.gate("g2", GateKind::Or, &["g1", "c"]);
        b.gate("g3", GateKind::Xor, &["g2", "a"]);
        b.output("g3");
        b.finish().unwrap()
    }

    #[test]
    fn combinational_truth() {
        let n = comb();
        let mut sim = Simulator::new(&n).unwrap();
        // enumerate all 8 assignments in lanes 0..8
        let mut a = 0u64;
        let mut bw = 0u64;
        let mut c = 0u64;
        for lane in 0..8u64 {
            if lane & 1 != 0 {
                a |= 1 << lane;
            }
            if lane & 2 != 0 {
                bw |= 1 << lane;
            }
            if lane & 4 != 0 {
                c |= 1 << lane;
            }
        }
        let outs = sim.step(&[a, bw, c]).unwrap();
        for lane in 0..8u64 {
            let (av, bv, cv) = (lane & 1 != 0, lane & 2 != 0, lane & 4 != 0);
            let expect = ((av && bv) || cv) ^ av;
            assert_eq!((outs[0] >> lane) & 1 == 1, expect, "lane {lane}");
        }
    }

    #[test]
    fn forces_pin_nodes_and_clear_cleanly() {
        let n = comb();
        let g1 = n.find("g1").unwrap();
        let mut sim = Simulator::new(&n).unwrap();
        // a=b=1, c=0: g1=1, g2=1, g3 = 1 ^ 1 = 0.
        let outs = sim.step(&[u64::MAX, u64::MAX, 0]).unwrap();
        assert_eq!(outs[0], 0);
        // Stuck-at-0 on g1: g2 = 0 | 0 = 0, g3 = 0 ^ 1 = 1.
        sim.force(g1, 0);
        let outs = sim.step(&[u64::MAX, u64::MAX, 0]).unwrap();
        assert_eq!(outs[0], u64::MAX);
        assert_eq!(sim.value(g1), 0);
        // A half-lane mask faults only the low 32 lanes.
        sim.force(g1, !0u64 >> 32 << 32);
        let outs = sim.step(&[u64::MAX, u64::MAX, 0]).unwrap();
        assert_eq!(outs[0], u64::MAX >> 32);
        sim.unforce(g1);
        let outs = sim.step(&[u64::MAX, u64::MAX, 0]).unwrap();
        assert_eq!(outs[0], 0);
        sim.force(g1, 0);
        sim.clear_forces();
        let outs = sim.step(&[u64::MAX, u64::MAX, 0]).unwrap();
        assert_eq!(outs[0], 0);
    }

    #[test]
    fn forcing_a_primary_input_overrides_the_pattern_word() {
        let n = comb();
        let a = n.find("a").unwrap();
        let mut sim = Simulator::new(&n).unwrap();
        sim.force(a, 0);
        // Pattern says a=1 everywhere, but the force pins it to 0:
        // g1 = 0, g2 = c, g3 = c ^ 0 = c.
        let outs = sim.step(&[u64::MAX, u64::MAX, 0xF0F0]).unwrap();
        assert_eq!(outs[0], 0xF0F0);
    }

    #[test]
    fn dff_delays_by_one_cycle() {
        let mut b = NetlistBuilder::new("reg");
        b.input("d");
        b.dff("q", "d");
        b.output("q");
        let n = b.finish().unwrap();
        let mut sim = Simulator::new(&n).unwrap();
        assert_eq!(sim.step(&[u64::MAX]).unwrap()[0], 0); // reset state
        assert_eq!(sim.step(&[0]).unwrap()[0], u64::MAX); // captured 1s
        assert_eq!(sim.step(&[0]).unwrap()[0], 0);
    }

    #[test]
    fn feedback_counter_toggles() {
        // state' = state XOR 1 (en tied high) — toggles every cycle.
        let mut b = NetlistBuilder::new("tog");
        b.input("en");
        b.gate("next", GateKind::Xor, &["en", "state"]);
        b.dff("state", "next");
        b.output("state");
        let n = b.finish().unwrap();
        let mut sim = Simulator::new(&n).unwrap();
        let seq: Vec<u64> = (0..4).map(|_| sim.step(&[u64::MAX]).unwrap()[0]).collect();
        assert_eq!(seq, vec![0, u64::MAX, 0, u64::MAX]);
    }

    #[test]
    fn lut_equals_replaced_gate() {
        let n = comb();
        let mut hybrid = n.clone();
        let g2 = hybrid.find("g2").unwrap();
        hybrid.replace_gate_with_lut(g2).unwrap();

        let mut s1 = Simulator::new(&n).unwrap();
        let mut s2 = Simulator::new(&hybrid).unwrap();
        for pat in [[0, 0, 0], [u64::MAX, 5, 99], [7, 7, 7]] {
            assert_eq!(s1.step(&pat).unwrap(), s2.step(&pat).unwrap());
        }
    }

    #[test]
    fn redacted_lut_is_rejected() {
        let mut n = comb();
        let g2 = n.find("g2").unwrap();
        n.replace_gate_with_lut(g2).unwrap();
        let (stripped, _) = n.redact();
        assert!(matches!(
            Simulator::new(&stripped),
            Err(SimError::UnprogrammedLut { .. })
        ));
    }

    #[test]
    fn input_arity_checked() {
        let n = comb();
        let mut sim = Simulator::new(&n).unwrap();
        assert!(matches!(
            sim.step(&[0, 0]),
            Err(SimError::InputCountMismatch {
                expected: 3,
                got: 2
            })
        ));
    }

    #[test]
    fn reset_clears_state() {
        let mut b = NetlistBuilder::new("reg");
        b.input("d");
        b.dff("q", "d");
        b.output("q");
        let n = b.finish().unwrap();
        let mut sim = Simulator::new(&n).unwrap();
        sim.step(&[u64::MAX]).unwrap();
        sim.reset();
        assert_eq!(sim.step(&[0]).unwrap()[0], 0);
    }

    #[test]
    fn reprogrammed_lut_changes_function() {
        let mut b = NetlistBuilder::new("lut");
        b.input("a");
        b.input("b");
        b.lut(
            "y",
            &["a", "b"],
            Some(TruthTable::from_gate(GateKind::And, 2)),
        );
        b.output("y");
        let n = b.finish().unwrap();
        let mut sim = Simulator::new(&n).unwrap();
        assert_eq!(sim.step(&[u64::MAX, 0]).unwrap()[0], 0);

        let mut n2 = n.clone();
        n2.set_lut_config(
            n2.find("y").unwrap(),
            TruthTable::from_gate(GateKind::Or, 2),
        );
        let mut sim2 = Simulator::new(&n2).unwrap();
        assert_eq!(sim2.step(&[u64::MAX, 0]).unwrap()[0], u64::MAX);
    }
}
