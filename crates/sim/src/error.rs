use std::error::Error;
use std::fmt;

/// Errors produced by the simulation engines.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// Two-valued simulation requires every LUT to be programmed; a
    /// redacted LUT has no defined function. (Use
    /// [`tri::TriSimulator`](crate::tri::TriSimulator) for the foundry
    /// view, where missing gates evaluate to X.)
    UnprogrammedLut {
        /// Name of the redacted LUT.
        name: String,
    },
    /// The number of supplied input words does not match the primary
    /// input count.
    InputCountMismatch {
        /// Primary inputs the netlist declares.
        expected: usize,
        /// Words supplied.
        got: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnprogrammedLut { name } => {
                write!(f, "LUT `{name}` is unprogrammed; two-valued simulation needs a configured netlist")
            }
            SimError::InputCountMismatch { expected, got } => {
                write!(f, "expected {expected} input words, got {got}")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_bounds() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<SimError>();
    }

    #[test]
    fn display_mentions_lut_name() {
        let e = SimError::UnprogrammedLut { name: "g7".into() };
        assert!(e.to_string().contains("g7"));
    }
}
