//! Logic simulation for the `sttlock` toolkit.
//!
//! Three engines, all operating on a validated
//! [`Netlist`](sttlock_netlist::Netlist):
//!
//! * [`Simulator`] — a 64-lane bit-parallel two-valued cycle simulator.
//!   Each `u64` word carries 64 independent pattern streams, so one pass
//!   over the netlist evaluates 64 test vectors. This is the oracle the
//!   attacks query and the engine behind activity estimation.
//! * [`tri::TriSimulator`] — a three-valued (0/1/X) simulator in which
//!   *redacted* LUTs (missing gates seen by the foundry) evaluate to X.
//!   The sensitization attack uses it to decide which LUT outputs are
//!   observable at which observation points.
//! * [`activity`] / [`probability`] — dynamic (simulation-based) and
//!   static (probabilistic) switching-activity estimation, feeding the
//!   power analysis. The paper's Figure 1 power columns are parameterized
//!   by exactly this activity (α).
//!
//! # Example
//!
//! ```
//! use sttlock_netlist::{GateKind, NetlistBuilder};
//! use sttlock_sim::Simulator;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = NetlistBuilder::new("xor_reg");
//! b.input("a");
//! b.input("b");
//! b.gate("x", GateKind::Xor, &["a", "b"]);
//! b.dff("q", "x");
//! b.output("q");
//! let n = b.finish()?;
//!
//! let mut sim = Simulator::new(&n)?;
//! sim.step(&[u64::MAX, 0])?;         // a=1, b=0 in every lane
//! let outs = sim.step(&[0, 0])?;     // q now shows last cycle's x
//! assert_eq!(outs[0], u64::MAX);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activity;
pub mod probability;
pub mod tri;

mod bitpar;
mod error;

pub use bitpar::Simulator;
pub use error::SimError;
