//! Three-valued (0 / 1 / X) bit-parallel simulation.
//!
//! The foundry view of a hybrid netlist contains redacted LUTs whose
//! function is unknown; they evaluate to X. The sensitization attack uses
//! this engine twice per missing gate: once with the LUT forced to 0 and
//! once forced to 1 — wherever the two runs differ at an observation
//! point, the LUT output has been propagated.
//!
//! Values are encoded as (value, known) word pairs per lane: `known=0`
//! means X; when `known=1`, `value` holds the binary value.

use std::sync::Arc;

use sttlock_netlist::{CircuitView, GateKind, Netlist, Node, NodeId};

use crate::error::SimError;

/// A 64-lane three-valued word: bit `l` of `known` says whether lane `l`
/// carries a binary value (in `value`) or X.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TriWord {
    /// Binary value per lane; only meaningful where `known` is set.
    pub value: u64,
    /// Per-lane definedness mask.
    pub known: u64,
}

impl TriWord {
    /// A fully known word.
    pub fn known(value: u64) -> Self {
        TriWord {
            value,
            known: u64::MAX,
        }
    }

    /// An all-X word.
    pub fn all_x() -> Self {
        TriWord { value: 0, known: 0 }
    }

    /// Lanes where `self` and `other` are both known and differ.
    pub fn known_difference(self, other: TriWord) -> u64 {
        (self.value ^ other.value) & self.known & other.known
    }
}

/// Per-node override applied during evaluation — the attack uses it to
/// force a redacted LUT output to a hypothesis value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Forced {
    /// Node whose output is forced.
    pub node: NodeId,
    /// The forced 64-lane value (fully known).
    pub value: u64,
}

/// Partial knowledge of a redacted LUT's truth table: rows in `resolved`
/// evaluate to the corresponding bit of `bits`; other rows stay X.
///
/// The sensitization attack registers what it has learned so far via
/// [`TriSimulator::set_partial_lut`] — a half-known missing gate then
/// only poisons the cone for the input combinations that are still open.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PartialLut {
    /// Bit `r` set when row `r`'s output is known.
    pub resolved: u64,
    /// Outputs for the resolved rows.
    pub bits: u64,
}

/// Three-valued cycle simulator. Flip-flops power up at X, the most
/// conservative assumption for an attacker without reset control.
#[derive(Debug, Clone)]
pub struct TriSimulator<'a> {
    netlist: &'a Netlist,
    order: Arc<Vec<NodeId>>,
    values: Vec<TriWord>,
    state: Vec<TriWord>,
    partial: std::collections::HashMap<NodeId, PartialLut>,
}

impl<'a> TriSimulator<'a> {
    /// Prepares a three-valued simulator. Redacted LUTs are legal here.
    pub fn new(netlist: &'a Netlist) -> Self {
        Self::with_view(&CircuitView::new(netlist))
    }

    /// Prepares a three-valued simulator against a shared
    /// [`CircuitView`], reusing its memoized topological order. The
    /// attack loop evaluates many hypotheses per round over one working
    /// netlist; sharing the view amortizes the order across all of them.
    pub fn with_view(view: &CircuitView<'a>) -> Self {
        let netlist = view.netlist();
        TriSimulator {
            netlist,
            order: view.topo_order_arc(),
            values: vec![TriWord::all_x(); netlist.len()],
            state: vec![TriWord::all_x(); netlist.len()],
            partial: std::collections::HashMap::new(),
        }
    }

    /// Registers partial truth-table knowledge for a redacted LUT; its
    /// output becomes known on lanes whose (fully known) input row is
    /// resolved. Ignored for programmed LUTs.
    pub fn set_partial_lut(&mut self, id: NodeId, partial: PartialLut) {
        self.partial.insert(id, partial);
    }

    /// Resets every flip-flop to X.
    pub fn reset_to_x(&mut self) {
        self.state.fill(TriWord::all_x());
        self.values.fill(TriWord::all_x());
    }

    /// Resets every flip-flop to known 0 (the design-house reset).
    pub fn reset_to_zero(&mut self) {
        self.state.fill(TriWord::known(0));
        self.values.fill(TriWord::known(0));
    }

    /// Current value of a net.
    pub fn value(&self, id: NodeId) -> TriWord {
        self.values[id.index()]
    }

    /// Evaluates combinational logic for fully known primary inputs, with
    /// optional per-node output overrides.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InputCountMismatch`] on an arity mismatch.
    pub fn eval_comb(&mut self, inputs: &[u64], forced: &[Forced]) -> Result<(), SimError> {
        let pis = self.netlist.inputs();
        if inputs.len() != pis.len() {
            return Err(SimError::InputCountMismatch {
                expected: pis.len(),
                got: inputs.len(),
            });
        }
        for (&pi, &w) in pis.iter().zip(inputs) {
            self.values[pi.index()] = TriWord::known(w);
        }
        for (id, node) in self.netlist.iter() {
            match node {
                Node::Const(v) => {
                    self.values[id.index()] = TriWord::known(if *v { u64::MAX } else { 0 })
                }
                Node::Dff { .. } => self.values[id.index()] = self.state[id.index()],
                _ => {}
            }
        }
        for &id in self.order.iter() {
            let out = if let Some(f) = forced.iter().find(|f| f.node == id) {
                TriWord::known(f.value)
            } else {
                self.eval_node(id)
            };
            self.values[id.index()] = out;
        }
        Ok(())
    }

    fn eval_node(&self, id: NodeId) -> TriWord {
        match self.netlist.node(id) {
            Node::Gate { kind, fanin } => {
                let words: Vec<TriWord> = fanin.iter().map(|f| self.values[f.index()]).collect();
                eval_gate_tri(*kind, &words)
            }
            Node::Lut { fanin, config } => match config {
                None => {
                    let Some(partial) = self.partial.get(&id) else {
                        return TriWord::all_x();
                    };
                    // Lanes are known where every input is known and the
                    // resulting row has been resolved.
                    let words: Vec<TriWord> =
                        fanin.iter().map(|f| self.values[f.index()]).collect();
                    let inputs_known = words.iter().fold(u64::MAX, |a, w| a & w.known);
                    let mut known = 0u64;
                    let mut value = 0u64;
                    for row in 0..(1usize << fanin.len().min(6)) {
                        if partial.resolved & (1 << row) == 0 {
                            continue;
                        }
                        let mut lanes = inputs_known;
                        for (i, w) in words.iter().enumerate() {
                            let want_one = (row >> i) & 1 == 1;
                            lanes &= if want_one { w.value } else { !w.value };
                            if lanes == 0 {
                                break;
                            }
                        }
                        known |= lanes;
                        if partial.bits & (1 << row) != 0 {
                            value |= lanes;
                        }
                    }
                    TriWord { value, known }
                }
                Some(table) => {
                    let words: Vec<TriWord> =
                        fanin.iter().map(|f| self.values[f.index()]).collect();
                    // Known only where all inputs are known.
                    let known = words.iter().fold(u64::MAX, |a, w| a & w.known);
                    let ins: Vec<u64> = words.iter().map(|w| w.value).collect();
                    TriWord {
                        value: table.eval_parallel(&ins) & known,
                        known,
                    }
                }
            },
            _ => unreachable!("only combinational nodes are in topo order"),
        }
    }

    /// Clocks every flip-flop.
    pub fn clock(&mut self) {
        for (id, node) in self.netlist.iter() {
            if let Node::Dff { d } = node {
                self.state[id.index()] = self.values[d.index()];
            }
        }
    }

    /// Flip-flop ids in arena order — the state vector layout used by
    /// [`eval_frame`](TriSimulator::eval_frame).
    pub fn dff_ids(&self) -> Vec<NodeId> {
        self.netlist
            .iter()
            .filter(|(_, n)| n.is_dff())
            .map(|(id, _)| id)
            .collect()
    }

    /// Single-frame (full-scan) evaluation with fully known state words
    /// and per-node output overrides; no clocking.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InputCountMismatch`] if `inputs` or `state`
    /// have the wrong length.
    pub fn eval_frame(
        &mut self,
        inputs: &[u64],
        state: &[u64],
        forced: &[Forced],
    ) -> Result<(), SimError> {
        let dffs = self.dff_ids();
        if state.len() != dffs.len() {
            return Err(SimError::InputCountMismatch {
                expected: dffs.len(),
                got: state.len(),
            });
        }
        for (&ff, &w) in dffs.iter().zip(state) {
            self.state[ff.index()] = TriWord::known(w);
        }
        self.eval_comb(inputs, forced)
    }

    /// The observation vector of the full-scan model: primary outputs
    /// followed by flip-flop D-pin values (arena order).
    pub fn observation(&self) -> Vec<TriWord> {
        let mut obs: Vec<TriWord> = self
            .netlist
            .outputs()
            .iter()
            .map(|&o| self.values[o.index()])
            .collect();
        for (_, node) in self.netlist.iter() {
            if let Node::Dff { d } = node {
                obs.push(self.values[d.index()]);
            }
        }
        obs
    }

    /// One full cycle with overrides; returns the primary output words.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InputCountMismatch`] on an arity mismatch.
    pub fn step(&mut self, inputs: &[u64], forced: &[Forced]) -> Result<Vec<TriWord>, SimError> {
        self.eval_comb(inputs, forced)?;
        let outs = self
            .netlist
            .outputs()
            .iter()
            .map(|&o| self.values[o.index()])
            .collect();
        self.clock();
        Ok(outs)
    }
}

/// Three-valued gate evaluation with controlling-value shortcuts: an AND
/// with any known-0 input is known-0 even if other inputs are X.
fn eval_gate_tri(kind: GateKind, words: &[TriWord]) -> TriWord {
    use GateKind::*;
    match kind {
        Buf => words[0],
        Not => TriWord {
            value: !words[0].value & words[0].known,
            known: words[0].known,
        },
        And | Nand => {
            let any_zero = words.iter().fold(0u64, |a, w| a | (!w.value & w.known));
            let all_one = words.iter().fold(u64::MAX, |a, w| a & w.value & w.known);
            let known = any_zero | all_one;
            let value = all_one;
            invert_if(
                kind == Nand,
                TriWord {
                    value: value & known,
                    known,
                },
            )
        }
        Or | Nor => {
            let any_one = words.iter().fold(0u64, |a, w| a | (w.value & w.known));
            let all_zero = words.iter().fold(u64::MAX, |a, w| a & (!w.value & w.known));
            let known = any_one | all_zero;
            let value = any_one;
            invert_if(
                kind == Nor,
                TriWord {
                    value: value & known,
                    known,
                },
            )
        }
        Xor | Xnor => {
            // Parity is known only when every input is known.
            let known = words.iter().fold(u64::MAX, |a, w| a & w.known);
            let value = words.iter().fold(0u64, |a, w| a ^ w.value);
            invert_if(
                kind == Xnor,
                TriWord {
                    value: value & known,
                    known,
                },
            )
        }
    }
}

fn invert_if(invert: bool, w: TriWord) -> TriWord {
    if invert {
        TriWord {
            value: !w.value & w.known,
            known: w.known,
        }
    } else {
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sttlock_netlist::NetlistBuilder;

    fn tri(v: Option<bool>) -> TriWord {
        match v {
            Some(true) => TriWord::known(u64::MAX),
            Some(false) => TriWord::known(0),
            None => TriWord::all_x(),
        }
    }

    #[test]
    fn controlling_values_dominate_x() {
        let x = tri(None);
        let zero = tri(Some(false));
        let one = tri(Some(true));
        // 0 AND X = 0
        let w = eval_gate_tri(GateKind::And, &[zero, x]);
        assert_eq!(w, tri(Some(false)));
        // 1 OR X = 1
        let w = eval_gate_tri(GateKind::Or, &[one, x]);
        assert_eq!(w, tri(Some(true)));
        // 1 AND X = X
        let w = eval_gate_tri(GateKind::And, &[one, x]);
        assert_eq!(w.known, 0);
        // X XOR 1 = X
        let w = eval_gate_tri(GateKind::Xor, &[x, one]);
        assert_eq!(w.known, 0);
        // NOT X = X
        let w = eval_gate_tri(GateKind::Not, &[x]);
        assert_eq!(w.known, 0);
    }

    #[test]
    fn redacted_lut_produces_x_and_forcing_resolves_it() {
        let mut b = NetlistBuilder::new("m");
        b.input("a");
        b.input("b");
        b.gate("g", GateKind::And, &["a", "b"]);
        b.output("g");
        let mut n = b.finish().unwrap();
        let g = n.find("g").unwrap();
        n.replace_gate_with_lut(g).unwrap();
        let (stripped, _) = n.redact();

        let mut sim = TriSimulator::new(&stripped);
        let outs = sim.step(&[u64::MAX, u64::MAX], &[]).unwrap();
        assert_eq!(outs[0].known, 0, "missing gate must be X");

        let mut sim = TriSimulator::new(&stripped);
        let outs = sim
            .step(
                &[u64::MAX, u64::MAX],
                &[Forced {
                    node: g,
                    value: u64::MAX,
                }],
            )
            .unwrap();
        assert_eq!(outs[0], TriWord::known(u64::MAX));
    }

    #[test]
    fn difference_detection_between_hypotheses() {
        // y = x AND c : forcing x to 0 vs 1 is observable only when c=1.
        let mut b = NetlistBuilder::new("m");
        b.input("c");
        b.input("p");
        b.gate("x", GateKind::Buf, &["p"]);
        b.gate("y", GateKind::And, &["x", "c"]);
        b.output("y");
        let mut n = b.finish().unwrap();
        let x = n.find("x").unwrap();
        n.replace_gate_with_lut(x).unwrap();
        let (stripped, _) = n.redact();

        let run = |c: u64, v: u64| {
            let mut sim = TriSimulator::new(&stripped);
            sim.step(&[c, 0], &[Forced { node: x, value: v }]).unwrap()[0]
        };
        // c = 1: observable
        assert_eq!(
            run(u64::MAX, 0).known_difference(run(u64::MAX, u64::MAX)),
            u64::MAX
        );
        // c = 0: masked
        assert_eq!(run(0, 0).known_difference(run(0, u64::MAX)), 0);
    }

    #[test]
    fn partial_lut_knowledge_narrows_x() {
        // y = LUT(a, c) redacted; with row 0b11 resolved to 1 the output
        // becomes known exactly when a = c = 1.
        let mut b = NetlistBuilder::new("m");
        b.input("a");
        b.input("c");
        b.lut("y", &["a", "c"], None);
        b.output("y");
        let n = b.finish().unwrap();
        let y = n.find("y").unwrap();

        let mut sim = TriSimulator::new(&n);
        sim.set_partial_lut(
            y,
            PartialLut {
                resolved: 0b1000,
                bits: 0b1000,
            },
        );
        // Lane pattern: a = 1 everywhere, c = 1 on the low 32 lanes only.
        let c = 0x0000_0000_FFFF_FFFFu64;
        let outs = sim.step(&[u64::MAX, c], &[]).unwrap();
        assert_eq!(outs[0].known, c, "known only where the resolved row hits");
        assert_eq!(outs[0].value, c);

        // Without partial knowledge, everything is X.
        let mut plain = TriSimulator::new(&n);
        let outs = plain.step(&[u64::MAX, c], &[]).unwrap();
        assert_eq!(outs[0].known, 0);
    }

    #[test]
    fn x_state_after_reset() {
        let mut b = NetlistBuilder::new("m");
        b.input("d");
        b.dff("q", "d");
        b.output("q");
        let n = b.finish().unwrap();
        let mut sim = TriSimulator::new(&n);
        let outs = sim.step(&[u64::MAX], &[]).unwrap();
        assert_eq!(outs[0].known, 0, "uninitialized flop reads X");
        let outs = sim.step(&[0], &[]).unwrap();
        assert_eq!(outs[0], TriWord::known(u64::MAX), "captured known value");
    }

    #[test]
    fn zero_reset_matches_two_valued_convention() {
        let mut b = NetlistBuilder::new("m");
        b.input("d");
        b.dff("q", "d");
        b.output("q");
        let n = b.finish().unwrap();
        let mut sim = TriSimulator::new(&n);
        sim.reset_to_zero();
        let outs = sim.step(&[u64::MAX], &[]).unwrap();
        assert_eq!(outs[0], TriWord::known(0));
    }
}
