//! Static (probabilistic) signal analysis.
//!
//! A fast, simulation-free estimate of per-net signal probabilities and
//! switching activities under the independence assumption: every primary
//! input is 1 with probability 0.5 and temporally uncorrelated. Flip-flop
//! state probabilities are solved by fixpoint iteration.
//!
//! The estimate feeds the power model when a full simulation is too
//! expensive, and cross-checks the dynamic estimate of
//! [`activity`](crate::activity) in tests.

use sttlock_netlist::{CircuitView, GateKind, Netlist, Node, NodeId};

/// Static per-net probabilities.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbabilityReport {
    /// Probability that the net is 1 (indexed by [`NodeId::index`]).
    pub p_one: Vec<f64>,
    /// Fixpoint iterations performed.
    pub iterations: usize,
    /// Whether the sequential fixpoint reached the convergence
    /// threshold. `false` means the iteration budget ran out first and
    /// the state probabilities are a truncated estimate — previously
    /// this was silent; consumers that need trustworthy numbers (the
    /// power cross-checks) assert it.
    pub converged: bool,
}

impl ProbabilityReport {
    /// Signal probability of one net.
    pub fn of(&self, id: NodeId) -> f64 {
        self.p_one[id.index()]
    }

    /// Temporal-independence activity estimate for one net:
    /// `α = 2·p·(1−p)`.
    pub fn activity(&self, id: NodeId) -> f64 {
        let p = self.of(id);
        2.0 * p * (1.0 - p)
    }
}

/// Maximum fixpoint iterations for sequential probability propagation.
const MAX_ITERATIONS: usize = 64;
/// Convergence threshold on the largest state-probability change.
const EPSILON: f64 = 1e-6;

/// Computes static signal probabilities for every net.
///
/// Redacted LUTs are treated as 0.5 (unknown content, balanced table) —
/// the static engine is the one analysis that legitimately runs on the
/// foundry view.
pub fn signal_probabilities(netlist: &Netlist) -> ProbabilityReport {
    signal_probabilities_with(&CircuitView::new(netlist))
}

/// [`signal_probabilities`] against a shared [`CircuitView`], reusing
/// its memoized topological order.
pub fn signal_probabilities_with(view: &CircuitView<'_>) -> ProbabilityReport {
    let netlist = view.netlist();
    let order = view.topo_order();
    let n = netlist.len();
    let mut p = vec![0.5f64; n];
    // Initialize non-combinational nodes.
    for (id, node) in netlist.iter() {
        match node {
            Node::Input => p[id.index()] = 0.5,
            Node::Const(v) => p[id.index()] = if *v { 1.0 } else { 0.0 },
            Node::Dff { .. } => p[id.index()] = 0.5,
            _ => {}
        }
    }

    let mut iterations = 0;
    let mut converged = false;
    for iter in 0..MAX_ITERATIONS {
        iterations = iter + 1;
        for &id in order {
            p[id.index()] = eval_probability(netlist, &p, id);
        }
        // Update flip-flop state probabilities from their D inputs.
        let mut delta = 0.0f64;
        for (id, node) in netlist.iter() {
            if let Node::Dff { d } = node {
                let next = p[d.index()];
                delta = delta.max((next - p[id.index()]).abs());
                p[id.index()] = next;
            }
        }
        if delta < EPSILON {
            converged = true;
            break;
        }
    }
    ProbabilityReport {
        p_one: p,
        iterations,
        converged,
    }
}

fn eval_probability(netlist: &Netlist, p: &[f64], id: NodeId) -> f64 {
    match netlist.node(id) {
        Node::Gate { kind, fanin } => {
            let ps: Vec<f64> = fanin.iter().map(|f| p[f.index()]).collect();
            eval_gate_probability(*kind, &ps)
        }
        Node::Lut { fanin, config } => match config {
            None => 0.5,
            Some(table) => {
                // Sum over rows with output 1 of the row probability.
                let ps: Vec<f64> = fanin.iter().map(|f| p[f.index()]).collect();
                let mut total = 0.0;
                for row in 0..table.rows() {
                    if !table.eval(row) {
                        continue;
                    }
                    let mut rp = 1.0;
                    for (i, &pi) in ps.iter().enumerate() {
                        rp *= if (row >> i) & 1 == 1 { pi } else { 1.0 - pi };
                    }
                    total += rp;
                }
                total
            }
        },
        _ => p[id.index()],
    }
}

fn eval_gate_probability(kind: GateKind, ps: &[f64]) -> f64 {
    use GateKind::*;
    match kind {
        Buf => ps[0],
        Not => 1.0 - ps[0],
        And => ps.iter().product(),
        Nand => 1.0 - ps.iter().product::<f64>(),
        Or => 1.0 - ps.iter().map(|q| 1.0 - q).product::<f64>(),
        Nor => ps.iter().map(|q| 1.0 - q).product(),
        Xor => ps.iter().fold(0.0, |a, &b| a * (1.0 - b) + b * (1.0 - a)),
        Xnor => 1.0 - ps.iter().fold(0.0, |a, &b| a * (1.0 - b) + b * (1.0 - a)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sttlock_netlist::{NetlistBuilder, TruthTable};

    #[test]
    fn gate_probabilities_match_theory() {
        assert!((eval_gate_probability(GateKind::And, &[0.5, 0.5]) - 0.25).abs() < 1e-12);
        assert!((eval_gate_probability(GateKind::Or, &[0.5, 0.5]) - 0.75).abs() < 1e-12);
        assert!((eval_gate_probability(GateKind::Xor, &[0.5, 0.5]) - 0.5).abs() < 1e-12);
        assert!((eval_gate_probability(GateKind::Nand, &[0.25, 0.5]) - 0.875).abs() < 1e-12);
        assert!((eval_gate_probability(GateKind::Not, &[0.3]) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn combinational_propagation() {
        let mut b = NetlistBuilder::new("m");
        b.input("a");
        b.input("c");
        b.gate("g1", GateKind::And, &["a", "c"]); // 0.25
        b.gate("g2", GateKind::Nor, &["g1", "a"]); // (1-0.25)(1-0.5) dependent — indep approx 0.375
        b.output("g2");
        let n = b.finish().unwrap();
        let rep = signal_probabilities(&n);
        assert!((rep.of(n.find("g1").unwrap()) - 0.25).abs() < 1e-9);
        assert!((rep.of(n.find("g2").unwrap()) - 0.375).abs() < 1e-9);
    }

    #[test]
    fn constants_are_exact() {
        let mut b = NetlistBuilder::new("m");
        b.input("a");
        b.constant("one", true);
        b.gate("g", GateKind::And, &["a", "one"]);
        b.output("g");
        let n = b.finish().unwrap();
        let rep = signal_probabilities(&n);
        assert!((rep.of(n.find("one").unwrap()) - 1.0).abs() < 1e-12);
        assert!((rep.of(n.find("g").unwrap()) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn sequential_fixpoint_converges() {
        // state' = state AND en: state probability decays to 0.
        let mut b = NetlistBuilder::new("m");
        b.input("en");
        b.gate("next", GateKind::And, &["state", "en"]);
        b.dff("state", "next");
        b.output("state");
        let n = b.finish().unwrap();
        let rep = signal_probabilities(&n);
        assert!(rep.of(n.find("state").unwrap()) < 1e-3);
        assert!(rep.iterations <= MAX_ITERATIONS);
        assert!(rep.converged, "decaying fixpoint must converge");
    }

    #[test]
    fn combinational_netlists_converge_immediately() {
        let mut b = NetlistBuilder::new("m");
        b.input("a");
        b.gate("y", GateKind::Not, &["a"]);
        b.output("y");
        let n = b.finish().unwrap();
        let rep = signal_probabilities(&n);
        assert!(rep.converged);
        assert_eq!(rep.iterations, 1);
    }

    #[test]
    fn programmed_lut_uses_its_table() {
        let mut b = NetlistBuilder::new("m");
        b.input("a");
        b.input("c");
        b.lut(
            "y",
            &["a", "c"],
            Some(TruthTable::from_gate(GateKind::Nor, 2)),
        );
        b.output("y");
        let n = b.finish().unwrap();
        let rep = signal_probabilities(&n);
        assert!((rep.of(n.find("y").unwrap()) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn redacted_lut_is_half() {
        let mut b = NetlistBuilder::new("m");
        b.input("a");
        b.input("c");
        b.lut("y", &["a", "c"], None);
        b.output("y");
        let n = b.finish().unwrap();
        let rep = signal_probabilities(&n);
        assert!((rep.of(n.find("y").unwrap()) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn activity_is_2p1p() {
        let rep = ProbabilityReport {
            p_one: vec![0.25],
            iterations: 1,
            converged: true,
        };
        assert!((rep.activity(NodeId::from_index(0)) - 0.375).abs() < 1e-12);
    }
}
