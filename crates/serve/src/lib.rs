//! `sttlock-serve`: a resident harden/attack service.
//!
//! Every entry point into the flow used to be a one-shot CLI run; this
//! crate keeps the process — and with it the content-hash cache and the
//! obs registry — warm across requests, behind a zero-external-
//! dependency HTTP/1.1 JSON API over [`std::net::TcpListener`]:
//!
//! * `POST /v1/harden` — bench netlist + algorithm + seed → hybrid
//!   bitstream, overhead metrics, security estimate;
//! * `POST /v1/attack` — sensitization / SAT / sequential-SAT attack
//!   with the existing deadline budgets;
//! * `GET /healthz`, `GET /metrics` (text export of the obs
//!   counters/gauges/histograms), `POST /admin/shutdown`.
//!
//! The execution model rides on the shared exec runtime
//! ([`sttlock_exec`]): accepted connections are admitted into a bounded
//! [`sttlock_exec::Pool`], and the accept thread answers 429 itself
//! when the queue is full, so overload degrades into fast, well-formed
//! rejections instead of unbounded memory or dropped connections. Each
//! request carries a [`sttlock_exec::Budget`] with a deadline from its
//! accept timestamp, threaded through the handlers into the flow,
//! selection, STA and attack layers — blowing it cancels the work
//! mid-stage and returns 504 with whatever partial metrics the stage
//! produced. A panicking handler is contained by `catch_unwind` (like
//! the campaign runner's cells) and becomes a 500 without killing the
//! worker. Shutdown — the admin endpoint or [`Server::shutdown`] — is a
//! [`sttlock_exec::CancelToken`]: the accept loop stops, the pool
//! drains every queued and in-flight request, then joins, so no
//! accepted request is ever dropped. (The stop token is deliberately
//! *not* an ancestor of request budgets: draining means in-flight
//! requests run to completion under their own deadlines.)

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod handlers;
pub mod http;

use std::io::{self, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use sttlock_exec::{Budget, CancelToken, Pool, PoolFull};
use sttlock_obs::{Fanout, MetricsCollector, TraceCollector};

use cache::HardenCache;
use http::{Limits, Response};

/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// Per-read socket timeout: a peer that stops sending mid-request
/// (slowloris) costs a worker at most this long.
const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Server configuration; every field has a sensible default.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads (0 = available parallelism).
    pub workers: usize,
    /// Accepted-but-unserved connection queue bound; beyond it the
    /// accept thread answers 429 immediately.
    pub queue_depth: usize,
    /// Per-request wall budget, measured from accept; overruns are 504.
    pub request_timeout: Duration,
    /// Response cache directory: holds the persistent
    /// [`cache::HardenCache`] record log, warm-loaded on boot so
    /// repeats hit across restarts. `None` disables caching.
    pub cache_dir: Option<PathBuf>,
    /// HTTP parse limits.
    pub limits: Limits,
    /// Expose `POST /debug/sleep` and `POST /debug/panic` (tests/CI
    /// drive backpressure, deadline and panic paths deterministically).
    pub debug_endpoints: bool,
    /// Also record a full span trace, written here on shutdown.
    pub trace_path: Option<PathBuf>,
    /// Install this server's metrics sink as the process-global obs
    /// collector (and uninstall it on shutdown). The default; turn it
    /// off when several servers share one process (the cluster tests
    /// run a coordinator plus workers under one ambient collector).
    pub install_obs: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 0,
            queue_depth: 64,
            request_timeout: Duration::from_secs(10),
            cache_dir: None,
            limits: Limits::default(),
            debug_endpoints: false,
            trace_path: None,
            install_obs: true,
        }
    }
}

/// An overlay route table: consulted before the built-in routes, so a
/// layer above (the cluster coordinator/worker) can add endpoints while
/// keeping `/healthz`, `/metrics` and `/admin/shutdown` for free.
/// Returning `None` falls through to the built-in routing.
pub type Router = Arc<dyn Fn(&http::Request, &Budget) -> Option<Response> + Send + Sync>;

/// State shared by the accept thread, the workers and the handlers.
pub(crate) struct Shared {
    pub(crate) stop: CancelToken,
    pub(crate) request_timeout: Duration,
    pub(crate) limits: Limits,
    pub(crate) debug_endpoints: bool,
    pub(crate) cache: Option<HardenCache>,
    pub(crate) metrics: Arc<MetricsCollector>,
    pub(crate) started: Instant,
    pub(crate) workers: usize,
    pub(crate) queue_depth: usize,
    pub(crate) router: Option<Router>,
    pub(crate) installed_obs: bool,
}

struct Job {
    stream: TcpStream,
    accepted_at: Instant,
}

/// A cloneable handle that can request shutdown from another thread
/// (the CLI's stdin watcher, signal-ish glue).
#[derive(Clone)]
pub struct StopHandle(Arc<Shared>);

impl StopHandle {
    /// Requests a graceful shutdown: stop accepting, drain, exit.
    pub fn stop(&self) {
        self.0.stop.cancel();
    }

    /// True once shutdown has been requested, whether through this
    /// handle, `POST /admin/shutdown` or [`Server::shutdown`]. The
    /// CLI's stdin watcher polls this to know when to stop watching.
    pub fn is_stopped(&self) -> bool {
        self.0.stop.is_cancelled()
    }
}

/// A running server; dropping it shuts down gracefully if
/// [`Server::shutdown`]/[`Server::wait`] have not run already.
pub struct Server {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    pool: Option<Arc<Pool>>,
    addr: SocketAddr,
    metrics: Arc<MetricsCollector>,
    trace: Option<(Arc<TraceCollector>, PathBuf)>,
    joined: bool,
}

impl Server {
    /// Binds, installs the obs metrics sink and starts the pool.
    ///
    /// Installing is process-global: one server at a time. (Tests
    /// serialize on that, the CLI runs exactly one.) Servers started
    /// with `install_obs: false` skip the install and leave whatever
    /// collector is ambient in place.
    pub fn start(cfg: ServeConfig) -> io::Result<Server> {
        Server::start_with_router(cfg, None)
    }

    /// [`Server::start`] with an overlay [`Router`] consulted before
    /// the built-in routes on every request.
    pub fn start_with_router(cfg: ServeConfig, router: Option<Router>) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let metrics = MetricsCollector::new();
        let trace = cfg.trace_path.clone().map(|p| (TraceCollector::new(), p));
        if cfg.install_obs {
            match &trace {
                Some((t, _)) => sttlock_obs::install(Fanout::new(vec![
                    metrics.clone() as Arc<dyn sttlock_obs::Collector>,
                    t.clone() as Arc<dyn sttlock_obs::Collector>,
                ])),
                None => sttlock_obs::install(metrics.clone()),
            }
        }

        let workers = if cfg.workers > 0 {
            cfg.workers
        } else {
            thread::available_parallelism().map_or(2, |n| n.get())
        };
        let shared = Arc::new(Shared {
            stop: CancelToken::new(),
            request_timeout: cfg.request_timeout,
            limits: cfg.limits,
            debug_endpoints: cfg.debug_endpoints,
            cache: cfg.cache_dir.and_then(HardenCache::open),
            metrics: metrics.clone(),
            started: Instant::now(),
            workers,
            queue_depth: cfg.queue_depth,
            router,
            installed_obs: cfg.install_obs,
        });

        let pool = Arc::new(Pool::new(workers, cfg.queue_depth.max(1)));
        let accept = {
            let shared = Arc::clone(&shared);
            let pool = Arc::clone(&pool);
            thread::spawn(move || accept_loop(&shared, &listener, &pool))
        };

        Ok(Server {
            shared,
            accept: Some(accept),
            pool: Some(pool),
            addr,
            metrics,
            trace,
            joined: false,
        })
    }

    /// The bound address (resolves `:0` for tests).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The aggregate metrics sink (live while the server runs).
    pub fn metrics(&self) -> &Arc<MetricsCollector> {
        &self.metrics
    }

    /// A handle other threads can use to request shutdown.
    pub fn stop_handle(&self) -> StopHandle {
        StopHandle(Arc::clone(&self.shared))
    }

    /// Blocks until shutdown is requested (`POST /admin/shutdown` or a
    /// [`StopHandle`]), then drains and joins. Returns a metrics digest.
    pub fn wait(mut self) -> String {
        while !self.shared.stop.is_cancelled() {
            thread::sleep(Duration::from_millis(25));
        }
        self.join_all()
    }

    /// Requests shutdown, drains every queued and in-flight request,
    /// joins the pool. Returns a metrics digest.
    pub fn shutdown(mut self) -> String {
        self.shared.stop.cancel();
        self.join_all()
    }

    fn join_all(&mut self) -> String {
        // The accept thread exits on the stop token and drops its pool
        // handle; dropping ours then closes the queue, drains every
        // admitted job and joins the workers (`Pool`'s drop contract).
        // Nothing accepted is dropped.
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        drop(self.pool.take());
        if let Some(cache) = &self.shared.cache {
            // Clean exits leave a durable cache even though appends
            // run under `FsyncPolicy::Never`.
            cache.flush();
        }
        if let Some((t, path)) = self.trace.take() {
            // Atomic temp+rename: a crash (or armed kill-point) during
            // the export leaves the previous trace intact, never a
            // half-written JSONL file.
            let _ = sttlock_store::write_atomic(&path, t.to_jsonl());
        }
        if self.shared.installed_obs {
            sttlock_obs::uninstall();
        }
        self.joined = true;
        self.metrics.digest()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if !self.joined {
            self.shared.stop.cancel();
            let _ = self.join_all();
        }
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener, pool: &Pool) {
    while !shared.stop.is_cancelled() {
        match listener.accept() {
            Ok((stream, _)) => {
                sttlock_obs::counter("serve.accepted", 1);
                // The accepted socket may inherit the listener's
                // non-blocking mode; workers want blocking reads.
                let _ = stream.set_nonblocking(false);
                // One-shot request/response: Nagle only adds latency.
                let _ = stream.set_nodelay(true);
                submit(shared, pool, stream);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
            Err(_) => thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Hands one accepted connection to the pool, or answers the canned 429
/// from the accept thread when the queue is full.
///
/// The stream rides in a reclaim slot: [`Pool::try_execute`] consumes
/// its job on rejection, so the socket is parked where the accept
/// thread can take it back to write the rejection response.
fn submit(shared: &Arc<Shared>, pool: &Pool, stream: TcpStream) {
    let accepted_at = Instant::now();
    let slot = Arc::new(Mutex::new(Some(stream)));
    let job = {
        let shared = Arc::clone(shared);
        let slot = Arc::clone(&slot);
        move || {
            let stream = slot.lock().unwrap_or_else(PoisonError::into_inner).take();
            let Some(stream) = stream else { return };
            sttlock_obs::gauge("serve.queued", -1);
            sttlock_obs::gauge("serve.in_flight", 1);
            serve_connection(
                &shared,
                Job {
                    stream,
                    accepted_at,
                },
            );
            sttlock_obs::gauge("serve.in_flight", -1);
        }
    };
    match pool.try_execute(job) {
        Ok(()) => sttlock_obs::gauge("serve.queued", 1),
        Err(PoolFull) => {
            if let Some(stream) = slot.lock().unwrap_or_else(PoisonError::into_inner).take() {
                reject_busy(stream);
            }
        }
    }
}

/// Backpressure: the queue is full, so the *accept thread* answers a
/// canned 429 and closes — a bounded-latency rejection that never
/// blocks behind the workers.
fn reject_busy(mut stream: TcpStream) {
    sttlock_obs::counter("serve.rejected_busy", 1);
    count_status(429);
    let resp = Response::error(429, "request queue is full, retry later").with_retry_after(1);
    let _ = stream.write_all(&resp.to_bytes());
    let _ = stream.shutdown(Shutdown::Both);
}

fn serve_connection(shared: &Shared, job: Job) {
    let mut stream = job.stream;
    let queue_us = job.accepted_at.elapsed().as_micros() as u64;
    sttlock_obs::observe_us("serve.queue_wait", queue_us);
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    // The whole request runs under one deadline budget, threaded down
    // into flow/selection/STA/attack so an overrun cancels the deep
    // work instead of letting it run to completion unobserved.
    let budget = Budget::deadline_at(job.accepted_at + shared.request_timeout);

    let mut span = sttlock_obs::span!("serve.request", queue_us = queue_us);
    // Parse and compute under one unwind guard: a panic anywhere in
    // request handling becomes a 500 on this connection, never a dead
    // worker (the write below happens outside, from an intact stack).
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
        let parsed = {
            let _s = sttlock_obs::span!("request.parse");
            http::read_request(&mut BufReader::new(&mut stream), &shared.limits)
        };
        match parsed {
            Ok(req) => {
                span.record("method", req.method.as_str());
                span.record("path", req.path.as_str());
                if budget.exhausted() {
                    // The whole budget went to queueing + parsing.
                    sttlock_obs::counter("serve.deadline_missed", 1);
                    return Some(Response::error(
                        504,
                        "request budget exhausted before compute",
                    ));
                }
                let _s = sttlock_obs::span!("request.compute");
                let overlaid = shared.router.as_ref().and_then(|r| r(&req, &budget));
                Some(overlaid.unwrap_or_else(|| handlers::route(shared, &req, &budget)))
            }
            Err(http::HttpError::ConnectionClosed) => None,
            Err(e) => {
                sttlock_obs::counter("serve.parse_errors", 1);
                e.response()
            }
        }
    }));
    let response = match outcome {
        Ok(r) => r,
        Err(payload) => {
            sttlock_obs::counter("serve.request_panicked", 1);
            Some(Response::error(
                500,
                &format!("handler panicked: {}", panic_message(&*payload)),
            ))
        }
    };

    let Some(response) = response else {
        return; // peer closed without sending anything
    };
    span.record("status", response.status);
    drop(span);
    count_status(response.status);
    let _ = stream
        .write_all(&response.to_bytes())
        .and_then(|()| stream.flush());
    let _ = stream.shutdown(Shutdown::Both);
}

pub(crate) fn count_status(status: u16) {
    sttlock_obs::counter("serve.responses", 1);
    sttlock_obs::counter(
        match status / 100 {
            2 => "serve.status.2xx",
            4 => "serve.status.4xx",
            5 => "serve.status.5xx",
            _ => "serve.status.other",
        },
        1,
    );
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}
