//! Load driver for `sttlock-serve`: hammers a running server with
//! concurrent harden/attack requests and checks the service-level
//! invariants the design promises — every connection gets an HTTP
//! response (only 2xx/429/504, never a dropped socket), cache-hit
//! hardens are much faster than cold ones, and the `/metrics` counters
//! agree with what the driver actually sent.
//!
//! ```text
//! sttlock-loadgen --addr 127.0.0.1:7979 --clients 64 --requests 50 \
//!     --gates 60 --mode mixed --assert-speedup 10 --check-metrics --shutdown
//! ```
//!
//! Exit status 0 means all invariants held; 1 means at least one was
//! violated (details on stderr).

use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use sttlock_benchgen::Profile;
use sttlock_netlist::bench_format;
use sttlock_serve::client;

const TIMEOUT: Duration = Duration::from_secs(120);
/// Distinct (bench, seed) cache keys in play; every request with
/// `i % DISTINCT_SEEDS == k` maps to key `k`, so after the first wave
/// the vast majority of hardens are cache hits.
const DISTINCT_SEEDS: u64 = 4;

/// Requests issued by the post-storm cache-speedup probe (three cold
/// hardens plus five cache-hit repeats); the `/metrics` consistency
/// check accounts for them.
const PROBE_REQUESTS: u64 = 8;

/// Circuit size for the speedup probe. Small storm circuits keep the
/// mixed run fast, but their flow time sits in the network-latency
/// noise floor; the probe needs a circuit where compute dominates.
const PROBE_GATES: usize = 800;

struct Options {
    addr: String,
    clients: usize,
    requests: usize,
    gates: usize,
    mixed: bool,
    assert_speedup: Option<f64>,
    check_metrics: bool,
    shutdown: bool,
}

impl Options {
    fn parse() -> Result<Options, String> {
        let mut opts = Options {
            addr: "127.0.0.1:7979".to_owned(),
            clients: 64,
            requests: 50,
            gates: 60,
            mixed: false,
            assert_speedup: None,
            check_metrics: false,
            shutdown: false,
        };
        let mut args = std::env::args().skip(1);
        while let Some(flag) = args.next() {
            let mut value = |name: &str| {
                args.next()
                    .ok_or_else(|| format!("flag {name} needs a value"))
            };
            match flag.as_str() {
                "--addr" => opts.addr = value("--addr")?,
                "--clients" => opts.clients = parse_num(&value("--clients")?)?,
                "--requests" => opts.requests = parse_num(&value("--requests")?)?,
                "--gates" => opts.gates = parse_num(&value("--gates")?)?,
                "--mode" => {
                    opts.mixed = match value("--mode")?.as_str() {
                        "harden" => false,
                        "mixed" => true,
                        other => return Err(format!("unknown mode `{other}` (harden|mixed)")),
                    }
                }
                "--assert-speedup" => {
                    let v = value("--assert-speedup")?;
                    opts.assert_speedup =
                        Some(v.parse().map_err(|_| format!("bad speedup `{v}`"))?);
                }
                "--check-metrics" => opts.check_metrics = true,
                "--shutdown" => opts.shutdown = true,
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        Ok(opts)
    }
}

fn parse_num(s: &str) -> Result<usize, String> {
    s.parse().map_err(|_| format!("bad number `{s}`"))
}

/// One finished request, as seen from the client side.
struct Sample {
    status: u16,
    harden: bool,
    cached: bool,
}

fn main() -> ExitCode {
    let opts = match Options::parse() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("loadgen: {e}");
            return ExitCode::FAILURE;
        }
    };

    // One fixed bench shared by every request; seeds rotate over a
    // small set so the server's content-hash cache gets exercised.
    let mut rng = StdRng::seed_from_u64(0x10AD);
    let bench =
        bench_format::write(&Profile::custom("load", opts.gates, 4, 6, 4).generate(&mut rng));

    let before = if opts.check_metrics {
        match fetch_metrics(&opts.addr) {
            Ok(m) => Some(m),
            Err(e) => {
                eprintln!("loadgen: cannot read /metrics before the run: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };

    let samples: Mutex<Vec<Sample>> = Mutex::new(Vec::new());
    let failures: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let counter = AtomicUsize::new(0);
    let total = opts.clients * opts.requests;
    let started = Instant::now();

    std::thread::scope(|scope| {
        for _ in 0..opts.clients {
            scope.spawn(|| loop {
                let i = counter.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                let seed = (i as u64) % DISTINCT_SEEDS;
                let attack = opts.mixed && i % 4 == 3;
                let (path, body) = if attack {
                    (
                        "/v1/attack",
                        format!(
                            "{{\"bench\":{},\"algorithm\":\"para\",\"seed\":{seed},\"mode\":\"sens\"}}",
                            json_string(&bench)
                        ),
                    )
                } else {
                    (
                        "/v1/harden",
                        format!(
                            "{{\"bench\":{},\"algorithm\":\"para\",\"seed\":{seed}}}",
                            json_string(&bench)
                        ),
                    )
                };
                // A client thread that panicked mid-push poisons the
                // collection mutexes; the driver still wants every
                // sample it actually gathered, so recover the guard
                // instead of cascading the panic.
                match client::request(&opts.addr, "POST", path, Some(&body), TIMEOUT) {
                    Ok(resp) => samples
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .push(Sample {
                            status: resp.status,
                            harden: !attack,
                            cached: resp.body_text().contains("\"cached\":true"),
                        }),
                    Err(e) => failures
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .push(format!("request {i} ({path}): {e}")),
                }
            });
        }
    });
    let wall = started.elapsed();

    let samples = samples.into_inner().unwrap_or_else(PoisonError::into_inner);
    let failures = failures
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner);
    let mut ok = true;

    if !failures.is_empty() {
        ok = false;
        eprintln!("loadgen: {} connection-level failures:", failures.len());
        for f in failures.iter().take(10) {
            eprintln!("  {f}");
        }
    }

    let mut by_status: Vec<(u16, usize)> = Vec::new();
    for s in &samples {
        match by_status.iter_mut().find(|(code, _)| *code == s.status) {
            Some((_, n)) => *n += 1,
            None => by_status.push((s.status, 1)),
        }
        if !matches!(s.status, 200..=299 | 429 | 504) {
            ok = false;
            eprintln!("loadgen: unexpected status {}", s.status);
        }
    }
    by_status.sort_unstable();

    let hits = samples.iter().filter(|s| s.cached).count();
    println!(
        "loadgen: {} requests over {} clients in {:.2}s ({:.0} req/s), {} cache hits",
        samples.len(),
        opts.clients,
        wall.as_secs_f64(),
        samples.len() as f64 / wall.as_secs_f64().max(1e-9),
        hits,
    );
    for (code, n) in &by_status {
        println!("  status {code}: {n}");
    }

    // Cache-speedup probe, sequential and uncontended: under the storm
    // above, client-observed latency is queue wait, not compute, so the
    // cold/warm comparison must run on an idle server. A fresh seed
    // gives one guaranteed-cold flow, then repeats of the same request
    // are pure cache hits.
    if let Err(e) = probe_speedup(&opts, &mut ok) {
        ok = false;
        eprintln!("loadgen: speedup probe failed: {e}");
    }

    if let Some(before) = before {
        match fetch_metrics(&opts.addr) {
            Ok(after) => {
                let delta = |name: &str| {
                    counter_value(&after, name).saturating_sub(counter_value(&before, name))
                };
                let responses = delta("serve.status.2xx")
                    + delta("serve.status.4xx")
                    + delta("serve.status.5xx")
                    + delta("serve.status.other");
                // Beyond the storm: the before-/metrics response itself
                // and the speedup probe's 1 cold + 5 warm hardens.
                let expected = samples.len() as u64 + 1 + PROBE_REQUESTS;
                if responses != expected {
                    ok = false;
                    eprintln!(
                        "loadgen: /metrics counted {responses} responses, expected {expected}"
                    );
                }
                let hardens = delta("serve.endpoint.harden");
                let sent_hardens =
                    samples.iter().filter(|s| s.harden).count() as u64 + PROBE_REQUESTS;
                if hardens != sent_hardens {
                    ok = false;
                    eprintln!(
                        "loadgen: /metrics counted {hardens} harden requests, driver sent {sent_hardens}"
                    );
                }
                if responses == expected && hardens == sent_hardens {
                    println!(
                        "  /metrics deltas consistent: {responses} responses, {hardens} hardens"
                    );
                }
            }
            Err(e) => {
                ok = false;
                eprintln!("loadgen: cannot read /metrics after the run: {e}");
            }
        }
    }

    if opts.shutdown {
        match client::request(&opts.addr, "POST", "/admin/shutdown", Some(""), TIMEOUT) {
            Ok(resp) if resp.status == 200 => println!("  server draining"),
            Ok(resp) => {
                ok = false;
                eprintln!("loadgen: shutdown returned {}", resp.status);
            }
            Err(e) => {
                ok = false;
                eprintln!("loadgen: shutdown failed: {e}");
            }
        }
    }

    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn probe_speedup(opts: &Options, ok: &mut bool) -> std::io::Result<()> {
    // The probe gets its own circuit, big enough that flow compute
    // dominates the round trip, and wall-clock-derived seeds so the
    // requests stay cold even when the server's cache directory
    // persists across loadgen runs.
    let mut rng = StdRng::seed_from_u64(0x9806E);
    let bench =
        bench_format::write(&Profile::custom("probe", PROBE_GATES, 8, 10, 6).generate(&mut rng));
    let seed_base = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(u64::MAX / 2, |d| d.as_nanos() as u64)
        | (1 << 63); // never collides with the storm's small seeds
    let body_for = |seed: u64| {
        format!(
            "{{\"bench\":{},\"algorithm\":\"para\",\"seed\":{seed}}}",
            json_string(&bench),
        )
    };

    let mut colds = Vec::new();
    for i in 0..3u64 {
        // Seeds travel as JSON numbers (f64): near 2^63 adjacent
        // integers round together, so space the cold keys far apart.
        let body = body_for(seed_base.wrapping_add(i << 32));
        let t0 = Instant::now();
        let cold = client::request(&opts.addr, "POST", "/v1/harden", Some(&body), TIMEOUT)?;
        if cold.status != 200 || !cold.body_text().contains("\"cached\":false") {
            *ok = false;
            eprintln!(
                "loadgen: probe's cold request came back {} (cached body: {})",
                cold.status,
                cold.body_text().contains("\"cached\":true"),
            );
            return Ok(());
        }
        colds.push(t0.elapsed());
    }

    let body = body_for(seed_base.wrapping_add(2 << 32)); // repeat the last cold key
    let mut warms = Vec::new();
    for _ in 0..5 {
        let t0 = Instant::now();
        let warm = client::request(&opts.addr, "POST", "/v1/harden", Some(&body), TIMEOUT)?;
        if warm.status != 200 || !warm.body_text().contains("\"cached\":true") {
            *ok = false;
            eprintln!("loadgen: probe's repeat request was not a cache hit");
            return Ok(());
        }
        warms.push(t0.elapsed());
    }
    colds.sort_unstable();
    warms.sort_unstable();
    let cold_latency = colds[colds.len() / 2];
    let warm_latency = warms[warms.len() / 2];
    let speedup = cold_latency.as_secs_f64() / warm_latency.as_secs_f64().max(1e-9);
    println!(
        "  probe ({PROBE_GATES} gates): cold median {:.2} ms | cache hit median {:.2} ms | speedup {:.1}x",
        cold_latency.as_secs_f64() * 1e3,
        warm_latency.as_secs_f64() * 1e3,
        speedup,
    );
    if let Some(want) = opts.assert_speedup {
        if speedup < want {
            *ok = false;
            eprintln!("loadgen: cache speedup {speedup:.1}x below required {want:.1}x");
        }
    }
    Ok(())
}

fn fetch_metrics(addr: &str) -> std::io::Result<String> {
    client::request(addr, "GET", "/metrics", None, TIMEOUT).map(|r| r.body_text())
}

/// Pulls `sttlock_counter{name="..."} N` out of the text exposition.
fn counter_value(text: &str, name: &str) -> u64 {
    let needle = format!("sttlock_counter{{name=\"{name}\"}} ");
    text.lines()
        .find_map(|line| line.strip_prefix(&needle))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0)
}

/// JSON string literal with the escapes a .bench text needs.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
