//! Persistent harden response cache on the store's record log.
//!
//! The previous cache borrowed the campaign's file-per-key directory;
//! this one keeps the whole response cache in a single checksummed
//! [`RecordLog`] at `<cache_dir>/harden-cache.log`. Every stored
//! response is appended as a [`CacheEntry`]; on boot the log is
//! replayed last-wins into an in-memory map, so a restarted server
//! answers repeat requests from the warm-loaded cache without
//! re-running the flow. Warm entries that hit report
//! `store.cache_warm_hits`.
//!
//! Durability is [`FsyncPolicy::Never`]: losing a cache entry costs a
//! recomputation, never correctness, so the log rides the OS page
//! cache. A torn tail from a crash mid-append is healed by the log's
//! own recovery on the next open. Entries recorded under a different
//! [`HARDEN_KEY_VERSION`] are skipped at load (the keying scheme
//! changed under them); when the replay finds dead weight — stale
//! versions, duplicate keys or a healed tail — the log is compacted
//! back to the live set.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Mutex;

use sttlock_exec::CacheKey;
use sttlock_store::{FsyncPolicy, Record, RecordLog, RecoveryReport};

/// Version salt for the harden response-cache keying. v1 was the
/// pre-exec string-descriptor scheme (`serve.harden|v1|…`); v2 keys the
/// same inputs as typed [`sttlock_exec::KeyBuilder`] fields, so stale
/// v1 entries are invisible rather than misparsed.
pub const HARDEN_KEY_VERSION: u32 = 2;

/// One persisted response: the key version it was recorded under, the
/// 128-bit cache key as hex, and the cached response body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheEntry {
    /// [`HARDEN_KEY_VERSION`] at the time of the store; entries with a
    /// different version are skipped on load.
    pub key_version: u32,
    /// The [`CacheKey`] in its 32-hex-digit rendering.
    pub key_hex: String,
    /// The cached JSON response body.
    pub body: String,
}

// Payload layout: [u32 key_version LE][u16 key_len LE][key][body].
// The frame already carries the total length and CRC, so the body
// needs no terminator.
impl Record for CacheEntry {
    fn encode(&self) -> Vec<u8> {
        let key = self.key_hex.as_bytes();
        let mut out = Vec::with_capacity(6 + key.len() + self.body.len());
        out.extend_from_slice(&self.key_version.to_le_bytes());
        out.extend_from_slice(&(key.len() as u16).to_le_bytes());
        out.extend_from_slice(key);
        out.extend_from_slice(self.body.as_bytes());
        out
    }

    fn decode(bytes: &[u8]) -> Option<CacheEntry> {
        let (header, rest) = (bytes.get(..6)?, &bytes[6..]);
        let key_version = u32::from_le_bytes(header[..4].try_into().ok()?);
        let key_len = u16::from_le_bytes(header[4..6].try_into().ok()?) as usize;
        if rest.len() < key_len {
            return None;
        }
        Some(CacheEntry {
            key_version,
            key_hex: String::from_utf8(rest[..key_len].to_vec()).ok()?,
            body: String::from_utf8(rest[key_len..].to_vec()).ok()?,
        })
    }
}

struct Slot {
    body: String,
    /// True for entries replayed from disk at boot; a hit on one is a
    /// cross-restart hit and counts `store.cache_warm_hits`.
    warm: bool,
}

struct Inner {
    log: RecordLog<CacheEntry>,
    map: HashMap<String, Slot>,
}

/// The serve layer's persistent response cache. Lookups and stores go
/// through the in-memory map; stores also append to the log so the map
/// survives a restart.
pub struct HardenCache {
    inner: Mutex<Inner>,
    recovery: RecoveryReport,
}

impl HardenCache {
    /// Opens (creating if needed) the cache log under `dir` and
    /// warm-loads its entries. Returns `None` if the log cannot be
    /// opened — the server then runs uncached rather than failing.
    pub fn open(dir: PathBuf) -> Option<HardenCache> {
        let path = dir.join("harden-cache.log");
        let opened = RecordLog::<CacheEntry>::open(&path, FsyncPolicy::Never).ok()?;
        let entries = opened.records.len();
        let mut log = opened.log;
        let mut map: HashMap<String, Slot> = HashMap::new();
        let mut stale = 0usize;
        for entry in opened.records {
            if entry.key_version != HARDEN_KEY_VERSION {
                stale += 1;
                continue;
            }
            map.insert(
                entry.key_hex,
                Slot {
                    body: entry.body,
                    warm: true,
                },
            );
        }
        sttlock_obs::counter("store.cache_warm_loaded", map.len() as u64);
        if stale > 0 {
            sttlock_obs::counter("store.cache_stale_entries", stale as u64);
        }
        // Replay found dead weight (stale versions, overwritten keys,
        // undecodable payloads): rewrite the log to the live set so it
        // stays proportional to the cache, not its history.
        if map.len() < entries || opened.recovery.undecodable > 0 {
            let live: Vec<CacheEntry> = map
                .iter()
                .map(|(key_hex, slot)| CacheEntry {
                    key_version: HARDEN_KEY_VERSION,
                    key_hex: key_hex.clone(),
                    body: slot.body.clone(),
                })
                .collect();
            let _ = log.compact(&live);
        }
        Some(HardenCache {
            inner: Mutex::new(Inner { log, map }),
            recovery: opened.recovery,
        })
    }

    /// What opening the log recovered (clean for a graceful shutdown).
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Looks up a cached response body. A hit on an entry warm-loaded
    /// from a previous process life reports `store.cache_warm_hits`.
    pub fn lookup_text(&self, key: CacheKey) -> Option<String> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let slot = inner.map.get(&key.hex())?;
        if slot.warm {
            sttlock_obs::counter("store.cache_warm_hits", 1);
        }
        Some(slot.body.clone())
    }

    /// Stores a response body under `key`: into the map immediately,
    /// and appended to the log for the next process life. Append
    /// failures are swallowed — the cache is an accelerator, never a
    /// correctness dependency.
    pub fn store_text(&self, key: CacheKey, text: &str) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let _ = inner.log.append(&CacheEntry {
            key_version: HARDEN_KEY_VERSION,
            key_hex: key.hex(),
            body: text.to_owned(),
        });
        inner.map.insert(
            key.hex(),
            Slot {
                body: text.to_owned(),
                warm: false,
            },
        );
    }

    /// Best-effort fsync of the log, called on graceful shutdown so a
    /// clean exit leaves a durable cache even under `FsyncPolicy::Never`.
    pub fn flush(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let _ = inner.log.sync();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sttlock_exec::KeyBuilder;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("sttlock-serve-cache-tests")
            .join(format!("{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn key(seed: u64) -> CacheKey {
        KeyBuilder::new(HARDEN_KEY_VERSION)
            .field("seed", &seed)
            .finish()
    }

    #[test]
    fn entries_round_trip_through_the_record_codec() {
        let entry = CacheEntry {
            key_version: HARDEN_KEY_VERSION,
            key_hex: key(1).hex(),
            body: "{\"cached\":false}".to_owned(),
        };
        assert_eq!(CacheEntry::decode(&entry.encode()), Some(entry));
        assert_eq!(CacheEntry::decode(&[1, 2, 3]), None); // short header
    }

    #[test]
    fn stores_survive_a_reopen_as_warm_entries() {
        let dir = tmp_dir("warm");
        {
            let cache = HardenCache::open(dir.clone()).unwrap();
            cache.store_text(key(1), "body-1");
            cache.store_text(key(2), "body-2");
            // Same-life hits are not warm hits.
            assert_eq!(cache.lookup_text(key(1)).as_deref(), Some("body-1"));
        }
        let cache = HardenCache::open(dir).unwrap();
        assert!(cache.recovery().is_clean());
        assert_eq!(cache.lookup_text(key(1)).as_deref(), Some("body-1"));
        assert_eq!(cache.lookup_text(key(2)).as_deref(), Some("body-2"));
        assert_eq!(cache.lookup_text(key(3)), None);
    }

    #[test]
    fn version_skewed_entries_are_invisible_and_compacted_away() {
        let dir = tmp_dir("skew");
        let stale_key = key(7);
        {
            let cache = HardenCache::open(dir.clone()).unwrap();
            let mut inner = cache.inner.lock().unwrap();
            inner
                .log
                .append(&CacheEntry {
                    key_version: HARDEN_KEY_VERSION + 1,
                    key_hex: stale_key.hex(),
                    body: "from-the-future".to_owned(),
                })
                .unwrap();
        }
        let dir2 = dir.clone();
        {
            let cache = HardenCache::open(dir).unwrap();
            assert_eq!(cache.lookup_text(stale_key), None);
            cache.store_text(key(8), "live");
        }
        // The stale entry was compacted out, not just hidden: the
        // reopened log holds only the live record.
        let (entries, _) =
            sttlock_store::read_all::<CacheEntry>(&dir2.join("harden-cache.log")).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].body, "live");
    }

    #[test]
    fn overwrites_replay_last_wins_and_compact_on_boot() {
        let dir = tmp_dir("dedup");
        {
            let cache = HardenCache::open(dir.clone()).unwrap();
            cache.store_text(key(5), "old");
            cache.store_text(key(5), "new");
        }
        let path = dir.join("harden-cache.log");
        let before = std::fs::metadata(&path).unwrap().len();
        {
            let cache = HardenCache::open(dir.clone()).unwrap();
            assert_eq!(cache.lookup_text(key(5)).as_deref(), Some("new"));
        }
        assert!(
            std::fs::metadata(&path).unwrap().len() < before,
            "boot-time compaction should drop the overwritten entry"
        );
        // And the compacted log still replays correctly.
        let cache = HardenCache::open(dir).unwrap();
        assert_eq!(cache.lookup_text(key(5)).as_deref(), Some("new"));
    }

    #[test]
    fn a_torn_tail_heals_and_the_rest_of_the_cache_survives() {
        let dir = tmp_dir("torn");
        {
            let cache = HardenCache::open(dir.clone()).unwrap();
            cache.store_text(key(1), "kept");
            cache.flush();
        }
        let path = dir.join("harden-cache.log");
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[sttlock_store::FRAME_VERSION, 200, 0]);
        std::fs::write(&path, &bytes).unwrap();

        let cache = HardenCache::open(dir).unwrap();
        assert!(!cache.recovery().is_clean());
        assert!(cache.recovery().dropped_bytes > 0);
        assert_eq!(cache.lookup_text(key(1)).as_deref(), Some("kept"));
    }
}
