//! Minimal blocking HTTP/1.1 client for the load generator and the
//! integration tests.
//!
//! The server always replies `Connection: close`, so the client reads
//! to EOF and splits head from body at the first blank line. No TLS,
//! no redirects, no keep-alive — exactly enough to talk to
//! `sttlock-serve` without external dependencies.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A parsed response: status code, lower-cased headers, raw body.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Numeric status code from the status line.
    pub status: u16,
    /// Header `(name, value)` pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The response body, verbatim.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        let want = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == want)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8, lossily.
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Sends one request and reads the full response. `timeout` bounds
/// both the connect and each read/write syscall. A connection the
/// server drops before sending a status line comes back as an
/// [`io::Error`] — the load generator counts those as hard failures.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> io::Result<HttpResponse> {
    let mut stream = connect(addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.set_nodelay(true)?;

    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

fn connect(addr: &str, timeout: Duration) -> io::Result<TcpStream> {
    let resolved = addr.parse().map_err(|e| {
        io::Error::new(io::ErrorKind::InvalidInput, format!("bad addr {addr}: {e}"))
    })?;
    TcpStream::connect_timeout(&resolved, timeout)
}

fn parse_response(raw: &[u8]) -> io::Result<HttpResponse> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_owned());
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("no header/body separator in response"))?;
    let head = std::str::from_utf8(&raw[..split]).map_err(|_| bad("non-UTF-8 response head"))?;
    let body = raw[split + 4..].to_vec();

    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| bad("empty response"))?;
    // "HTTP/1.1 200 OK" — the code is the second token.
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let headers = lines
        .filter_map(|line| {
            let (name, value) = line.split_once(':')?;
            Some((name.trim().to_ascii_lowercase(), value.trim().to_owned()))
        })
        .collect();
    Ok(HttpResponse {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_plain_response() {
        let raw =
            b"HTTP/1.1 404 Not Found\r\nContent-Type: text/plain\r\nContent-Length: 4\r\n\r\ngone";
        let r = parse_response(raw).unwrap();
        assert_eq!(r.status, 404);
        assert_eq!(r.header("content-type"), Some("text/plain"));
        assert_eq!(r.header("Content-Type"), Some("text/plain"));
        assert_eq!(r.body_text(), "gone");
    }

    #[test]
    fn torn_responses_are_io_errors_not_panics() {
        assert!(parse_response(b"").is_err());
        assert!(parse_response(b"HTTP/1.1 200").is_err());
        assert!(parse_response(b"garbage\r\n\r\n").is_err());
    }
}
