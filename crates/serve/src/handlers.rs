//! Endpoint routing and the harden/attack request handlers.
//!
//! Handlers are plain functions from a parsed [`Request`] (plus the
//! request's deadline [`Budget`]) to a [`Response`]; the worker wraps
//! the whole thing in `catch_unwind`, so a handler may panic without
//! taking the pool down. Status mapping:
//!
//! * `400` — unparseable JSON, missing/unknown fields, bad netlist;
//! * `422` — well-formed input the flow/attack could not process;
//! * `504` — the per-request budget tripped; the body carries
//!   whatever partial metrics the stage had produced;
//! * `500` — handler panic (from the worker's unwind guard).

use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use sttlock_attack::sat_attack::{self, SatAttackConfig, SequentialAttackConfig};
use sttlock_attack::sensitization::{self, SensitizationConfig};
use sttlock_attack::AttackError;
use sttlock_campaign::json::Json;
use sttlock_core::{Flow, FlowError, SelectionAlgorithm};
use sttlock_exec::{Budget, KeyBuilder};
use sttlock_netlist::{bench_format, Netlist};
use sttlock_techlib::Library;

use crate::cache::HARDEN_KEY_VERSION;
use crate::http::{Request, Response};
use crate::Shared;

/// Routes one request. Unknown paths are 404; known paths with the
/// wrong method are 405.
pub(crate) fn route(shared: &Shared, req: &Request, budget: &Budget) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => healthz(shared),
        ("GET", "/metrics") => metrics(shared),
        ("POST", "/v1/harden") => {
            sttlock_obs::counter("serve.endpoint.harden", 1);
            harden(shared, req, budget)
        }
        ("POST", "/v1/attack") => {
            sttlock_obs::counter("serve.endpoint.attack", 1);
            attack(req, budget)
        }
        ("POST", "/admin/shutdown") => {
            shared.stop.cancel();
            Response::json(200, "{\"draining\":true}".to_owned())
        }
        ("POST", "/debug/sleep") if shared.debug_endpoints => debug_sleep(req, budget),
        ("POST", "/debug/panic") if shared.debug_endpoints => {
            panic!("injected handler panic")
        }
        (_, "/healthz" | "/metrics" | "/v1/harden" | "/v1/attack" | "/admin/shutdown") => {
            Response::error(405, &format!("method {} not allowed here", req.method))
        }
        _ => Response::error(404, &format!("no such endpoint: {}", req.path)),
    }
}

fn healthz(shared: &Shared) -> Response {
    let body = Json::obj([
        ("status", Json::from("ok")),
        (
            "uptime_ms",
            Json::from(shared.started.elapsed().as_millis() as u64),
        ),
        ("workers", Json::from(shared.workers)),
        ("queue_depth", Json::from(shared.queue_depth)),
        (
            "in_flight",
            Json::from(shared.metrics.gauge_value("serve.in_flight").max(0) as u64),
        ),
        (
            "queued",
            Json::from(shared.metrics.gauge_value("serve.queued").max(0) as u64),
        ),
        ("cache", Json::from(shared.cache.is_some())),
    ]);
    Response::json(200, body.to_string())
}

fn metrics(shared: &Shared) -> Response {
    Response::text(200, shared.metrics.render_text())
}

/// Parsed common fields of a harden/attack request body. The netlist
/// itself is parsed lazily: a cache-hit harden never needs it, and on
/// large circuits the `.bench` parse is the dominant warm-path cost.
struct FlowRequest {
    bench: String,
    algorithm: SelectionAlgorithm,
    seed: u64,
    body: Json,
}

impl FlowRequest {
    fn netlist(&self) -> Result<Netlist, Response> {
        bench_format::parse(&self.bench, "request")
            .map_err(|e| Response::error(400, &format!("bench netlist rejected: {e}")))
    }
}

fn parse_flow_request(req: &Request) -> Result<FlowRequest, Response> {
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| Response::error(400, "body is not valid UTF-8"))?;
    let body =
        Json::parse(text).map_err(|e| Response::error(400, &format!("body is not JSON: {e}")))?;
    let bench = body
        .get("bench")
        .and_then(Json::as_str)
        .ok_or_else(|| Response::error(400, "missing required string field `bench`"))?
        .to_owned();
    let algorithm: SelectionAlgorithm = body
        .get("algorithm")
        .and_then(Json::as_str)
        .unwrap_or("para")
        .parse()
        .map_err(|e: String| Response::error(400, &e))?;
    let seed = body.get("seed").and_then(Json::as_u64).unwrap_or(42);
    Ok(FlowRequest {
        bench,
        algorithm,
        seed,
        body,
    })
}

/// `POST /v1/harden` — run the selection/replacement flow and return
/// the bitstream plus overhead and security metrics. Idempotent per
/// (bench, algorithm, seed): responses are cached in the persistent
/// [`crate::cache::HardenCache`], so repeats skip the flow entirely —
/// including repeats arriving after a server restart, which hit the
/// warm-loaded log.
fn harden(shared: &Shared, req: &Request, budget: &Budget) -> Response {
    let start = Instant::now();
    let fr = match parse_flow_request(req) {
        Ok(fr) => fr,
        Err(resp) => return resp,
    };

    let key = KeyBuilder::new(HARDEN_KEY_VERSION)
        .field("endpoint", &"harden")
        .field("algorithm", &fr.algorithm)
        .field("seed", &fr.seed)
        .text(&fr.bench)
        .finish();
    if let Some(cache) = &shared.cache {
        if let Some(hit) = cache.lookup_text(key) {
            if let Ok(Json::Obj(mut m)) = Json::parse(&hit) {
                sttlock_obs::counter("serve.harden.cache_hit", 1);
                m.insert("cached".to_owned(), Json::Bool(true));
                m.insert(
                    "wall_ms".to_owned(),
                    Json::from(start.elapsed().as_millis() as u64),
                );
                return Response::json(200, Json::Obj(m).to_string());
            }
        }
        sttlock_obs::counter("serve.harden.cache_miss", 1);
    }

    let netlist = match fr.netlist() {
        Ok(n) => n,
        Err(resp) => return resp,
    };
    let base = Arc::new(netlist);
    let flow = Flow::new(Library::predictive_90nm());
    let outcome = match flow.run_budgeted(&base, fr.algorithm, fr.seed, budget) {
        Ok(o) => o,
        Err(FlowError::Budget(_)) => {
            sttlock_obs::counter("serve.deadline_missed", 1);
            return Response::error(
                504,
                "deadline exceeded during harden; the flow was cancelled",
            );
        }
        Err(e) => return Response::error(422, &format!("flow failed: {e}")),
    };
    let report = &outcome.report;
    let metrics = Json::obj([
        ("perf_pct", Json::from(report.performance_degradation_pct)),
        ("power_pct", Json::from(report.power_overhead_pct)),
        ("leakage_pct", Json::from(report.leakage_overhead_pct)),
        ("area_pct", Json::from(report.area_overhead_pct)),
        (
            "selection_ms",
            Json::from(report.selection_time.as_secs_f64() * 1e3),
        ),
    ]);
    let security = Json::obj([
        ("n_indep_log10", Json::from(report.security.n_indep.log10())),
        ("n_dep_log10", Json::from(report.security.n_dep.log10())),
        ("n_bf_log10", Json::from(report.security.n_bf.log10())),
    ]);
    let bitstream = Json::Arr(
        outcome
            .bitstream
            .iter()
            .map(|(id, table)| {
                Json::obj([
                    ("lut", Json::from(outcome.hybrid.node_name(*id))),
                    ("inputs", Json::from(table.inputs())),
                    ("mask", Json::from(format!("{:#x}", table.bits()).as_str())),
                ])
            })
            .collect(),
    );
    let body = Json::obj([
        ("algorithm", Json::from(fr.algorithm.to_string().as_str())),
        ("seed", Json::from(fr.seed)),
        ("gates", Json::from(base.gate_count())),
        ("stt_count", Json::from(report.stt_count)),
        ("metrics", metrics.clone()),
        ("security", security),
        ("bitstream", bitstream),
        ("cached", Json::Bool(false)),
        ("wall_ms", Json::from(start.elapsed().as_millis() as u64)),
    ]);
    // Cache before the deadline check: a request that computed the
    // answer but blew its budget still pays forward — the idempotent
    // retry becomes a cache hit.
    if let Some(cache) = &shared.cache {
        cache.store_text(key, &body.to_string());
    }
    if budget.exhausted() {
        sttlock_obs::counter("serve.deadline_missed", 1);
        let partial = Json::obj([
            (
                "error",
                Json::from("deadline exceeded during harden; partial metrics attached"),
            ),
            ("partial", metrics),
        ]);
        return Response::json(504, partial.to_string());
    }
    Response::json(200, body.to_string())
}

/// `POST /v1/attack` — harden the submitted netlist, then attack the
/// resulting hybrid with the requested mode. The request budget is the
/// parent of the sensitization attack's own budget (min-of-deadlines),
/// so a long attack comes back as 504 *with* the partial outcome it
/// reached (test clocks, SAT queries, resolution ratio) rather than an
/// empty failure.
fn attack(req: &Request, budget: &Budget) -> Response {
    let start = Instant::now();
    let fr = match parse_flow_request(req) {
        Ok(fr) => fr,
        Err(resp) => return resp,
    };
    let mode = fr
        .body
        .get("mode")
        .and_then(Json::as_str)
        .unwrap_or("sens")
        .to_owned();
    let max_dips = fr
        .body
        .get("max_dips")
        .and_then(Json::as_u64)
        .unwrap_or(10_000) as usize;
    let frames = fr.body.get("frames").and_then(Json::as_u64).unwrap_or(3) as usize;

    let flow = Flow::new(Library::predictive_90nm());
    let netlist = match fr.netlist() {
        Ok(n) => n,
        Err(resp) => return resp,
    };
    let outcome = match flow.run_budgeted(&Arc::new(netlist), fr.algorithm, fr.seed, budget) {
        Ok(o) => o,
        Err(FlowError::Budget(_)) => {
            sttlock_obs::counter("serve.deadline_missed", 1);
            return Response::error(504, "deadline exceeded while hardening the attack target");
        }
        Err(e) => return Response::error(422, &format!("flow failed: {e}")),
    };
    let hybrid = &outcome.hybrid;
    let foundry = hybrid.redact().0;
    if budget.exhausted() {
        sttlock_obs::counter("serve.deadline_missed", 1);
        return Response::error(504, "deadline exceeded before the attack started");
    }

    let wall_ms = || Json::from(start.elapsed().as_millis() as u64);
    match mode.as_str() {
        "sens" => {
            // The attack derives its own limits as a child of the
            // request budget, so the request deadline needs no manual
            // translation into `max_wall_ms`.
            let cfg = SensitizationConfig::default();
            let mut rng = StdRng::seed_from_u64(fr.seed ^ 0xA77A_C4ED);
            match sensitization::run_with_budget(&foundry, hybrid, &cfg, budget, &mut rng) {
                Ok(out) => Response::json(
                    200,
                    Json::obj([
                        ("mode", Json::from("sens")),
                        ("broke", Json::Bool(out.is_full_break())),
                        ("resolution_ratio", Json::from(out.resolution_ratio())),
                        ("test_clocks", Json::from(out.test_clocks)),
                        ("sat_queries", Json::from(out.sat_queries)),
                        ("wall_ms", wall_ms()),
                    ])
                    .to_string(),
                ),
                Err(AttackError::TimedOut { partial }) => {
                    sttlock_obs::counter("serve.deadline_missed", 1);
                    Response::json(
                        504,
                        Json::obj([
                            (
                                "error",
                                Json::from("attack budget exhausted; partial outcome attached"),
                            ),
                            (
                                "partial",
                                Json::obj([
                                    ("resolution_ratio", Json::from(partial.resolution_ratio())),
                                    ("test_clocks", Json::from(partial.test_clocks)),
                                    ("sat_queries", Json::from(partial.sat_queries)),
                                ]),
                            ),
                            ("wall_ms", wall_ms()),
                        ])
                        .to_string(),
                    )
                }
                Err(e) => Response::error(422, &format!("attack failed: {e}")),
            }
        }
        "sat" => match sat_attack::run(&foundry, hybrid, &SatAttackConfig { max_dips }) {
            Ok(out) => Response::json(
                200,
                Json::obj([
                    ("mode", Json::from("sat")),
                    ("broke", Json::Bool(out.succeeded())),
                    ("dips", Json::from(out.dips)),
                    ("conflicts", Json::from(out.solver_stats.conflicts)),
                    ("decisions", Json::from(out.solver_stats.decisions)),
                    ("wall_ms", wall_ms()),
                ])
                .to_string(),
            ),
            Err(e) => Response::error(422, &format!("attack failed: {e}")),
        },
        "seq" => {
            let cfg = SequentialAttackConfig { frames, max_dips };
            match sat_attack::run_sequential(&foundry, hybrid, &cfg) {
                Ok(out) => Response::json(
                    200,
                    Json::obj([
                        ("mode", Json::from("seq")),
                        ("broke", Json::Bool(out.bitstream.is_some())),
                        ("dips", Json::from(out.dips)),
                        ("frames", Json::from(out.frames)),
                        ("conflicts", Json::from(out.solver_stats.conflicts)),
                        ("wall_ms", wall_ms()),
                    ])
                    .to_string(),
                ),
                Err(e) => Response::error(422, &format!("attack failed: {e}")),
            }
        }
        other => Response::error(
            400,
            &format!("unknown attack mode `{other}` (sens|sat|seq)"),
        ),
    }
}

/// `POST /debug/sleep` `{"ms": n}` — occupy a worker for `n` ms via a
/// budget-aware sleep, so the request deadline interrupts it. Tests use
/// it to fill the pool (429), overrun budgets (504) and check shutdown
/// draining, without depending on flow timings.
fn debug_sleep(req: &Request, budget: &Budget) -> Response {
    let ms = std::str::from_utf8(&req.body)
        .ok()
        .and_then(|t| Json::parse(t).ok())
        .and_then(|b| b.get("ms").and_then(Json::as_u64))
        .unwrap_or(0);
    let start = Instant::now();
    if !budget.sleep(Duration::from_millis(ms)) {
        sttlock_obs::counter("serve.deadline_missed", 1);
        return Response::json(
            504,
            Json::obj([
                ("error", Json::from("deadline exceeded while sleeping")),
                ("slept_ms", Json::from(start.elapsed().as_millis() as u64)),
            ])
            .to_string(),
        );
    }
    Response::json(
        200,
        Json::obj([("slept_ms", Json::from(start.elapsed().as_millis() as u64))]).to_string(),
    )
}
