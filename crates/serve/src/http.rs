//! Minimal HTTP/1.1 request reader and response writer.
//!
//! Hand-rolled over [`BufRead`] because the build environment is fully
//! offline (the workspace vendors every dependency), and the service
//! needs only the subset a JSON API uses: request line + headers +
//! `Content-Length` body, one request per connection, `Connection:
//! close` on every response.
//!
//! The reader is hardened the same way the `.bench` readers are: every
//! malformed, truncated, oversized or torn input must come back as a
//! typed [`HttpError`] mapping to a well-formed 4xx response — never a
//! panic. `tests/http_fuzz.rs` byte-mangles valid requests to hold the
//! parser to that, mirroring the bench-format fuzz.

use std::io::BufRead;

/// Parse limits; defaults sized for JSON API traffic with room for a
/// large bench-format netlist in the body.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Longest accepted request line, bytes.
    pub max_request_line: usize,
    /// Maximum number of headers.
    pub max_headers: usize,
    /// Longest accepted single header line, bytes.
    pub max_header_line: usize,
    /// Largest accepted `Content-Length` body, bytes.
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_request_line: 8 * 1024,
            max_headers: 64,
            max_header_line: 8 * 1024,
            max_body_bytes: 4 * 1024 * 1024,
        }
    }
}

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Method token, verbatim (e.g. `POST`).
    pub method: String,
    /// Request target, verbatim (e.g. `/v1/harden`).
    pub path: String,
    /// Header name/value pairs in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Raw body (`Content-Length` bytes).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Every way reading a request can fail. Each maps to one well-formed
/// 4xx via [`HttpError::response`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The peer closed before sending a single byte — no response owed.
    ConnectionClosed,
    /// Read failure mid-request (timeout, reset) → 408.
    Io(String),
    /// Malformed request line → 400.
    BadRequestLine(String),
    /// Unsupported protocol version (only HTTP/1.0 and 1.1) → 400.
    BadVersion(String),
    /// Request line over [`Limits::max_request_line`] → 414.
    RequestLineTooLong,
    /// Malformed header line → 400.
    BadHeader(String),
    /// Header line over [`Limits::max_header_line`], or more than
    /// [`Limits::max_headers`] of them → 431.
    HeadersTooLarge,
    /// Unparseable `Content-Length` → 400.
    BadContentLength(String),
    /// `Content-Length` over [`Limits::max_body_bytes`] → 413.
    BodyTooLarge(usize),
    /// Connection closed before `Content-Length` bytes arrived → 400.
    TruncatedBody {
        /// Bytes promised by `Content-Length`.
        expected: usize,
        /// Bytes actually received.
        got: usize,
    },
}

impl HttpError {
    /// The status code this error maps to (4xx for every variant that
    /// owes a response).
    pub fn status(&self) -> u16 {
        match self {
            HttpError::ConnectionClosed => 400, // not actually sent
            HttpError::Io(_) => 408,
            HttpError::BadRequestLine(_)
            | HttpError::BadVersion(_)
            | HttpError::BadHeader(_)
            | HttpError::BadContentLength(_)
            | HttpError::TruncatedBody { .. } => 400,
            HttpError::RequestLineTooLong => 414,
            HttpError::HeadersTooLarge => 431,
            HttpError::BodyTooLarge(_) => 413,
        }
    }

    /// The response to write for this error, or `None` when the peer
    /// hung up before sending anything (nothing is owed).
    pub fn response(&self) -> Option<Response> {
        if *self == HttpError::ConnectionClosed {
            return None;
        }
        let detail = match self {
            HttpError::ConnectionClosed => unreachable!("handled above"),
            HttpError::Io(e) => format!("read failed: {e}"),
            HttpError::BadRequestLine(l) => format!("malformed request line: {l}"),
            HttpError::BadVersion(v) => format!("unsupported protocol version: {v}"),
            HttpError::RequestLineTooLong => "request line too long".to_owned(),
            HttpError::BadHeader(h) => format!("malformed header: {h}"),
            HttpError::HeadersTooLarge => "headers too large".to_owned(),
            HttpError::BadContentLength(v) => format!("bad content-length: {v}"),
            HttpError::BodyTooLarge(n) => format!("body of {n} bytes exceeds the limit"),
            HttpError::TruncatedBody { expected, got } => {
                format!("truncated body: expected {expected} bytes, got {got}")
            }
        };
        Some(Response::error(self.status(), &detail))
    }
}

/// Reads one line terminated by `\n`, rejecting lines over `max` bytes.
/// The returned line has `\r\n`/`\n` stripped. `Ok(None)` means clean
/// EOF before any byte of the line.
fn read_line(
    reader: &mut impl BufRead,
    max: usize,
    over_limit: HttpError,
) -> Result<Option<Vec<u8>>, HttpError> {
    let mut line = Vec::new();
    loop {
        let buf = match reader.fill_buf() {
            Ok(b) => b,
            Err(e) => return Err(HttpError::Io(e.to_string())),
        };
        if buf.is_empty() {
            // EOF. A partial line is torn input, not a clean close.
            return if line.is_empty() {
                Ok(None)
            } else {
                Err(HttpError::Io("connection closed mid-line".to_owned()))
            };
        }
        let (consumed, done) = match buf.iter().position(|&b| b == b'\n') {
            Some(nl) => {
                line.extend_from_slice(&buf[..nl]);
                (nl + 1, true)
            }
            None => {
                line.extend_from_slice(buf);
                (buf.len(), false)
            }
        };
        reader.consume(consumed);
        if line.len() > max {
            return Err(over_limit);
        }
        if done {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return Ok(Some(line));
        }
    }
}

fn ascii_line(bytes: Vec<u8>, on_bad: impl Fn(String) -> HttpError) -> Result<String, HttpError> {
    match String::from_utf8(bytes) {
        Ok(s) => Ok(s),
        Err(e) => Err(on_bad(format!(
            "{} (not valid UTF-8)",
            String::from_utf8_lossy(e.as_bytes())
        ))),
    }
}

/// Reads and validates one request. Enforces every limit in `limits`;
/// any bytes following the body (pipelined requests, trailing garbage)
/// are left unread in `reader`.
pub fn read_request(reader: &mut impl BufRead, limits: &Limits) -> Result<Request, HttpError> {
    let line = read_request_line(reader, limits)?;
    let (method, path, version) = split_request_line(&line)?;
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::BadVersion(version.to_owned()));
    }

    let mut headers = Vec::new();
    loop {
        let bytes = read_line(reader, limits.max_header_line, HttpError::HeadersTooLarge)?
            .ok_or_else(|| HttpError::Io("connection closed inside headers".to_owned()))?;
        if bytes.is_empty() {
            break;
        }
        if headers.len() >= limits.max_headers {
            return Err(HttpError::HeadersTooLarge);
        }
        let text = ascii_line(bytes, HttpError::BadHeader)?;
        let (name, value) = text
            .split_once(':')
            .ok_or_else(|| HttpError::BadHeader(text.clone()))?;
        let name = name.trim();
        if name.is_empty() || name.contains(char::is_whitespace) {
            return Err(HttpError::BadHeader(text.clone()));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_owned()));
    }

    let request = Request {
        method: method.to_owned(),
        path: path.to_owned(),
        headers,
        body: Vec::new(),
    };
    let body = read_body(reader, &request, limits)?;
    Ok(Request { body, ..request })
}

fn read_request_line(reader: &mut impl BufRead, limits: &Limits) -> Result<String, HttpError> {
    let bytes = read_line(
        reader,
        limits.max_request_line,
        HttpError::RequestLineTooLong,
    )?
    .ok_or(HttpError::ConnectionClosed)?;
    ascii_line(bytes, HttpError::BadRequestLine)
}

fn split_request_line(line: &str) -> Result<(&str, &str, &str), HttpError> {
    let mut parts = line.split(' ').filter(|p| !p.is_empty());
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) => (m, p, v),
        _ => return Err(HttpError::BadRequestLine(line.to_owned())),
    };
    if !method
        .chars()
        .all(|c| c.is_ascii_alphabetic() && c.is_ascii_uppercase())
    {
        return Err(HttpError::BadRequestLine(line.to_owned()));
    }
    Ok((method, path, version))
}

fn read_body(
    reader: &mut impl BufRead,
    request: &Request,
    limits: &Limits,
) -> Result<Vec<u8>, HttpError> {
    if request
        .header("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return Err(HttpError::BadHeader(
            "transfer-encoding: only identity is supported".to_owned(),
        ));
    }
    let Some(value) = request.header("content-length") else {
        return Ok(Vec::new());
    };
    let length: usize = value
        .parse()
        .map_err(|_| HttpError::BadContentLength(value.to_owned()))?;
    if length > limits.max_body_bytes {
        return Err(HttpError::BodyTooLarge(length));
    }
    let mut body = vec![0u8; length];
    let mut got = 0usize;
    while got < length {
        match reader.read(&mut body[got..]) {
            Ok(0) => {
                return Err(HttpError::TruncatedBody {
                    expected: length,
                    got,
                })
            }
            Ok(n) => got += n,
            Err(e) => return Err(HttpError::Io(e.to_string())),
        }
    }
    Ok(body)
}

/// A response ready to serialize. Always `Connection: close`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Body bytes.
    pub body: Vec<u8>,
    /// `Retry-After` header value in seconds, emitted when set (429/503
    /// backpressure responses tell well-behaved clients when to retry).
    pub retry_after: Option<u64>,
}

impl Response {
    /// A JSON response from an already-rendered body.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
            retry_after: None,
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into_bytes(),
            retry_after: None,
        }
    }

    /// A JSON error envelope: `{"error": "..."}`.
    pub fn error(status: u16, detail: &str) -> Response {
        Response::json(status, format!("{{\"error\":\"{}\"}}", json_escape(detail)))
    }

    /// Attaches a `Retry-After: secs` header.
    pub fn with_retry_after(mut self, secs: u64) -> Response {
        self.retry_after = Some(secs);
        self
    }

    /// Serializes status line, headers and body.
    pub fn to_bytes(&self) -> Vec<u8> {
        let retry = match self.retry_after {
            Some(secs) => format!("Retry-After: {secs}\r\n"),
            None => String::new(),
        };
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n{}Connection: close\r\n\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len(),
            retry,
        );
        let mut out = head.into_bytes();
        out.extend_from_slice(&self.body);
        out
    }
}

/// Reason phrase for the status codes this service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Content Too Large",
        414 => "URI Too Long",
        422 => "Unprocessable Content",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut &bytes[..], &Limits::default())
    }

    #[test]
    fn a_post_with_a_body_round_trips() {
        let raw = b"POST /v1/harden HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd";
        let req = parse(raw).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/harden");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"), "case-insensitive");
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn bare_lf_line_endings_are_accepted() {
        let req = parse(b"GET /healthz HTTP/1.1\nHost: x\n\n").unwrap();
        assert_eq!(req.path, "/healthz");
    }

    #[test]
    fn pipelined_requests_parse_one_at_a_time() {
        let raw: &[u8] =
            b"POST /a HTTP/1.1\r\nContent-Length: 2\r\n\r\nhiGET /b HTTP/1.1\r\n\r\ntrailing-garbage";
        let mut reader = raw;
        let first = read_request(&mut reader, &Limits::default()).unwrap();
        assert_eq!((first.path.as_str(), &first.body[..]), ("/a", &b"hi"[..]));
        let second = read_request(&mut reader, &Limits::default()).unwrap();
        assert_eq!(second.path, "/b");
        // The trailing garbage is the next "request": malformed, 4xx.
        let err = read_request(&mut reader, &Limits::default()).unwrap_err();
        assert_eq!(err.status() / 100, 4);
    }

    #[test]
    fn each_malformation_maps_to_its_4xx() {
        let limits = Limits {
            max_request_line: 64,
            max_headers: 4,
            max_header_line: 64,
            max_body_bytes: 128,
        };
        let cases: Vec<(Vec<u8>, u16)> = vec![
            (b"not a request line\r\n\r\n".to_vec(), 400),
            (b"GET /x SPDY/3\r\n\r\n".to_vec(), 400),
            (b"get /x HTTP/1.1\r\n\r\n".to_vec(), 400),
            (
                format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(100)).into_bytes(),
                414,
            ),
            (b"GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n".to_vec(), 400),
            (
                format!("GET /x HTTP/1.1\r\nh: {}\r\n\r\n", "v".repeat(100)).into_bytes(),
                431,
            ),
            (
                b"GET /x HTTP/1.1\r\na:1\r\nb:2\r\nc:3\r\nd:4\r\ne:5\r\n\r\n".to_vec(),
                431,
            ),
            (
                b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n".to_vec(),
                400,
            ),
            (
                b"POST /x HTTP/1.1\r\nContent-Length: 4096\r\n\r\n".to_vec(),
                413,
            ),
            (
                b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort".to_vec(),
                400,
            ),
            (
                b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec(),
                400,
            ),
        ];
        for (raw, expected) in cases {
            let err = read_request(&mut &raw[..], &limits).unwrap_err();
            assert_eq!(
                err.status(),
                expected,
                "input {:?} -> {err:?}",
                String::from_utf8_lossy(&raw)
            );
            let resp = err.response().expect("every malformation owes a response");
            assert_eq!(resp.status, expected);
        }
    }

    #[test]
    fn empty_input_is_a_clean_close_with_no_response() {
        let err = parse(b"").unwrap_err();
        assert_eq!(err, HttpError::ConnectionClosed);
        assert!(err.response().is_none());
    }

    #[test]
    fn responses_serialize_with_exact_content_length() {
        let resp = Response::json(200, "{\"ok\":true}".to_owned());
        let bytes = resp.to_bytes();
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 11\r\n"), "{text}");
        assert!(text.contains("Connection: close\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"), "{text}");

        let err = Response::error(422, "flow failed: \"quoted\"");
        assert!(String::from_utf8(err.to_bytes())
            .unwrap()
            .contains("{\"error\":\"flow failed: \\\"quoted\\\"\"}"));
    }

    #[test]
    fn retry_after_is_emitted_only_when_set() {
        let plain = String::from_utf8(Response::error(429, "busy").to_bytes()).unwrap();
        assert!(!plain.contains("Retry-After"), "{plain}");

        let hinted = Response::error(429, "busy").with_retry_after(1);
        let text = String::from_utf8(hinted.to_bytes()).unwrap();
        assert!(text.contains("Retry-After: 1\r\n"), "{text}");
        assert!(
            text.contains("\r\nConnection: close\r\n\r\n"),
            "headers must stay well-formed: {text}"
        );
    }
}
