//! Byte-mangle fuzz over the HTTP/1.1 request parser, mirroring the
//! netlist crate's bench/verilog format fuzz: serialize a valid
//! request, corrupt it with random byte edits, and require that the
//! parser returns `Ok` or a typed error — never a panic — and that
//! every reportable error renders as a well-formed 4xx response.

use proptest::prelude::*;

use sttlock_serve::http::{read_request, HttpError, Limits, Request};

/// A syntactically valid request to use as the mangle substrate.
fn render(method: &str, path: &str, headers: &[(String, String)], body: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(format!("{method} {path} HTTP/1.1\r\n").as_bytes());
    for (name, value) in headers {
        out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
    }
    out.extend_from_slice(format!("Content-Length: {}\r\n\r\n", body.len()).as_bytes());
    out.extend_from_slice(body);
    out
}

fn arb_request() -> impl Strategy<Value = Vec<u8>> {
    let method = prop::sample::select(vec!["GET", "POST", "PUT", "DELETE"]);
    let path = prop::sample::select(vec![
        "/healthz",
        "/metrics",
        "/v1/harden",
        "/v1/attack",
        "/x",
    ]);
    // Printable-ASCII header values (the vendored proptest has no
    // regex-string strategy).
    let value = prop::collection::vec(32u8..127, 0..30)
        .prop_map(|v| String::from_utf8(v).expect("printable ASCII"));
    let headers = prop::collection::vec(
        (
            prop::sample::select(vec!["Accept", "X-Trace", "User-Agent", "Host"]),
            value,
        ),
        0..4,
    );
    let body = prop::collection::vec(any::<u8>(), 0..200);
    (method, path, headers, body).prop_map(|(m, p, h, b)| {
        let owned: Vec<(String, String)> = h.into_iter().map(|(n, v)| (n.to_owned(), v)).collect();
        render(m, p, &owned, &b)
    })
}

/// Byte-level replace/insert/delete edits — torn headers, flipped
/// separators, truncations, garbage injection all fall out of this.
fn mangle(bytes: &[u8], edits: &[(usize, u8, u8)]) -> Vec<u8> {
    let mut out = bytes.to_vec();
    for &(pos, byte, op) in edits {
        if out.is_empty() {
            break;
        }
        let at = pos % out.len();
        match op % 4 {
            0 => out[at] = byte,
            1 => out.insert(at, byte),
            2 => {
                out.remove(at);
            }
            // Truncation: torn requests are the common network failure.
            _ => out.truncate(at),
        }
    }
    out
}

fn parse(bytes: &[u8]) -> Result<Request, HttpError> {
    read_request(&mut &bytes[..], &Limits::default())
}

/// Every parser error except a clean pre-request EOF must render as a
/// complete, well-formed 4xx HTTP response.
fn assert_reportable(err: &HttpError) {
    if matches!(err, HttpError::ConnectionClosed) {
        return;
    }
    let status = err.status();
    assert!(
        (400..500).contains(&status),
        "parser error {err:?} maps to non-4xx status {status}"
    );
    let resp = err
        .response()
        .unwrap_or_else(|| panic!("reportable error {err:?} produced no response"));
    assert_eq!(resp.status, status);
    let bytes = resp.to_bytes();
    let text = String::from_utf8(bytes).expect("response must be UTF-8");
    assert!(text.starts_with(&format!("HTTP/1.1 {status} ")), "{text}");
    assert!(text.contains("\r\nConnection: close\r\n"), "{text}");
    assert!(text.contains("\r\nContent-Length: "), "{text}");
    assert!(text.contains("\r\n\r\n"), "{text}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Mangled request bytes must parse to Ok or a typed error — never
    /// a panic — and every error must map to a well-formed 4xx.
    #[test]
    fn mangled_requests_never_panic_and_errors_are_4xx(
        req in arb_request(),
        edits in prop::collection::vec((any::<usize>(), any::<u8>(), any::<u8>()), 1..12),
    ) {
        let bad = mangle(&req, &edits);
        if let Err(e) = parse(&bad) {
            assert_reportable(&e);
        }
    }

    /// Pure garbage (no valid substrate at all) follows the same rule.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        if let Err(e) = parse(&bytes) {
            assert_reportable(&e);
        }
    }

    /// A declared Content-Length larger than the delivered body is a
    /// truncated body, reported as such rather than hanging or lying.
    #[test]
    fn truncated_bodies_are_typed(cut in 0usize..20, extra in 1usize..50) {
        let full = render("POST", "/v1/harden", &[], &vec![b'x'; cut + extra]);
        let torn = &full[..full.len() - extra];
        match parse(torn) {
            Err(HttpError::TruncatedBody { expected, got }) => {
                assert_eq!(expected, cut + extra);
                assert_eq!(got, cut);
            }
            other => panic!("expected TruncatedBody, got {other:?}"),
        }
    }

    /// Pipelined trailing garbage after a complete request must not
    /// corrupt the parse of the first request.
    #[test]
    fn pipelined_garbage_does_not_corrupt_the_first_request(
        garbage in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let mut bytes = render("POST", "/v1/attack", &[], b"{\"seed\":1}");
        bytes.extend_from_slice(&garbage);
        let req = parse(&bytes).expect("the first request is intact");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/attack");
        assert_eq!(req.body, b"{\"seed\":1}");
    }
}
