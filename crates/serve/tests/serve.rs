//! End-to-end tests for the serve stack: real sockets, real worker
//! pool, real responses.
//!
//! The obs collector registry is process-global and `Server::start`
//! installs into it, so every test takes `SERIAL` first — one live
//! server at a time.

use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use sttlock_benchgen::Profile;
use sttlock_campaign::json::Json;
use sttlock_netlist::bench_format;
use sttlock_serve::client::{self, HttpResponse};
use sttlock_serve::{ServeConfig, Server};

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

const TIMEOUT: Duration = Duration::from_secs(60);

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("sttlock-serve-tests")
        .join(format!("{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn post(addr: &str, path: &str, body: &str) -> HttpResponse {
    client::request(addr, "POST", path, Some(body), TIMEOUT).expect("request should get a response")
}

fn get(addr: &str, path: &str) -> HttpResponse {
    client::request(addr, "GET", path, None, TIMEOUT).expect("request should get a response")
}

fn bench_body(seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(7);
    let bench = bench_format::write(&Profile::custom("t", 40, 3, 5, 3).generate(&mut rng));
    format!(
        "{{\"bench\":{},\"algorithm\":\"para\",\"seed\":{seed}}}",
        json_string(&bench)
    )
}

fn json_string(s: &str) -> String {
    let escaped = s
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
        .replace('\r', "\\r")
        .replace('\t', "\\t");
    format!("\"{escaped}\"")
}

#[test]
fn healthz_and_unknown_routes() {
    let _guard = serial();
    let server = Server::start(ServeConfig::default()).unwrap();
    let addr = server.addr().to_string();

    let health = get(&addr, "/healthz");
    assert_eq!(health.status, 200);
    assert!(health.body_text().contains("\"status\":\"ok\""));

    assert_eq!(get(&addr, "/nope").status, 404);
    assert_eq!(get(&addr, "/v1/harden").status, 405);
    assert_eq!(post(&addr, "/debug/panic", "").status, 404); // debug off

    server.shutdown();
}

#[test]
fn harden_round_trips_and_cache_hits_are_fast() {
    let _guard = serial();
    let cfg = ServeConfig {
        cache_dir: Some(tmp_dir("cache")),
        ..ServeConfig::default()
    };
    let server = Server::start(cfg).unwrap();
    let addr = server.addr().to_string();
    let body = bench_body(3);

    let t0 = Instant::now();
    let cold = post(&addr, "/v1/harden", &body);
    let cold_wall = t0.elapsed();
    assert_eq!(cold.status, 200, "{}", cold.body_text());
    let cold_text = cold.body_text();
    assert!(cold_text.contains("\"cached\":false"), "{cold_text}");
    assert!(cold_text.contains("\"bitstream\""), "{cold_text}");
    assert!(cold_text.contains("\"n_bf_log10\""), "{cold_text}");

    let t1 = Instant::now();
    let warm = post(&addr, "/v1/harden", &body);
    let warm_wall = t1.elapsed();
    assert_eq!(warm.status, 200);
    let warm_text = warm.body_text();
    assert!(warm_text.contains("\"cached\":true"), "{warm_text}");
    // Identical payload modulo the cached/wall_ms bookkeeping.
    assert_eq!(
        strip_volatile(&cold_text),
        strip_volatile(&warm_text),
        "cached response should carry the same flow result"
    );
    assert!(
        warm_wall < cold_wall,
        "cache hit ({warm_wall:?}) should beat the cold flow ({cold_wall:?})"
    );

    // A different seed is a different cache key.
    let other = post(&addr, "/v1/harden", &bench_body(4));
    assert!(other.body_text().contains("\"cached\":false"));

    let metrics = get(&addr, "/metrics").body_text();
    assert!(
        metrics.contains("sttlock_counter{name=\"serve.harden.cache_hit\"} 1"),
        "{metrics}"
    );

    server.shutdown();
}

#[test]
fn restart_warm_loads_the_persistent_cache() {
    let _guard = serial();
    let dir = tmp_dir("restart");
    let body = bench_body(11);

    // First life: compute and cache.
    let cold_text = {
        let cfg = ServeConfig {
            cache_dir: Some(dir.clone()),
            ..ServeConfig::default()
        };
        let server = Server::start(cfg).unwrap();
        let addr = server.addr().to_string();
        let cold = post(&addr, "/v1/harden", &body);
        assert_eq!(cold.status, 200, "{}", cold.body_text());
        assert!(cold.body_text().contains("\"cached\":false"));
        server.shutdown();
        cold.body_text()
    };

    // Second life, same cache dir: the very first repeat request must
    // be answered from the warm-loaded log, not recomputed.
    let cfg = ServeConfig {
        cache_dir: Some(dir),
        ..ServeConfig::default()
    };
    let server = Server::start(cfg).unwrap();
    let addr = server.addr().to_string();
    let warm = post(&addr, "/v1/harden", &body);
    assert_eq!(warm.status, 200, "{}", warm.body_text());
    let warm_text = warm.body_text();
    assert!(
        warm_text.contains("\"cached\":true"),
        "first post-restart repeat must be a cache hit: {warm_text}"
    );
    assert_eq!(
        strip_volatile(&cold_text),
        strip_volatile(&warm_text),
        "warm-loaded response should carry the same flow result"
    );

    let metrics = get(&addr, "/metrics").body_text();
    assert!(
        metrics.contains("sttlock_counter{name=\"store.cache_warm_hits\"} 1"),
        "{metrics}"
    );

    server.shutdown();
}

fn strip_volatile(body: &str) -> String {
    let Ok(Json::Obj(mut map)) = Json::parse(body) else {
        panic!("response body is not a JSON object: {body}");
    };
    map.remove("cached");
    map.remove("wall_ms");
    Json::Obj(map).to_string()
}

#[test]
fn attack_endpoint_reports_the_break() {
    let _guard = serial();
    let server = Server::start(ServeConfig::default()).unwrap();
    let addr = server.addr().to_string();

    let mut rng = StdRng::seed_from_u64(9);
    let bench = bench_format::write(&Profile::custom("a", 30, 2, 5, 3).generate(&mut rng));
    let body = format!(
        "{{\"bench\":{},\"algorithm\":\"indep\",\"seed\":1,\"mode\":\"sens\"}}",
        json_string(&bench)
    );
    let resp = post(&addr, "/v1/attack", &body);
    assert_eq!(resp.status, 200, "{}", resp.body_text());
    let text = resp.body_text();
    assert!(text.contains("\"mode\":\"sens\""), "{text}");
    assert!(text.contains("\"test_clocks\""), "{text}");

    let bad = post(&addr, "/v1/attack", "{\"bench\":\"not a netlist\"}");
    assert_eq!(bad.status, 400);

    server.shutdown();
}

/// Polls `cond` until it holds; panics after five seconds.
fn wait_for(mut cond: impl FnMut() -> bool, what: &str) {
    let t0 = Instant::now();
    while !cond() {
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "timed out waiting for {what}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn full_queue_gets_fast_429s_not_drops() {
    let _guard = serial();
    let cfg = ServeConfig {
        workers: 1,
        queue_depth: 1,
        debug_endpoints: true,
        ..ServeConfig::default()
    };
    let server = Server::start(cfg).unwrap();
    let addr = server.addr().to_string();
    let metrics = std::sync::Arc::clone(server.metrics());

    // Two sleepers: one occupies the only worker, one fills the queue.
    // Admission is sequenced on the in-process gauges — two connections
    // submitted back-to-back can otherwise race the worker's dequeue
    // and steal each other's queue slot.
    let spawn_sleeper = |addr: &str| {
        let addr = addr.to_owned();
        std::thread::spawn(move || post(&addr, "/debug/sleep", "{\"ms\":800}").status)
    };
    let first = spawn_sleeper(&addr);
    wait_for(
        || metrics.gauge_value("serve.in_flight") >= 1,
        "the first sleeper to occupy the worker",
    );
    let second = spawn_sleeper(&addr);
    wait_for(
        || metrics.gauge_value("serve.queued") >= 1,
        "the second sleeper to fill the queue",
    );

    // Pool busy + queue full → the accept thread itself answers 429.
    let t0 = Instant::now();
    let busy = post(&addr, "/debug/sleep", "{\"ms\":1}");
    assert_eq!(busy.status, 429, "{}", busy.body_text());
    assert!(
        t0.elapsed() < Duration::from_millis(400),
        "429 must not wait for the workers"
    );
    assert_eq!(
        busy.header("retry-after"),
        Some("1"),
        "the canned 429 must tell clients when to retry"
    );

    for s in [first, second] {
        assert_eq!(s.join().unwrap(), 200);
    }

    // The rejection is visible to scrapers, not just the rejected peer.
    let scraped = get(&addr, "/metrics").body_text();
    assert!(
        scraped.contains("sttlock_counter{name=\"serve.rejected_busy\"} 1"),
        "{scraped}"
    );
    server.shutdown();
}

#[test]
fn blown_deadline_is_a_504_with_partial_state() {
    let _guard = serial();
    let cfg = ServeConfig {
        request_timeout: Duration::from_millis(150),
        debug_endpoints: true,
        ..ServeConfig::default()
    };
    let server = Server::start(cfg).unwrap();
    let addr = server.addr().to_string();

    let resp = post(&addr, "/debug/sleep", "{\"ms\":5000}");
    assert_eq!(resp.status, 504, "{}", resp.body_text());
    assert!(
        resp.body_text().contains("slept_ms"),
        "{}",
        resp.body_text()
    );

    let metrics = server.metrics().clone();
    server.shutdown();
    assert_eq!(metrics.counter_value("serve.deadline_missed"), 1);
}

#[test]
fn blown_deadline_cancels_the_in_flight_flow() {
    let _guard = serial();
    let cfg = ServeConfig {
        request_timeout: Duration::from_millis(200),
        ..ServeConfig::default()
    };
    let server = Server::start(cfg).unwrap();
    let addr = server.addr().to_string();
    let metrics = server.metrics().clone();

    // A circuit big enough (seconds of flow time) that the 200ms
    // request budget must trip *inside* selection/STA — the specific
    // 504 message distinguishes a mid-flow cancel from the cheap
    // pre-compute and post-compute deadline checks.
    let mut rng = StdRng::seed_from_u64(11);
    let bench = bench_format::write(&Profile::custom("big", 2500, 8, 10, 6).generate(&mut rng));
    let body = format!(
        "{{\"bench\":{},\"algorithm\":\"para\",\"seed\":5}}",
        json_string(&bench)
    );
    let resp = post(&addr, "/v1/harden", &body);
    assert_eq!(resp.status, 504, "{}", resp.body_text());
    assert!(
        resp.body_text().contains("the flow was cancelled"),
        "the 504 must come from the budget tripping mid-flow: {}",
        resp.body_text()
    );

    // The deep work observed the trip (the budget's one-shot latch)
    // after charging real steps…
    assert!(metrics.counter_value("exec.budget.deadline") >= 1);
    let steps = metrics.counter_value("exec.steps");
    assert!(
        steps > 0,
        "selection/STA should have charged steps before the cancel"
    );
    // …and then went quiet: a cancelled request's stages must stop,
    // not keep computing into a dead socket.
    std::thread::sleep(Duration::from_millis(250));
    assert_eq!(
        metrics.counter_value("exec.steps"),
        steps,
        "no stage may keep charging steps after its request was cancelled"
    );

    server.shutdown();
}

#[test]
fn a_panicking_handler_is_a_500_and_the_pool_survives() {
    let _guard = serial();
    let cfg = ServeConfig {
        workers: 2,
        debug_endpoints: true,
        ..ServeConfig::default()
    };
    let server = Server::start(cfg).unwrap();
    let addr = server.addr().to_string();

    for _ in 0..3 {
        let resp = post(&addr, "/debug/panic", "");
        assert_eq!(resp.status, 500);
        assert!(
            resp.body_text().contains("injected handler panic"),
            "{}",
            resp.body_text()
        );
    }
    // More panics than workers, yet the pool still serves.
    assert_eq!(get(&addr, "/healthz").status, 200);

    let metrics = get(&addr, "/metrics").body_text();
    assert!(
        metrics.contains("sttlock_counter{name=\"serve.request_panicked\"} 3"),
        "{metrics}"
    );
    server.shutdown();
}

#[test]
fn malformed_requests_get_4xx_responses() {
    let _guard = serial();
    let server = Server::start(ServeConfig::default()).unwrap();
    let addr = server.addr().to_string();

    assert_eq!(post(&addr, "/v1/harden", "{not json").status, 400);
    assert_eq!(post(&addr, "/v1/harden", "{}").status, 400); // no bench
    assert_eq!(
        post(&addr, "/v1/harden", "{\"bench\":\"INPUT(\"}").status,
        400
    );
    let bad_alg = post(
        &addr,
        "/v1/harden",
        "{\"bench\":\"x\",\"algorithm\":\"magic\"}",
    );
    assert_eq!(bad_alg.status, 400);
    assert!(bad_alg.body_text().contains("unknown algorithm"));

    server.shutdown();
}

#[test]
fn graceful_shutdown_finishes_in_flight_requests() {
    let _guard = serial();
    let cfg = ServeConfig {
        debug_endpoints: true,
        ..ServeConfig::default()
    };
    let server = Server::start(cfg).unwrap();
    let addr = server.addr().to_string();

    let in_flight = {
        let addr = addr.clone();
        std::thread::spawn(move || post(&addr, "/debug/sleep", "{\"ms\":600}"))
    };
    std::thread::sleep(Duration::from_millis(200)); // let it reach a worker

    let metrics = server.metrics().clone();
    server.shutdown(); // blocks until drained
    let resp = in_flight.join().unwrap();
    assert_eq!(
        resp.status,
        200,
        "in-flight request must complete across shutdown: {}",
        resp.body_text()
    );
    assert_eq!(metrics.counter_value("serve.status.2xx"), 1);

    // The listener is gone: new connections are refused, not queued.
    assert!(client::request(&addr, "GET", "/healthz", None, Duration::from_secs(2)).is_err());
}

#[test]
fn admin_shutdown_drains_via_wait() {
    let _guard = serial();
    let server = Server::start(ServeConfig::default()).unwrap();
    let addr = server.addr().to_string();

    let resp = post(&addr, "/admin/shutdown", "");
    assert_eq!(resp.status, 200);
    assert!(resp.body_text().contains("draining"));

    let metrics = server.metrics().clone();
    let t0 = Instant::now();
    let digest = server.wait();
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "wait() should notice the stop flag promptly"
    );
    assert!(digest.contains("counters"), "{digest}");
    assert_eq!(metrics.counter_value("serve.accepted"), 1);
}
