//! Differential properties: [`IncrementalSta`] must be indistinguishable
//! — bit for bit — from running a fresh [`analyze`] on an equivalently
//! mutated netlist, no matter how swaps and restores interleave.

use std::collections::HashSet;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use sttlock_benchgen::Profile;
use sttlock_netlist::{Netlist, NodeId};
use sttlock_sta::{analyze, IncrementalSta};
use sttlock_techlib::Library;

/// Gates the selection algorithms may legally swap (narrow standard
/// cells).
fn swap_pool(netlist: &Netlist) -> Vec<NodeId> {
    netlist
        .iter()
        .filter(|(_, n)| n.gate_kind().is_some() && n.fanin().len() <= 6)
        .map(|(id, _)| id)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary interleavings of swap/restore leave the engine equal to
    /// a fresh full analysis of the mutated netlist: same clock period,
    /// same arrival at every node, same materialized [`sttlock_sta::TimingAnalysis`].
    #[test]
    fn interleaved_swaps_match_fresh_analyze(
        seed in any::<u64>(),
        ops in prop::collection::vec(any::<u32>(), 1..32usize),
    ) {
        let gates = 120 + (seed % 160) as usize;
        let netlist =
            Profile::custom("diff", gates, 8, 8, 6).generate(&mut StdRng::seed_from_u64(seed));
        let lib = Library::predictive_90nm();
        let pool = swap_pool(&netlist);
        prop_assert!(!pool.is_empty());

        let mut engine = IncrementalSta::new(&netlist, &lib);
        let mut mutated = netlist.clone();
        let mut swapped: HashSet<NodeId> = HashSet::new();

        for op in ops {
            let id = pool[op as usize % pool.len()];
            if swapped.remove(&id) {
                let kind = netlist.node(id).gate_kind().expect("pool gates are cells");
                engine.restore_gate(id, kind);
                mutated.restore_lut_to_gate(id, kind);
            } else {
                engine.swap_to_lut(id);
                mutated
                    .replace_gate_with_lut(id)
                    .expect("pool gates are replaceable");
                swapped.insert(id);
            }

            let fresh = analyze(&mutated, &lib);
            prop_assert_eq!(
                engine.clock_period_ns().to_bits(),
                fresh.clock_period_ns().to_bits()
            );
            for (nid, _) in netlist.iter() {
                prop_assert_eq!(
                    engine.arrival_ns(nid).to_bits(),
                    fresh.arrival_ns(nid).to_bits()
                );
            }
            prop_assert_eq!(engine.to_analysis(), fresh);
        }
    }

    /// `batch_eval` answers exactly what one-at-a-time probing answers,
    /// and perturbs nothing: the engine state afterwards is unchanged.
    #[test]
    fn batch_eval_matches_sequential_probes(
        seed in any::<u64>(),
        picks in prop::collection::vec(any::<u32>(), 1..24usize),
    ) {
        let netlist =
            Profile::custom("batch", 200, 8, 8, 6).generate(&mut StdRng::seed_from_u64(seed));
        let lib = Library::predictive_90nm();
        let pool = swap_pool(&netlist);
        prop_assert!(!pool.is_empty());

        let mut candidates: Vec<NodeId> = picks
            .iter()
            .map(|&p| pool[p as usize % pool.len()])
            .collect();
        candidates.sort_unstable();
        candidates.dedup();

        let mut engine = IncrementalSta::new(&netlist, &lib);
        let before = engine.clock_period_ns();
        let batch = engine.batch_eval(&candidates);
        prop_assert_eq!(engine.clock_period_ns().to_bits(), before.to_bits());

        for (&id, &period) in candidates.iter().zip(&batch) {
            let kind = netlist.node(id).gate_kind().expect("pool gates are cells");
            engine.swap_to_lut(id);
            prop_assert_eq!(engine.clock_period_ns().to_bits(), period.to_bits());
            engine.restore_gate(id, kind);
        }
        prop_assert_eq!(engine.clock_period_ns().to_bits(), before.to_bits());
    }
}
