//! Static timing analysis (STA) for hybrid STT-CMOS netlists.
//!
//! The analysis propagates arrival times through the combinational core
//! using the cell delays of a [`Library`]: CMOS gates use their
//! standard-cell delay, STT LUTs their fan-in-dependent (but content- and
//! redaction-independent) read delay — so the *foundry view* times
//! identically to the programmed design, as it must.
//!
//! Timing endpoints are flip-flop D pins (plus setup) and primary
//! outputs; the minimum feasible clock period is the worst endpoint
//! arrival. The *performance degradation* columns of Table I in the paper
//! compare this period before and after LUT insertion.
//!
//! # Example
//!
//! ```
//! use sttlock_netlist::{GateKind, NetlistBuilder};
//! use sttlock_techlib::Library;
//! use sttlock_sta::analyze;
//!
//! # fn main() -> Result<(), sttlock_netlist::NetlistError> {
//! let mut b = NetlistBuilder::new("m");
//! b.input("a");
//! b.input("b");
//! b.gate("g1", GateKind::Nand, &["a", "b"]);
//! b.gate("g2", GateKind::Xor, &["g1", "a"]);
//! b.output("g2");
//! let n = b.finish()?;
//! let lib = Library::predictive_90nm();
//! let timing = analyze(&n, &lib);
//! assert!(timing.clock_period_ns() > 0.0);
//! assert_eq!(timing.critical_path().last(), Some(&n.find("g2").unwrap()));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod incremental;

pub use incremental::IncrementalSta;

use sttlock_netlist::{CircuitView, Netlist, Node, NodeId};
use sttlock_techlib::Library;

/// Result of a static timing analysis pass.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingAnalysis {
    arrival: Vec<f64>,
    required: Vec<f64>,
    critical_path: Vec<NodeId>,
    clock_period_ns: f64,
    worst_endpoint: Option<NodeId>,
}

impl TimingAnalysis {
    /// Minimum feasible clock period, nanoseconds. The paper's
    /// performance metric is the relative change of this value.
    pub fn clock_period_ns(&self) -> f64 {
        self.clock_period_ns
    }

    /// Arrival time at a node's output, nanoseconds after the clock edge.
    pub fn arrival_ns(&self, id: NodeId) -> f64 {
        self.arrival[id.index()]
    }

    /// Slack of a node at the analyzed clock period (non-negative for the
    /// critical path's own period; gates off the critical path have
    /// positive slack the parametric-aware selection can spend).
    pub fn slack_ns(&self, id: NodeId) -> f64 {
        self.required[id.index()] - self.arrival[id.index()]
    }

    /// The critical path: sources first, worst endpoint last.
    pub fn critical_path(&self) -> &[NodeId] {
        &self.critical_path
    }

    /// The worst timing endpoint (a DFF or a primary-output driver), if
    /// the circuit has combinational logic at all.
    pub fn worst_endpoint(&self) -> Option<NodeId> {
        self.worst_endpoint
    }
}

/// Intrinsic propagation delay of one node under `lib`.
fn node_delay(netlist: &Netlist, lib: &Library, id: NodeId) -> f64 {
    match netlist.node(id) {
        Node::Gate { kind, fanin } => lib.gate(*kind, fanin.len()).delay_ns,
        Node::Lut { fanin, .. } => lib.lut(fanin.len()).delay_ns,
        _ => 0.0,
    }
}

/// Launch time of a source node (arrival at its output with no logic).
fn source_arrival(netlist: &Netlist, lib: &Library, id: NodeId) -> f64 {
    match netlist.node(id) {
        Node::Dff { .. } => lib.dff().clk_to_q_ns,
        _ => 0.0,
    }
}

/// Runs static timing analysis over the whole netlist.
pub fn analyze(netlist: &Netlist, lib: &Library) -> TimingAnalysis {
    analyze_with(&CircuitView::new(netlist), lib)
}

/// [`analyze`] against a shared [`CircuitView`], reusing its memoized
/// topological order. Produces bit-identical results.
pub fn analyze_with(view: &CircuitView<'_>, lib: &Library) -> TimingAnalysis {
    let netlist = view.netlist();
    let order = view.topo_order();
    let n = netlist.len();
    let mut arrival = vec![0.0f64; n];
    for (id, node) in netlist.iter() {
        if !node.is_combinational() {
            arrival[id.index()] = source_arrival(netlist, lib, id);
        }
    }
    for &id in order {
        let node = netlist.node(id);
        let input_arrival = node
            .fanin()
            .iter()
            .map(|f| arrival[f.index()])
            .fold(0.0f64, f64::max);
        arrival[id.index()] = input_arrival + node_delay(netlist, lib, id);
    }

    // Endpoint arrival: DFF D pins cost an extra setup; POs none.
    let setup = lib.dff().setup_ns;
    let mut worst: Option<(NodeId, f64)> = None;
    let mut consider = |endpoint: NodeId, t: f64| {
        if worst.is_none_or(|(_, wt)| t > wt) {
            worst = Some((endpoint, t));
        }
    };
    for (_, node) in netlist.iter() {
        if let Node::Dff { d } = node {
            consider(*d, arrival[d.index()] + setup);
        }
    }
    for &o in netlist.outputs() {
        consider(o, arrival[o.index()]);
    }
    let (worst_endpoint, clock_period_ns) = match worst {
        Some((id, t)) => (Some(id), t),
        None => (None, 0.0),
    };

    // Required times (backward pass) at the analyzed period.
    let mut required = vec![f64::INFINITY; n];
    for (_, node) in netlist.iter() {
        if let Node::Dff { d } = node {
            let r = clock_period_ns - setup;
            if r < required[d.index()] {
                required[d.index()] = r;
            }
        }
    }
    for &o in netlist.outputs() {
        if clock_period_ns < required[o.index()] {
            required[o.index()] = clock_period_ns;
        }
    }
    for &id in order.iter().rev() {
        let r_here = required[id.index()];
        if !r_here.is_finite() {
            continue;
        }
        let d = node_delay(netlist, lib, id);
        for &f in netlist.node(id).fanin() {
            let r_in = r_here - d;
            if r_in < required[f.index()] {
                required[f.index()] = r_in;
            }
        }
    }
    // Nets with no timed fan-out (dangling logic) get full-period slack.
    for r in required.iter_mut() {
        if !r.is_finite() {
            *r = clock_period_ns;
        }
    }

    // Critical path: trace back from the worst endpoint along the
    // max-arrival fan-in.
    let mut critical_path = Vec::new();
    if let Some(mut cur) = worst_endpoint {
        loop {
            critical_path.push(cur);
            let node = netlist.node(cur);
            if !node.is_combinational() {
                break;
            }
            let Some(&prev) = node
                .fanin()
                .iter()
                .max_by(|a, b| arrival[a.index()].total_cmp(&arrival[b.index()]))
            else {
                break;
            };
            cur = prev;
        }
        critical_path.reverse();
    }

    TimingAnalysis {
        arrival,
        required,
        critical_path,
        clock_period_ns,
        worst_endpoint,
    }
}

/// Relative clock-period change (%) between two raw periods: the
/// Table I metric. Positive when `hybrid_ns` is slower, zero when the
/// periods match (LUTs landed off the critical path), **negative** when
/// the hybrid is faster — callers comparing against a budget must not
/// assume a clamped value.
///
/// A non-positive baseline (no timed endpoints at all) cannot be
/// degraded *relatively*: any nonzero hybrid period is reported as
/// `INFINITY`, which deliberately fails every `<= budget` check, and a
/// zero hybrid period as `0.0`.
pub fn degradation_pct_from_periods(baseline_ns: f64, hybrid_ns: f64) -> f64 {
    if baseline_ns <= 0.0 {
        return if hybrid_ns > 0.0 { f64::INFINITY } else { 0.0 };
    }
    (hybrid_ns - baseline_ns) / baseline_ns * 100.0
}

/// Relative performance degradation (%) of `hybrid` against `baseline`;
/// see [`degradation_pct_from_periods`] for the sign and zero-baseline
/// conventions.
pub fn performance_degradation_pct(baseline: &TimingAnalysis, hybrid: &TimingAnalysis) -> f64 {
    degradation_pct_from_periods(baseline.clock_period_ns, hybrid.clock_period_ns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sttlock_netlist::{GateKind, NetlistBuilder};

    fn lib() -> Library {
        Library::predictive_90nm()
    }

    /// in → g1(NAND2) → g2(XOR2) → out, plus a fast side branch.
    fn two_stage() -> Netlist {
        let mut b = NetlistBuilder::new("m");
        b.input("a");
        b.input("c");
        b.gate("g1", GateKind::Nand, &["a", "c"]);
        b.gate("g2", GateKind::Xor, &["g1", "a"]);
        b.gate("fast", GateKind::Buf, &["a"]);
        b.output("g2");
        b.output("fast");
        b.finish().unwrap()
    }

    #[test]
    fn arrival_accumulates_along_chain() {
        let n = two_stage();
        let l = lib();
        let t = analyze(&n, &l);
        let d_nand = l.gate(GateKind::Nand, 2).delay_ns;
        let d_xor = l.gate(GateKind::Xor, 2).delay_ns;
        assert!((t.arrival_ns(n.find("g1").unwrap()) - d_nand).abs() < 1e-12);
        assert!((t.arrival_ns(n.find("g2").unwrap()) - (d_nand + d_xor)).abs() < 1e-12);
        assert!((t.clock_period_ns() - (d_nand + d_xor)).abs() < 1e-12);
    }

    #[test]
    fn critical_path_is_the_slow_chain() {
        let n = two_stage();
        let t = analyze(&n, &lib());
        let names: Vec<&str> = t
            .critical_path()
            .iter()
            .map(|&id| n.node_name(id))
            .collect();
        // Both inputs arrive at t=0, so either can start the path.
        assert!(names == vec!["a", "g1", "g2"] || names == vec!["c", "g1", "g2"]);
        assert_eq!(t.worst_endpoint(), n.find("g2"));
    }

    #[test]
    fn off_critical_gates_have_slack() {
        let n = two_stage();
        let t = analyze(&n, &lib());
        assert!(t.slack_ns(n.find("fast").unwrap()) > 0.0);
        assert!(t.slack_ns(n.find("g2").unwrap()).abs() < 1e-12);
        assert!(t.slack_ns(n.find("g1").unwrap()).abs() < 1e-12);
    }

    #[test]
    fn sequential_period_includes_clk_to_q_and_setup() {
        let mut b = NetlistBuilder::new("m");
        b.input("a");
        b.gate("g", GateKind::Nand, &["q", "a"]);
        b.dff("q", "g");
        b.output("q");
        let n = b.finish().unwrap();
        let l = lib();
        let t = analyze(&n, &l);
        let expect = l.dff().clk_to_q_ns + l.gate(GateKind::Nand, 2).delay_ns + l.dff().setup_ns;
        assert!((t.clock_period_ns() - expect).abs() < 1e-12);
    }

    #[test]
    fn lut_replacement_slows_its_path() {
        let n = two_stage();
        let l = lib();
        let base = analyze(&n, &l);
        let mut hybrid = n.clone();
        hybrid
            .replace_gate_with_lut(hybrid.find("g1").unwrap())
            .unwrap();
        let after = analyze(&hybrid, &l);
        assert!(after.clock_period_ns() > base.clock_period_ns());
        let deg = performance_degradation_pct(&base, &after);
        assert!(deg > 0.0, "degradation {deg}");
    }

    #[test]
    fn redacted_and_programmed_views_time_identically() {
        let mut n = two_stage();
        n.replace_gate_with_lut(n.find("g1").unwrap()).unwrap();
        let (stripped, _) = n.redact();
        let l = lib();
        assert_eq!(
            analyze(&n, &l).clock_period_ns(),
            analyze(&stripped, &l).clock_period_ns()
        );
    }

    #[test]
    fn off_path_lut_costs_nothing() {
        // Slow chain of four XORs (~0.24 ns) dominates even after the
        // fast side buffer becomes a ~0.22 ns LUT.
        let mut b = NetlistBuilder::new("m");
        b.input("a");
        b.input("c");
        b.gate("x1", GateKind::Xor, &["a", "c"]);
        b.gate("x2", GateKind::Xor, &["x1", "c"]);
        b.gate("x3", GateKind::Xor, &["x2", "c"]);
        b.gate("x4", GateKind::Xor, &["x3", "c"]);
        b.gate("fast", GateKind::Buf, &["a"]);
        b.output("x4");
        b.output("fast");
        let n = b.finish().unwrap();
        let l = lib();
        let base = analyze(&n, &l);
        let mut hybrid = n.clone();
        hybrid
            .replace_gate_with_lut(hybrid.find("fast").unwrap())
            .unwrap();
        let after = analyze(&hybrid, &l);
        assert!(l.lut(1).delay_ns < base.clock_period_ns());
        assert_eq!(performance_degradation_pct(&base, &after), 0.0);
    }

    #[test]
    fn degradation_zero_for_identical_timing() {
        let n = two_stage();
        let l = lib();
        let t = analyze(&n, &l);
        assert_eq!(performance_degradation_pct(&t, &t), 0.0);
    }

    #[test]
    fn degradation_is_signed_and_handles_zero_baseline() {
        // Signed both ways.
        assert_eq!(degradation_pct_from_periods(2.0, 1.0), -50.0);
        assert_eq!(degradation_pct_from_periods(1.0, 2.0), 100.0);
        assert_eq!(degradation_pct_from_periods(1.5, 1.5), 0.0);
        // Zero baseline: any real period is an unbounded relative
        // slowdown and must fail a `<= budget` comparison...
        assert_eq!(degradation_pct_from_periods(0.0, 0.5), f64::INFINITY);
        assert!(degradation_pct_from_periods(0.0, 0.5) > 100.0);
        // ...while "still nothing timed" is no degradation at all.
        assert_eq!(degradation_pct_from_periods(0.0, 0.0), 0.0);
    }
}
