//! Incremental static timing analysis.
//!
//! [`analyze`](crate::analyze) walks the whole netlist; the
//! parametric-aware selection calls it once per tentative swap, so a
//! selection run on an `n`-gate circuit costs `O(n)` full passes of
//! `O(n)` work each. [`IncrementalSta`] caches the topological order,
//! the per-node delays and arrival times, and the endpoint arrival
//! heap; a swap then only recomputes the **fanout cone** of the touched
//! node, terminating early on every branch whose arrival is unchanged.
//!
//! The recomputation evaluates the *identical* expression `analyze`
//! uses (`fold(0.0, f64::max)` over fan-in arrivals plus the node
//! delay) on the identical operand sets, so arrivals and the clock
//! period match a fresh full pass **bit for bit** — the differential
//! property tests in `crates/sta/tests` assert exactly that.
//!
//! The engine never mutates the [`Netlist`] it watches: swaps are
//! hypothetical delay changes, which is what makes [`batch_eval`]
//! (one engine clone per worker thread) safe and cheap.
//!
//! [`batch_eval`]: IncrementalSta::batch_eval

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::thread;

use sttlock_exec::{Budget, BudgetError};
use sttlock_netlist::{CircuitView, GateKind, Netlist, Node, NodeId};
use sttlock_techlib::Library;

use crate::{node_delay, source_arrival, TimingAnalysis};

/// Local instrumentation tallies, flushed as `sta.*` obs counters when
/// the engine drops. Counting locally keeps the propagation loop free
/// of per-event atomic loads; the flush is three counter calls total.
#[derive(Debug, Default)]
struct ObsStats {
    /// `set_delay` calls whose delay actually changed.
    invalidations: u64,
    /// Fanout-cone nodes re-evaluated across all propagations.
    node_reevals: u64,
    /// Re-evaluations whose arrival was unchanged (wave stopped there).
    early_terminations: u64,
}

impl Clone for ObsStats {
    fn clone(&self) -> Self {
        // Clones (batch_eval workers) tally their own work from zero;
        // copying would double-flush the parent's counts.
        ObsStats::default()
    }
}

impl Drop for ObsStats {
    fn drop(&mut self) {
        if self.invalidations == 0 && self.node_reevals == 0 {
            return;
        }
        sttlock_obs::counter("sta.invalidations", self.invalidations);
        sttlock_obs::counter("sta.node_reevals", self.node_reevals);
        sttlock_obs::counter("sta.early_terminations", self.early_terminations);
    }
}

/// Total-ordered `f64` wrapper so endpoint times can live in a heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Incremental STA engine over a fixed netlist structure.
///
/// Construction runs one full forward pass (or reuses an existing
/// [`TimingAnalysis`] via [`from_analysis`]); afterwards
/// [`swap_to_lut`]/[`restore_gate`] update only the touched fanout
/// cone and [`clock_period_ns`] answers from the endpoint heap.
///
/// The engine holds the netlist and library by reference and never
/// mutates them; it is `Clone`, and clones evolve independently —
/// the basis of [`batch_eval`]'s thread-per-chunk parallelism.
///
/// [`from_analysis`]: IncrementalSta::from_analysis
/// [`swap_to_lut`]: IncrementalSta::swap_to_lut
/// [`restore_gate`]: IncrementalSta::restore_gate
/// [`clock_period_ns`]: IncrementalSta::clock_period_ns
/// [`batch_eval`]: IncrementalSta::batch_eval
#[derive(Debug, Clone)]
pub struct IncrementalSta<'a> {
    netlist: &'a Netlist,
    lib: &'a Library,
    /// Cached combinational topological order, shared with the
    /// [`CircuitView`] it came from (and with engine clones).
    order: Arc<Vec<NodeId>>,
    /// Node index → position in `order` (`usize::MAX` for non-comb).
    topo_pos: Vec<usize>,
    /// Node index → combinational readers (propagation frontier),
    /// shared with the view and with engine clones.
    comb_fanout: Arc<Vec<Vec<NodeId>>>,
    /// Current hypothetical per-node delay.
    delay: Vec<f64>,
    /// Current arrival times.
    arrival: Vec<f64>,
    /// Endpoint nodes (DFF D pins and primary outputs), dedup'd, and
    /// the setup charge each one pays (`setup_ns` when feeding a DFF).
    endpoints: Vec<NodeId>,
    endpoint_extra: Vec<f64>,
    /// Node index → current endpoint arrival (`NaN` for non-endpoints);
    /// validates heap entries.
    endpoint_time: Vec<f64>,
    /// Lazy max-heap over `(endpoint_time, node)`; stale entries are
    /// discarded on pop by comparing against `endpoint_time`.
    heap: BinaryHeap<(OrdF64, NodeId)>,
    /// Epoch stamps deduplicating pushes within one propagation.
    epoch_mark: Vec<u64>,
    epoch: u64,
    /// Invalidation/re-eval tallies, flushed to obs on drop.
    stats: ObsStats,
}

impl<'a> IncrementalSta<'a> {
    /// Builds the engine with a fresh full forward pass.
    pub fn new(netlist: &'a Netlist, lib: &'a Library) -> Self {
        Self::with_view(&CircuitView::new(netlist), lib)
    }

    /// Builds the engine against a shared [`CircuitView`], consuming the
    /// view's memoized topological order and combinational fan-out map
    /// instead of constructing duplicates.
    pub fn with_view(view: &CircuitView<'a>, lib: &'a Library) -> Self {
        let netlist = view.netlist();
        let mut engine = Self::skeleton(view, lib);
        for (id, node) in netlist.iter() {
            if !node.is_combinational() {
                engine.arrival[id.index()] = source_arrival(netlist, lib, id);
            }
        }
        for i in 0..engine.order.len() {
            let id = engine.order[i];
            let node = netlist.node(id);
            let input_arrival = node
                .fanin()
                .iter()
                .map(|f| engine.arrival[f.index()])
                .fold(0.0f64, f64::max);
            engine.arrival[id.index()] = input_arrival + engine.delay[id.index()];
        }
        engine.rebuild_endpoint_heap();
        engine
    }

    /// Builds the engine from an existing full analysis of the same
    /// netlist, skipping the forward pass.
    pub fn from_analysis(
        netlist: &'a Netlist,
        lib: &'a Library,
        analysis: &TimingAnalysis,
    ) -> Self {
        Self::from_analysis_with(&CircuitView::new(netlist), lib, analysis)
    }

    /// [`from_analysis`](IncrementalSta::from_analysis) against a shared
    /// [`CircuitView`].
    pub fn from_analysis_with(
        view: &CircuitView<'a>,
        lib: &'a Library,
        analysis: &TimingAnalysis,
    ) -> Self {
        let mut engine = Self::skeleton(view, lib);
        engine.arrival.copy_from_slice(&analysis.arrival);
        engine.rebuild_endpoint_heap();
        engine
    }

    /// Shared construction: cached structure, delays, endpoint roster.
    fn skeleton(view: &CircuitView<'a>, lib: &'a Library) -> Self {
        let netlist = view.netlist();
        let n = netlist.len();
        let order = view.topo_order_arc();
        let mut topo_pos = vec![usize::MAX; n];
        for (pos, &id) in order.iter().enumerate() {
            topo_pos[id.index()] = pos;
        }
        let comb_fanout = view.comb_fanout_arc();
        let delay: Vec<f64> = (0..n)
            .map(|i| node_delay(netlist, lib, NodeId::from_index(i)))
            .collect();

        let setup = lib.dff().setup_ns;
        let mut endpoint_extra = vec![f64::NAN; n];
        for (_, node) in netlist.iter() {
            if let Node::Dff { d } = node {
                endpoint_extra[d.index()] = setup;
            }
        }
        for &o in netlist.outputs() {
            if endpoint_extra[o.index()].is_nan() {
                endpoint_extra[o.index()] = 0.0;
            }
        }
        let endpoints: Vec<NodeId> = (0..n)
            .map(NodeId::from_index)
            .filter(|id| !endpoint_extra[id.index()].is_nan())
            .collect();

        IncrementalSta {
            netlist,
            lib,
            order,
            topo_pos,
            comb_fanout,
            delay,
            arrival: vec![0.0; n],
            endpoints,
            endpoint_extra,
            endpoint_time: vec![f64::NAN; n],
            heap: BinaryHeap::new(),
            epoch_mark: vec![0; n],
            epoch: 0,
            stats: ObsStats::default(),
        }
    }

    /// Recomputes every endpoint time from `arrival` and rebuilds the
    /// heap without stale entries.
    fn rebuild_endpoint_heap(&mut self) {
        self.heap.clear();
        for i in 0..self.endpoints.len() {
            let id = self.endpoints[i];
            let t = self.arrival[id.index()] + self.endpoint_extra[id.index()];
            self.endpoint_time[id.index()] = t;
            self.heap.push((OrdF64(t), id));
        }
    }

    /// Hypothetically replaces `id` with an STT LUT of the same fan-in
    /// and propagates the delay change through its fanout cone.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a gate or LUT.
    pub fn swap_to_lut(&mut self, id: NodeId) {
        let fanin = match self.netlist.node(id) {
            Node::Gate { fanin, .. } | Node::Lut { fanin, .. } => fanin.len(),
            other => panic!("swap_to_lut on non-combinational node {other:?}"),
        };
        self.set_delay(id, self.lib.lut(fanin).delay_ns);
    }

    /// Reverts a hypothetical swap: `id` times as a CMOS gate of `kind`
    /// again. `kind` is usually recovered from the original netlist via
    /// [`Node::gate_kind`].
    pub fn restore_gate(&mut self, id: NodeId, kind: GateKind) {
        let fanin = self.netlist.node(id).fanin().len();
        self.set_delay(id, self.lib.gate(kind, fanin).delay_ns);
    }

    /// Current arrival time at `id`'s output, nanoseconds.
    pub fn arrival_ns(&self, id: NodeId) -> f64 {
        self.arrival[id.index()]
    }

    /// The (never mutated) netlist this engine analyzes.
    pub fn netlist(&self) -> &'a Netlist {
        self.netlist
    }

    /// Sets `id`'s hypothetical delay and incrementally repairs the
    /// arrival times of its fanout cone.
    ///
    /// Nodes are pulled off a min-heap keyed by topological position, so
    /// each cone node is visited at most once with all its predecessors
    /// final; a node whose recomputed arrival is bit-identical to the
    /// cached one stops the wave on that branch (early termination).
    fn set_delay(&mut self, id: NodeId, delay_ns: f64) {
        if self.delay[id.index()].to_bits() == delay_ns.to_bits() {
            return;
        }
        self.delay[id.index()] = delay_ns;
        self.stats.invalidations += 1;

        self.epoch += 1;
        let mut frontier: BinaryHeap<Reverse<(usize, NodeId)>> = BinaryHeap::new();
        self.epoch_mark[id.index()] = self.epoch;
        frontier.push(Reverse((self.topo_pos[id.index()], id)));
        while let Some(Reverse((_, nid))) = frontier.pop() {
            self.stats.node_reevals += 1;
            let node = self.netlist.node(nid);
            let input_arrival = node
                .fanin()
                .iter()
                .map(|f| self.arrival[f.index()])
                .fold(0.0f64, f64::max);
            let new_arrival = input_arrival + self.delay[nid.index()];
            if new_arrival.to_bits() == self.arrival[nid.index()].to_bits() {
                self.stats.early_terminations += 1;
                continue; // early termination: this branch is settled
            }
            self.arrival[nid.index()] = new_arrival;
            let extra = self.endpoint_extra[nid.index()];
            if !extra.is_nan() {
                let t = new_arrival + extra;
                self.endpoint_time[nid.index()] = t;
                self.heap.push((OrdF64(t), nid));
            }
            for &r in &self.comb_fanout[nid.index()] {
                if self.epoch_mark[r.index()] != self.epoch {
                    self.epoch_mark[r.index()] = self.epoch;
                    frontier.push(Reverse((self.topo_pos[r.index()], r)));
                }
            }
        }

        // Bound the stale entries the lazy heap accumulates.
        if self.heap.len() > 4 * self.endpoints.len() + 64 {
            self.rebuild_endpoint_heap();
        }
    }

    /// Minimum feasible clock period under the current hypothetical
    /// delays — identical to [`analyze`](crate::analyze) on a netlist
    /// with the same swaps applied.
    ///
    /// Amortized `O(log e)` over the lazy endpoint heap (stale entries
    /// are discarded here).
    pub fn clock_period_ns(&mut self) -> f64 {
        while let Some(&(OrdF64(t), id)) = self.heap.peek() {
            if t.to_bits() == self.endpoint_time[id.index()].to_bits() {
                return t;
            }
            self.heap.pop();
        }
        0.0
    }

    /// Evaluates each candidate's **single-swap** clock period against
    /// the engine's current state, in parallel.
    ///
    /// Worker threads clone the engine, apply one candidate at a time
    /// and roll it back, so candidates are judged independently — the
    /// result is identical (bit for bit) to calling
    /// [`swap_to_lut`](IncrementalSta::swap_to_lut) /
    /// [`clock_period_ns`](IncrementalSta::clock_period_ns) /
    /// [`restore_gate`](IncrementalSta::restore_gate) per candidate
    /// sequentially, just faster.
    ///
    /// Parallelism uses [`sttlock_exec::scoped_map`]: the workspace has
    /// no `rayon` (the offline build environment lacks the dependency),
    /// so its work-stealing scoped threads stand in for a `par_iter`.
    pub fn batch_eval(&self, candidates: &[NodeId]) -> Vec<f64> {
        self.batch_eval_with(candidates, None)
            .expect("an unbudgeted batch_eval cannot be cancelled")
    }

    /// [`batch_eval`](IncrementalSta::batch_eval) under a cooperative
    /// [`Budget`]: each candidate evaluation first checks the budget
    /// (so a cancelled request stops mid-wave, between cone queries)
    /// and then charges one step. With `None` the behaviour — including
    /// the chunking, and therefore the output bytes — is identical to
    /// the unbudgeted path.
    pub fn batch_eval_with(
        &self,
        candidates: &[NodeId],
        budget: Option<&Budget>,
    ) -> Result<Vec<f64>, BudgetError> {
        if candidates.is_empty() {
            return Ok(Vec::new());
        }
        let workers = thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(candidates.len());
        // Chunk exactly as the pre-exec scoped loop did so the
        // per-worker engine clones see the same candidate runs and the
        // results stay bit-identical.
        let chunk = candidates.len().div_ceil(workers);
        let chunks: Vec<&[NodeId]> = candidates.chunks(chunk).collect();
        let evaluated = sttlock_exec::scoped_map(workers, chunks.len(), |i| {
            let mut engine = self.clone();
            let mut out = Vec::with_capacity(chunks[i].len());
            for &id in chunks[i] {
                if let Some(b) = budget {
                    b.check()?;
                    b.charge(1);
                }
                let prev = engine.delay[id.index()];
                engine.swap_to_lut(id);
                out.push(engine.clock_period_ns());
                engine.set_delay(id, prev);
            }
            Ok(out)
        });
        let mut periods = Vec::with_capacity(candidates.len());
        for slot in evaluated {
            match slot {
                Ok(Ok(vals)) => periods.extend(vals),
                Ok(Err(e)) => return Err(e),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        Ok(periods)
    }

    /// Materializes a full [`TimingAnalysis`] (required times, critical
    /// path, worst endpoint) from the cached arrivals — same output as
    /// [`analyze`](crate::analyze) on an equivalently mutated netlist,
    /// without the forward pass.
    pub fn to_analysis(&mut self) -> TimingAnalysis {
        let netlist = self.netlist;
        let n = netlist.len();
        let setup = self.lib.dff().setup_ns;

        // Worst endpoint: replicate analyze()'s scan order (DFF D pins
        // in arena order, then primary outputs) and strict-greater
        // tie-breaking exactly.
        let mut worst: Option<(NodeId, f64)> = None;
        let mut consider = |endpoint: NodeId, t: f64| {
            if worst.is_none_or(|(_, wt)| t > wt) {
                worst = Some((endpoint, t));
            }
        };
        for (_, node) in netlist.iter() {
            if let Node::Dff { d } = node {
                consider(*d, self.arrival[d.index()] + setup);
            }
        }
        for &o in netlist.outputs() {
            consider(o, self.arrival[o.index()]);
        }
        let (worst_endpoint, clock_period_ns) = match worst {
            Some((id, t)) => (Some(id), t),
            None => (None, 0.0),
        };

        let mut required = vec![f64::INFINITY; n];
        for (_, node) in netlist.iter() {
            if let Node::Dff { d } = node {
                let r = clock_period_ns - setup;
                if r < required[d.index()] {
                    required[d.index()] = r;
                }
            }
        }
        for &o in netlist.outputs() {
            if clock_period_ns < required[o.index()] {
                required[o.index()] = clock_period_ns;
            }
        }
        for &id in self.order.iter().rev() {
            let r_here = required[id.index()];
            if !r_here.is_finite() {
                continue;
            }
            let d = self.delay[id.index()];
            for &f in netlist.node(id).fanin() {
                let r_in = r_here - d;
                if r_in < required[f.index()] {
                    required[f.index()] = r_in;
                }
            }
        }
        for r in required.iter_mut() {
            if !r.is_finite() {
                *r = clock_period_ns;
            }
        }

        let mut critical_path = Vec::new();
        if let Some(mut cur) = worst_endpoint {
            loop {
                critical_path.push(cur);
                let node = netlist.node(cur);
                if !node.is_combinational() {
                    break;
                }
                let Some(&prev) = node
                    .fanin()
                    .iter()
                    .max_by(|a, b| self.arrival[a.index()].total_cmp(&self.arrival[b.index()]))
                else {
                    break;
                };
                cur = prev;
            }
            critical_path.reverse();
        }

        TimingAnalysis {
            arrival: self.arrival.clone(),
            required,
            critical_path,
            clock_period_ns,
            worst_endpoint,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze;
    use sttlock_netlist::NetlistBuilder;

    fn lib() -> Library {
        Library::predictive_90nm()
    }

    /// in/c → g1(NAND) → g2(XOR) → ff → g3(OR) → out, plus a side buffer.
    fn circuit() -> Netlist {
        let mut b = NetlistBuilder::new("m");
        b.input("a");
        b.input("c");
        b.gate("g1", GateKind::Nand, &["a", "c"]);
        b.gate("g2", GateKind::Xor, &["g1", "a"]);
        b.dff("ff", "g2");
        b.gate("g3", GateKind::Or, &["ff", "c"]);
        b.gate("side", GateKind::Buf, &["a"]);
        b.output("g3");
        b.output("side");
        b.finish().unwrap()
    }

    #[test]
    fn fresh_engine_matches_analyze() {
        let n = circuit();
        let l = lib();
        let full = analyze(&n, &l);
        let mut inc = IncrementalSta::new(&n, &l);
        assert_eq!(
            inc.clock_period_ns().to_bits(),
            full.clock_period_ns().to_bits()
        );
        for (id, _) in n.iter() {
            assert_eq!(inc.arrival_ns(id).to_bits(), full.arrival_ns(id).to_bits());
        }
    }

    #[test]
    fn swap_matches_full_reanalysis_bit_for_bit() {
        let n = circuit();
        let l = lib();
        let mut inc = IncrementalSta::new(&n, &l);
        let g1 = n.find("g1").unwrap();

        let mut mutated = n.clone();
        mutated.replace_gate_with_lut(g1).unwrap();
        let full = analyze(&mutated, &l);

        inc.swap_to_lut(g1);
        assert_eq!(
            inc.clock_period_ns().to_bits(),
            full.clock_period_ns().to_bits()
        );
        for (id, _) in n.iter() {
            assert_eq!(
                inc.arrival_ns(id).to_bits(),
                full.arrival_ns(id).to_bits(),
                "arrival mismatch at {}",
                n.node_name(id)
            );
        }
        assert_eq!(inc.to_analysis(), full);
    }

    #[test]
    fn restore_returns_to_baseline_exactly() {
        let n = circuit();
        let l = lib();
        let base = analyze(&n, &l);
        let mut inc = IncrementalSta::new(&n, &l);
        let g2 = n.find("g2").unwrap();
        inc.swap_to_lut(g2);
        inc.restore_gate(g2, GateKind::Xor);
        assert_eq!(
            inc.clock_period_ns().to_bits(),
            base.clock_period_ns().to_bits()
        );
        assert_eq!(inc.to_analysis(), base);
    }

    #[test]
    fn off_cone_swap_does_not_disturb_other_arrivals() {
        let n = circuit();
        let l = lib();
        let mut inc = IncrementalSta::new(&n, &l);
        let side = n.find("side").unwrap();
        let g3 = n.find("g3").unwrap();
        let before_g3 = inc.arrival_ns(g3);
        inc.swap_to_lut(side);
        assert_eq!(inc.arrival_ns(g3).to_bits(), before_g3.to_bits());
    }

    #[test]
    fn batch_eval_equals_sequential_probing() {
        let n = circuit();
        let l = lib();
        let mut inc = IncrementalSta::new(&n, &l);
        let candidates: Vec<NodeId> = ["g1", "g2", "g3", "side"]
            .iter()
            .map(|s| n.find(s).unwrap())
            .collect();
        let batch = inc.batch_eval(&candidates);
        for (&id, &period) in candidates.iter().zip(&batch) {
            let kind = n.node(id).gate_kind().unwrap();
            inc.swap_to_lut(id);
            assert_eq!(inc.clock_period_ns().to_bits(), period.to_bits());
            inc.restore_gate(id, kind);
        }
    }

    #[test]
    fn batch_eval_with_unbounded_budget_is_bit_identical_and_charges_steps() {
        let n = circuit();
        let l = lib();
        let inc = IncrementalSta::new(&n, &l);
        let candidates: Vec<NodeId> = ["g1", "g2", "g3", "side"]
            .iter()
            .map(|s| n.find(s).unwrap())
            .collect();
        let plain = inc.batch_eval(&candidates);
        let budget = Budget::unbounded();
        let budgeted = inc.batch_eval_with(&candidates, Some(&budget)).unwrap();
        for (a, b) in plain.iter().zip(&budgeted) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(budget.steps_spent(), candidates.len() as u64);
    }

    #[test]
    fn batch_eval_with_cancelled_budget_stops_mid_wave() {
        let n = circuit();
        let l = lib();
        let inc = IncrementalSta::new(&n, &l);
        let candidates: Vec<NodeId> = ["g1", "g2", "g3", "side"]
            .iter()
            .map(|s| n.find(s).unwrap())
            .collect();
        let budget = Budget::unbounded();
        budget.cancel();
        assert_eq!(
            inc.batch_eval_with(&candidates, Some(&budget)),
            Err(BudgetError::Cancelled)
        );
    }

    #[test]
    fn from_analysis_matches_new() {
        let n = circuit();
        let l = lib();
        let full = analyze(&n, &l);
        let mut a = IncrementalSta::new(&n, &l);
        let mut b = IncrementalSta::from_analysis(&n, &l, &full);
        let g1 = n.find("g1").unwrap();
        a.swap_to_lut(g1);
        b.swap_to_lut(g1);
        assert_eq!(a.clock_period_ns().to_bits(), b.clock_period_ns().to_bits());
    }

    #[test]
    fn dropping_the_engine_flushes_invalidation_counters_to_obs() {
        let collector = sttlock_obs::TraceCollector::new();
        sttlock_obs::install(collector.clone());
        {
            let n = circuit();
            let l = lib();
            let mut inc = IncrementalSta::new(&n, &l);
            let g1 = n.find("g1").unwrap();
            inc.swap_to_lut(g1);
            inc.restore_gate(g1, GateKind::Nand);
            let _ = inc.clock_period_ns();
        }
        sttlock_obs::uninstall();
        // Two delay changes propagated through g1's cone (concurrent
        // tests may add more — the registry is process-global).
        assert!(collector.counter_value("sta.invalidations") >= 2);
        assert!(collector.counter_value("sta.node_reevals") >= 2);
    }

    #[test]
    fn heap_rebuild_keeps_answers_correct() {
        let n = circuit();
        let l = lib();
        let mut inc = IncrementalSta::new(&n, &l);
        let g1 = n.find("g1").unwrap();
        // Enough churn to trip the stale-entry rebuild threshold.
        for _ in 0..200 {
            inc.swap_to_lut(g1);
            inc.restore_gate(g1, GateKind::Nand);
        }
        let base = analyze(&n, &l);
        assert_eq!(
            inc.clock_period_ns().to_bits(),
            base.clock_period_ns().to_bits()
        );
    }
}
