//! Workspace-local stand-in for the subset of the `proptest` API that
//! sttlock's property tests use.
//!
//! The build environment has no access to crates.io, so this crate
//! re-creates the pieces the workspace imports: the [`Strategy`] trait
//! with `prop_map`/`prop_flat_map`, `any::<T>()`, `Just`, integer-range
//! strategies, `prop::collection::vec`, `prop::sample::select`,
//! `prop::bool::ANY`, the `proptest!`/`prop_assert!`/`prop_assert_eq!`
//! macros, `ProptestConfig` and `TestCaseError`.
//!
//! The one deliberate simplification: failing cases are **not shrunk**.
//! A failure panics with the case's seed so it can be replayed by
//! rerunning the test (generation is fully deterministic per test name
//! and case index).

#![forbid(unsafe_code)]

/// Strategies: how values of a type are generated.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// The RNG handed to strategies (deterministic per test case).
    pub type TestRng = StdRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike upstream proptest there is no shrinking tree; a strategy is
    /// just a deterministic function of the per-case RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Uses a generated value to pick a second-stage strategy.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::strategy::{Strategy, TestRng};
    use rand::Rng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_prim {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.gen()
                }
            }
        )*};
    }
    impl_arbitrary_prim!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64, f32);

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> Self {
            std::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for "any value of `T`".
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

/// Runner, config and failure plumbing behind the `proptest!` macro.
pub mod test_runner {
    use super::strategy::TestRng;
    use rand::SeedableRng;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    /// Number of cases to run per property.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Cases per property (default 256, as upstream).
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// A failed property case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Fails the current case with a message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }

        /// In upstream proptest a reject re-draws the case; without
        /// shrinking we simply skip it, so a reject is a no-op marker.
        pub fn reject(message: impl Into<String>) -> Self {
            Self::fail(message)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Drives N deterministic cases of one property.
    #[derive(Debug)]
    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        /// A runner with the given config.
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner { config }
        }

        /// Runs `case` once per configured case count. The RNG is seeded
        /// from `(name, case index)` so failures are replayable by
        /// rerunning the same test binary.
        ///
        /// # Panics
        ///
        /// Panics on the first failing case, reporting its index.
        pub fn run_named<F>(&mut self, name: &str, mut case: F)
        where
            F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
        {
            let mut hasher = DefaultHasher::new();
            name.hash(&mut hasher);
            let base = hasher.finish();
            for i in 0..self.config.cases {
                let mut rng = TestRng::seed_from_u64(base ^ ((i as u64) << 32 | 0x9E37));
                if let Err(e) = case(&mut rng) {
                    panic!(
                        "proptest case {i}/{cases} of `{name}` failed: {e}",
                        cases = self.config.cases,
                    );
                }
            }
        }
    }
}

/// The `prop::` namespace (`prop::collection`, `prop::sample`,
/// `prop::bool`) mirroring upstream's prelude export.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::{Strategy, TestRng};
        use rand::Rng;
        use std::ops::Range;

        /// Strategy for `Vec<T>` with a length drawn from a range.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// `vec(element, 1..40)`: a vector of 1–39 elements.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let n = rng.gen_range(self.len.clone());
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use crate::strategy::{Strategy, TestRng};
        use rand::seq::SliceRandom;

        /// Strategy choosing uniformly from a fixed set of values.
        #[derive(Debug, Clone)]
        pub struct Select<T: Clone> {
            options: Vec<T>,
        }

        /// `select(vec![...])`: one of the given values, uniformly.
        ///
        /// # Panics
        ///
        /// Generation panics if `options` is empty.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            Select { options }
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                self.options
                    .choose(rng)
                    .expect("select() needs at least one option")
                    .clone()
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use crate::strategy::{Strategy, TestRng};
        use rand::Rng;

        /// Strategy for an unweighted random bool.
        #[derive(Debug, Clone, Copy)]
        pub struct BoolAny;

        /// Uniform `true`/`false`.
        pub const ANY: BoolAny = BoolAny;

        impl Strategy for BoolAny {
            type Value = bool;
            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.gen()
            }
        }
    }
}

/// Everything the workspace's `use proptest::prelude::*;` expects.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Fails the enclosing property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the enclosing property case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Fails the enclosing property case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// Declares property tests: each `fn name(pat in strategy, ...)` body
/// runs once per case with freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner = $crate::test_runner::TestRunner::new($cfg);
                runner.run_named(stringify!($name), |__proptest_rng| {
                    $(let $pat = $crate::strategy::Strategy::generate(&$strat, __proptest_rng);)+
                    let mut __proptest_body = ||
                        -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    };
                    __proptest_body()
                });
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..12, y in 0u64..1000) {
            prop_assert!((3..12).contains(&x));
            prop_assert!(y < 1000);
        }

        #[test]
        fn tuples_and_vecs_compose(
            (n, v) in (1usize..5).prop_flat_map(|n| {
                (Just(n), prop::collection::vec(0..n, 1..10))
            }),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 10);
            for x in v {
                prop_assert!(x < n);
            }
        }

        #[test]
        fn select_and_bool_any(k in prop::sample::select(vec![2, 3, 5]), b in prop::bool::ANY) {
            prop_assert!(k == 2 || k == 3 || k == 5);
            let _ = b;
        }

        #[test]
        fn prop_map_applies(s in (0u32..10).prop_map(|x| x * 2)) {
            prop_assert_eq!(s % 2, 0);
            prop_assert_ne!(s, 19);
        }

        #[test]
        fn any_generates_arrays(lanes in any::<[u64; 3]>()) {
            let _ = lanes;
        }
    }

    #[test]
    #[should_panic(expected = "failed")]
    fn failing_property_panics_with_case_info() {
        let mut runner =
            crate::test_runner::TestRunner::new(crate::test_runner::ProptestConfig::with_cases(4));
        runner.run_named("always_fails", |_rng| {
            Err(crate::test_runner::TestCaseError::fail("nope"))
        });
    }

    #[test]
    fn generation_is_deterministic_per_name_and_case() {
        use crate::strategy::Strategy;
        let mut first = Vec::new();
        let mut runner =
            crate::test_runner::TestRunner::new(crate::test_runner::ProptestConfig::with_cases(8));
        runner.run_named("det", |rng| {
            first.push((0u64..u64::MAX).generate(rng));
            Ok(())
        });
        let mut second = Vec::new();
        let mut runner =
            crate::test_runner::TestRunner::new(crate::test_runner::ProptestConfig::with_cases(8));
        runner.run_named("det", |rng| {
            second.push((0u64..u64::MAX).generate(rng));
            Ok(())
        });
        assert_eq!(first, second);
    }
}
