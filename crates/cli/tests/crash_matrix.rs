//! The crash matrix: kill the real CLI binary at each armed store
//! kill-point (`STTLOCK_KILL_POINT`), then `--resume` and prove the
//! final campaign output is byte-identical to an uninterrupted run.
//!
//! This is the end-to-end face of the store's recovery guarantee — not
//! a simulated `ChaosFs` death but a genuine `abort()` mid-write in a
//! child process, followed by a fresh process recovering the journal.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use sttlock_campaign::json::Json;
use sttlock_campaign::JournalEntry;

const CELLS: usize = 3;

fn cli() -> &'static str {
    env!("CARGO_BIN_EXE_sttlock-cli")
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("sttlock-cli-crash-matrix")
        .join(format!("{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A three-cell campaign (one circuit, one algorithm, three seeds)
/// writing a journal and a JSONL output file.
fn campaign_args(journal: &Path, out: &Path, resume: bool) -> Vec<String> {
    let mut args = vec![
        "campaign".to_owned(),
        "--circuits".to_owned(),
        "crash:70:4:6:4".to_owned(),
        "--algorithms".to_owned(),
        "indep".to_owned(),
        "--seeds".to_owned(),
        "1,2,3".to_owned(),
        "--jobs".to_owned(),
        "1".to_owned(),
        "--table".to_owned(),
        "none".to_owned(),
        "--journal".to_owned(),
        journal.display().to_string(),
        "--out".to_owned(),
        out.display().to_string(),
    ];
    if resume {
        args.push("--resume".to_owned());
    }
    args
}

fn run_cli(args: &[String], kill_point: Option<&str>) -> Output {
    let mut cmd = Command::new(cli());
    cmd.args(args);
    // The variable is inherited by default; the resume run must never
    // see a stale arming from the test harness environment.
    cmd.env_remove("STTLOCK_KILL_POINT");
    if let Some(spec) = kill_point {
        cmd.env("STTLOCK_KILL_POINT", spec);
    }
    cmd.output().expect("the CLI binary should spawn")
}

/// Normalizes campaign JSONL for byte comparison: wall-clock fields
/// (`wall_ms`, `flow.selection_ms`) differ between runs by nature;
/// everything else — metrics, security estimates, statuses, ordering —
/// must be bit-equal.
fn normalize(jsonl: &str) -> String {
    let mut out = String::new();
    for line in jsonl.lines().filter(|l| !l.is_empty()) {
        let Ok(Json::Obj(mut record)) = Json::parse(line) else {
            panic!("output line is not a JSON object: {line}");
        };
        record.insert("wall_ms".to_owned(), Json::from(0u64));
        if let Some(Json::Obj(flow)) = record.get_mut("flow") {
            flow.insert("selection_ms".to_owned(), Json::from(0.0));
        }
        out.push_str(&Json::Obj(record).to_string());
        out.push('\n');
    }
    out
}

fn journal_entries(path: &Path) -> Vec<JournalEntry> {
    sttlock_store::read_all::<JournalEntry>(path).unwrap().0
}

#[test]
fn every_kill_point_resumes_to_the_uninterrupted_output() {
    // The uninterrupted baseline every crashed-and-resumed run must
    // reproduce.
    let base_dir = tmp_dir("baseline");
    let (base_journal, base_out) = (base_dir.join("journal.log"), base_dir.join("out.jsonl"));
    let baseline = run_cli(&campaign_args(&base_journal, &base_out, false), None);
    assert!(
        baseline.status.success(),
        "baseline campaign failed: {}",
        String::from_utf8_lossy(&baseline.stderr)
    );
    let baseline_out = normalize(&std::fs::read_to_string(&base_out).unwrap());
    assert_eq!(journal_entries(&base_journal).len(), CELLS);

    // `mid-record:2` tears the second journal frame between its two
    // halves; `pre-sync:2` dies with the second frame written but not
    // fsynced; `pre-rename:1` dies inside the `--out` atomic write,
    // after the journal is complete but before the output exists.
    for spec in ["mid-record:2", "pre-sync:2", "pre-rename:1"] {
        let dir = tmp_dir(&spec.replace(':', "-"));
        let (journal, out) = (dir.join("journal.log"), dir.join("out.jsonl"));

        let killed = run_cli(&campaign_args(&journal, &out, false), Some(spec));
        assert!(
            !killed.status.success(),
            "`{spec}` should abort the process"
        );
        let stderr = String::from_utf8_lossy(&killed.stderr);
        assert!(
            stderr.contains("armed kill-point"),
            "`{spec}` death must come from the armed kill-point, got: {stderr}"
        );
        assert!(
            !out.exists(),
            "`{spec}`: a crashed run must never leave a partial output file"
        );
        let survived = journal_entries(&journal).len();
        assert!(
            survived <= CELLS,
            "`{spec}`: journal holds {survived} entries before resume"
        );

        let resumed = run_cli(&campaign_args(&journal, &out, true), None);
        assert!(
            resumed.status.success(),
            "`{spec}` resume failed: {}",
            String::from_utf8_lossy(&resumed.stderr)
        );
        assert_eq!(
            normalize(&std::fs::read_to_string(&out).unwrap()),
            baseline_out,
            "`{spec}`: resumed output must be byte-identical to the uninterrupted run"
        );
        // Recovery healed the journal to exactly the grid: replayed
        // cells are not re-appended, re-run cells are.
        assert_eq!(journal_entries(&journal).len(), CELLS, "`{spec}`");
    }
}
