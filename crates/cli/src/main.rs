use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match sttlock_cli::run(&args) {
        Ok(text) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
