//! The LUT bitstream key-file format.
//!
//! The design house keeps the configuration of every STT LUT in a small
//! text file, one line per LUT:
//!
//! ```text
//! # sttlock bitstream v1
//! g42 2 0x8
//! g97 3 0x6a
//! ```
//!
//! Columns: node name, fan-in, truth-table mask (hex, row 0 = LSB).
//! Node *names* (not arena indices) key the entries, so a bitstream
//! survives netlist round-trips through `.bench`/Verilog.

use std::fmt::Write as _;

use sttlock_netlist::{Netlist, NodeId, TruthTable};

use crate::CliError;

/// Serializes a bitstream against the netlist that produced it.
pub fn write(netlist: &Netlist, bitstream: &[(NodeId, TruthTable)]) -> String {
    let mut out = String::from("# sttlock bitstream v1\n");
    for (id, table) in bitstream {
        let _ = writeln!(
            out,
            "{} {} 0x{:x}",
            netlist.node_name(*id),
            table.inputs(),
            table.bits()
        );
    }
    out
}

/// Parses a bitstream and resolves the names against `netlist`.
///
/// # Errors
///
/// Returns [`CliError::Bitstream`] for malformed lines, unknown node
/// names, non-LUT targets, or fan-in mismatches.
pub fn parse(netlist: &Netlist, text: &str) -> Result<Vec<(NodeId, TruthTable)>, CliError> {
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |message: String| CliError::Bitstream {
            line: lineno + 1,
            message,
        };
        let mut parts = line.split_whitespace();
        let (Some(name), Some(fanin), Some(mask), None) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            return Err(err(format!(
                "expected `<name> <fanin> 0x<mask>`, got `{line}`"
            )));
        };
        let id = netlist
            .find(name)
            .ok_or_else(|| err(format!("no node named `{name}` in the netlist")))?;
        let node = netlist.node(id);
        if !node.is_lut() {
            return Err(err(format!("node `{name}` is not a LUT")));
        }
        let fanin: usize = fanin
            .parse()
            .map_err(|_| err(format!("bad fan-in `{fanin}`")))?;
        if node.fanin().len() != fanin {
            return Err(err(format!(
                "LUT `{name}` has fan-in {}, bitstream says {fanin}",
                node.fanin().len()
            )));
        }
        let hex = mask
            .strip_prefix("0x")
            .or_else(|| mask.strip_prefix("0X"))
            .ok_or_else(|| err(format!("mask `{mask}` must be 0x-hex")))?;
        let bits = u64::from_str_radix(hex, 16).map_err(|e| err(format!("bad mask: {e}")))?;
        if fanin > 6 {
            return Err(err(format!("fan-in {fanin} exceeds the 6-input limit")));
        }
        out.push((id, TruthTable::new(fanin, bits)));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sttlock_netlist::{GateKind, NetlistBuilder};

    fn hybrid() -> (Netlist, Vec<(NodeId, TruthTable)>) {
        let mut b = NetlistBuilder::new("m");
        b.input("a");
        b.input("c");
        b.gate("g1", GateKind::Nand, &["a", "c"]);
        b.gate("g2", GateKind::Xor, &["g1", "a"]);
        b.output("g2");
        let mut n = b.finish().unwrap();
        let mut bits = Vec::new();
        for name in ["g1", "g2"] {
            let id = n.find(name).unwrap();
            let t = n.replace_gate_with_lut(id).unwrap();
            bits.push((id, t));
        }
        (n, bits)
    }

    #[test]
    fn round_trips() {
        let (n, bits) = hybrid();
        let text = write(&n, &bits);
        let back = parse(&n, &text).unwrap();
        assert_eq!(back, bits);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let (n, _) = hybrid();
        let text = "# header\n\ng1 2 0x7\n";
        let parsed = parse(&n, text).unwrap();
        assert_eq!(parsed.len(), 1);
    }

    #[test]
    fn unknown_name_is_rejected() {
        let (n, _) = hybrid();
        let e = parse(&n, "ghost 2 0x7\n").unwrap_err();
        assert!(e.to_string().contains("ghost"));
    }

    #[test]
    fn fanin_mismatch_is_rejected() {
        let (n, _) = hybrid();
        assert!(parse(&n, "g1 3 0x7\n").is_err());
    }

    #[test]
    fn non_lut_target_is_rejected() {
        let (n, _) = hybrid();
        assert!(parse(&n, "a 2 0x7\n").is_err());
    }
}
